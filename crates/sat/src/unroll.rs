//! Time-frame symbolic execution of a [`CompiledDesign`].
//!
//! The functions here mirror the concrete executor step for step —
//! [`settle_sym`] is `CompiledDesign::settle` (levelized order only),
//! [`clock_edge_sym`] is `CompiledDesign::clock_edge` with its exact
//! commit discipline (per block: blocking-write diffs in signal order,
//! then nonblocking assignments in execution order, all applied
//! atomically) — but over [`SymVec`] state.
//!
//! Control flow with symbolic conditions is handled by *guarded updates*:
//! each assignment under an `if`/`case` becomes a per-bit mux between the
//! new value and the old one, selected by the path condition. Branches
//! whose guard folds to constant false are skipped entirely, preserving
//! the interpreter's lazy evaluation (an unsupported construct in a
//! statically dead branch never poisons the lowering).

use crate::aig::{Aig, NLit};
use crate::blast::{run_sym, BlastError, SymEnv, SymVec};
use asv_sim::compile::{CLValue, CStmt, CombStep, CompiledDesign, SigId};
use asv_sim::value::Value;

/// Symbolic signal store: one [`SymVec`] per interned signal, always kept
/// at the signal's declared width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymState {
    /// Values indexed by [`SigId`].
    pub vals: Vec<SymVec>,
}

impl SymState {
    /// The all-zero initial state of a design (the simulator's
    /// `init_state`).
    pub fn init(cd: &CompiledDesign) -> Self {
        SymState {
            vals: (0..cd.names().len())
                .map(|i| SymVec::from_value(Value::zero(cd.width(SigId(i as u32)))))
                .collect(),
        }
    }
}

/// Environment reading a flat symbolic store (no history).
pub struct SliceEnv<'a> {
    vals: &'a [SymVec],
}

impl<'a> SliceEnv<'a> {
    /// Wraps a value slice.
    pub fn new(vals: &'a [SymVec]) -> Self {
        SliceEnv { vals }
    }
}

impl SymEnv for SliceEnv<'_> {
    fn load(&self, sig: SigId) -> SymVec {
        self.vals[sig.idx()].clone()
    }
}

fn unsupported<T>(msg: impl Into<String>) -> Result<T, BlastError> {
    Err(BlastError(msg.into()))
}

/// Declared width of a compiled lvalue (mirrors the executor's private
/// `lvalue_width`).
fn lvalue_width(cd: &CompiledDesign, lv: &CLValue) -> Result<u32, BlastError> {
    match lv {
        CLValue::Whole(sig) => Ok(cd.width(*sig)),
        CLValue::Bit { .. } => Ok(1),
        CLValue::Part { msb, lsb, .. } => Ok(msb - lsb + 1),
        CLValue::Concat(parts) => parts.iter().map(|p| lvalue_width(cd, p)).sum(),
        CLValue::Unknown(name) => unsupported(format!("unresolved lvalue `{name}`")),
    }
}

/// Applies a (possibly guarded) write through a compiled lvalue.
pub fn write_lvalue_sym(
    g: &mut Aig,
    cd: &CompiledDesign,
    lv: &CLValue,
    value: &SymVec,
    guard: NLit,
    state: &mut SymState,
) -> Result<(), BlastError> {
    match lv {
        CLValue::Whole(sig) => {
            let nv = value.resize(cd.width(*sig));
            let cur = &state.vals[sig.idx()];
            state.vals[sig.idx()] = if guard == NLit::TRUE {
                nv
            } else {
                SymVec::mux(g, guard, &nv, cur)
            };
            Ok(())
        }
        CLValue::Bit { sig, index } => {
            let iv = run_sym(g, index, &SliceEnv::new(&state.vals))?;
            let cur = state.vals[sig.idx()].clone();
            let nv = cur.set_bit(g, &iv, value.get(0));
            state.vals[sig.idx()] = SymVec::mux(g, guard, &nv, &cur);
            Ok(())
        }
        CLValue::Part { sig, msb, lsb } => {
            let cur = state.vals[sig.idx()].clone();
            let nv = cur.set_slice(*msb, *lsb, value);
            state.vals[sig.idx()] = SymVec::mux(g, guard, &nv, &cur);
            Ok(())
        }
        CLValue::Concat(_) => {
            // The concrete executor snapshots the store on entry: nested
            // reads (including index programs) observe pre-write values
            // throughout the concat.
            let snapshot = state.vals.clone();
            write_concat_sym(g, cd, lv, value, guard, &snapshot, state)
        }
        CLValue::Unknown(name) => unsupported(format!("write to unresolved `{name}`")),
    }
}

fn write_concat_sym(
    g: &mut Aig,
    cd: &CompiledDesign,
    lv: &CLValue,
    value: &SymVec,
    guard: NLit,
    snapshot: &[SymVec],
    state: &mut SymState,
) -> Result<(), BlastError> {
    match lv {
        CLValue::Whole(sig) => {
            let nv = value.resize(cd.width(*sig));
            let cur = state.vals[sig.idx()].clone();
            state.vals[sig.idx()] = SymVec::mux(g, guard, &nv, &cur);
            Ok(())
        }
        CLValue::Bit { sig, index } => {
            let iv = run_sym(g, index, &SliceEnv::new(snapshot))?;
            let base = snapshot[sig.idx()].clone();
            let nv = base.set_bit(g, &iv, value.get(0));
            let cur = state.vals[sig.idx()].clone();
            state.vals[sig.idx()] = SymVec::mux(g, guard, &nv, &cur);
            Ok(())
        }
        CLValue::Part { sig, msb, lsb } => {
            let base = snapshot[sig.idx()].clone();
            let nv = base.set_slice(*msb, *lsb, value);
            let cur = state.vals[sig.idx()].clone();
            state.vals[sig.idx()] = SymVec::mux(g, guard, &nv, &cur);
            Ok(())
        }
        CLValue::Concat(parts) => {
            let total: u32 = parts
                .iter()
                .map(|p| lvalue_width(cd, p))
                .sum::<Result<u32, BlastError>>()?;
            let mut consumed = 0u32;
            for p in parts {
                let w = lvalue_width(cd, p)?;
                let hi = total - consumed - 1;
                let lo = total - consumed - w;
                let field = value.resize(total.min(64)).slice(hi.min(63), lo.min(63));
                write_concat_sym(g, cd, p, &field, guard, snapshot, state)?;
                consumed += w;
            }
            Ok(())
        }
        CLValue::Unknown(name) => unsupported(format!("write to unresolved `{name}`")),
    }
}

/// A pending nonblocking assignment: target, path guard, value.
type NbaSym<'a> = (&'a CLValue, NLit, SymVec);

/// Executes a compiled statement under a path guard. Blocking writes are
/// guard-muxed into `state` immediately; nonblocking writes are recorded
/// with their guard for the caller's commit phase.
pub fn exec_stmt_sym<'a>(
    g: &mut Aig,
    cd: &CompiledDesign,
    s: &'a CStmt,
    guard: NLit,
    state: &mut SymState,
    nba: &mut Vec<NbaSym<'a>>,
) -> Result<(), BlastError> {
    match s {
        CStmt::Block(stmts) => {
            for st in stmts {
                exec_stmt_sym(g, cd, st, guard, state, nba)?;
            }
            Ok(())
        }
        CStmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            let cv = run_sym(g, cond, &SliceEnv::new(&state.vals))?;
            let c = cv.is_truthy(g);
            let g_then = g.and(guard, c);
            if g_then != NLit::FALSE {
                exec_stmt_sym(g, cd, then_branch, g_then, state, nba)?;
            }
            if let Some(e) = else_branch {
                let g_else = g.and(guard, !c);
                if g_else != NLit::FALSE {
                    exec_stmt_sym(g, cd, e, g_else, state, nba)?;
                }
            }
            Ok(())
        }
        CStmt::Case {
            scrutinee,
            arms,
            default,
            ..
        } => {
            let sv = run_sym(g, scrutinee, &SliceEnv::new(&state.vals))?;
            // `no_prior` tracks "no earlier arm matched"; arms and labels
            // whose reachability folds to false are skipped, matching the
            // interpreter's first-match short circuit.
            let mut no_prior = NLit::TRUE;
            for arm in arms {
                if no_prior == NLit::FALSE {
                    break;
                }
                let mut m = NLit::FALSE;
                for label in &arm.labels {
                    let lv = run_sym(g, label, &SliceEnv::new(&state.vals))?;
                    let e = lv.eq_bits(g, &sv);
                    m = g.or(m, e);
                }
                let reach = g.and(guard, no_prior);
                let g_arm = g.and(reach, m);
                if g_arm != NLit::FALSE {
                    exec_stmt_sym(g, cd, &arm.body, g_arm, state, nba)?;
                }
                no_prior = g.and(no_prior, !m);
            }
            if let Some(d) = default {
                let g_def = g.and(guard, no_prior);
                if g_def != NLit::FALSE {
                    exec_stmt_sym(g, cd, d, g_def, state, nba)?;
                }
            }
            Ok(())
        }
        CStmt::Assign {
            lhs,
            rhs,
            nonblocking,
        } => {
            let v = run_sym(g, rhs, &SliceEnv::new(&state.vals))?;
            if *nonblocking {
                nba.push((lhs, guard, v));
            } else {
                write_lvalue_sym(g, cd, lhs, &v, guard, state)?;
            }
            Ok(())
        }
        CStmt::Empty => Ok(()),
    }
}

/// Settles combinational logic symbolically: one pass over the levelized
/// schedule.
///
/// `live` optionally masks the steps to execute (dead-logic elimination
/// for the symbolic path — see `CompiledDesign::sym_live`); `None` runs
/// everything. Skipped steps are provably outside every assertion's cone
/// *and* statically guaranteed to bit-blast, so skipping can change
/// neither the verdict nor the engine's accept/reject decision.
///
/// # Errors
///
/// [`BlastError`] when a step cannot be lowered. Must only be called on
/// levelized designs (the engine checks); the fixpoint fallback is not
/// symbolically executable.
pub fn settle_sym(
    g: &mut Aig,
    cd: &CompiledDesign,
    state: &mut SymState,
    live: Option<&[bool]>,
) -> Result<(), BlastError> {
    debug_assert!(cd.is_levelized(), "symbolic settle requires levelization");
    for &i in cd.comb_order() {
        if live.is_some_and(|m| !m[i]) {
            continue;
        }
        match &cd.comb_steps()[i] {
            CombStep::Assign { lhs, rhs } => {
                let v = run_sym(g, rhs, &SliceEnv::new(&state.vals))?;
                write_lvalue_sym(g, cd, lhs, &v, NLit::TRUE, state)?;
            }
            CombStep::Block(body) => {
                let mut nba = Vec::new();
                exec_stmt_sym(g, cd, body, NLit::TRUE, state, &mut nba)?;
                for (lv, guard, v) in nba {
                    write_lvalue_sym(g, cd, lv, &v, guard, state)?;
                }
            }
        }
    }
    Ok(())
}

/// One pending commit of the clock-edge phase.
enum Commit<'a> {
    /// A blocking-write diff: committed when the value actually changed
    /// (the symbolic form of the executor's `pre_edge[i] != *v` test).
    Whole {
        sig: usize,
        val: SymVec,
        changed: NLit,
    },
    /// A deferred nonblocking write through a compiled lvalue.
    Lv {
        lv: &'a CLValue,
        guard: NLit,
        val: SymVec,
    },
}

/// Executes every clocked block against the pre-edge state and commits
/// updates atomically, mirroring `CompiledDesign::clock_edge`.
///
/// `live` masks clocked blocks exactly like [`settle_sym`]'s comb mask.
///
/// # Errors
///
/// [`BlastError`] when a statement cannot be lowered.
pub fn clock_edge_sym(
    g: &mut Aig,
    cd: &CompiledDesign,
    state: &mut SymState,
    live: Option<&[bool]>,
) -> Result<(), BlastError> {
    let pre = state.clone();
    let mut commits: Vec<Commit<'_>> = Vec::new();
    for (bi, block) in cd.seq_blocks().iter().enumerate() {
        if live.is_some_and(|m| !m[bi]) {
            continue;
        }
        let mut scratch = pre.clone();
        let mut nba = Vec::new();
        exec_stmt_sym(g, cd, block, NLit::TRUE, &mut scratch, &mut nba)?;
        for (i, v) in scratch.vals.iter().enumerate() {
            if *v != pre.vals[i] {
                let eq = v.eq_bits(g, &pre.vals[i]);
                commits.push(Commit::Whole {
                    sig: i,
                    val: v.clone(),
                    changed: !eq,
                });
            }
        }
        commits.extend(
            nba.into_iter()
                .map(|(lv, guard, val)| Commit::Lv { lv, guard, val }),
        );
    }
    for c in commits {
        match c {
            Commit::Whole { sig, val, changed } => {
                let cur = state.vals[sig].clone();
                state.vals[sig] = SymVec::mux(g, changed, &val, &cur);
            }
            Commit::Lv { lv, guard, val } => write_lvalue_sym(g, cd, lv, &val, guard, state)?,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_sim::Simulator;
    use std::sync::Arc;

    /// Concrete cofactor of the symbolic state under an input assignment
    /// (inputs valued in AIG allocation order).
    fn eval_state(g: &Aig, state: &SymState, inputs: &[bool]) -> Vec<Value> {
        use crate::aig::Node;
        let mut val = vec![false; g.len()];
        let mut next = 0usize;
        for idx in 0..g.len() {
            val[idx] = match g.node(idx as u32) {
                Node::Const => false,
                Node::Input => {
                    let v = inputs.get(next).copied().unwrap_or(false);
                    next += 1;
                    v
                }
                Node::And(a, b) => {
                    (val[a.node() as usize] ^ a.is_inverted())
                        && (val[b.node() as usize] ^ b.is_inverted())
                }
            };
        }
        state
            .vals
            .iter()
            .map(|sv| {
                let mut bits = 0u64;
                for (i, l) in sv.lits().iter().enumerate() {
                    if val[l.node() as usize] ^ l.is_inverted() {
                        bits |= 1 << i;
                    }
                }
                Value::new(bits, sv.width())
            })
            .collect()
    }

    /// Symbolically steps a design with one symbolic input bit per tick
    /// and checks every cofactor against the concrete simulator.
    fn assert_symbolic_step_matches(src: &str, input: &str, ticks: usize) {
        let design = asv_verilog::compile(src).expect("compile");
        let cd = Arc::new(asv_sim::CompiledDesign::compile(&design));
        assert!(cd.is_levelized(), "test design must levelize");
        let sig = cd.sig(input).expect("input signal");
        let w = cd.width(sig);

        let mut g = Aig::new();
        let mut state = SymState::init(&cd);
        let mut frames = Vec::new();
        for _ in 0..ticks {
            let bits: Vec<NLit> = (0..w).map(|_| g.input()).collect();
            state.vals[sig.idx()] = SymVec::new(bits);
            settle_sym(&mut g, &cd, &mut state, None).expect("settle");
            frames.push(state.clone());
            clock_edge_sym(&mut g, &cd, &mut state, None).expect("edge");
            settle_sym(&mut g, &cd, &mut state, None).expect("settle");
        }

        // Enumerate all concrete input sequences and compare sampled rows.
        let total_bits = w as usize * ticks;
        assert!(total_bits <= 12, "keep the cofactor enumeration small");
        for asg in 0u64..(1 << total_bits) {
            let inputs: Vec<bool> = (0..total_bits).map(|i| asg >> i & 1 == 1).collect();
            let mut sim = Simulator::from_compiled(Arc::clone(&cd));
            for t in 0..ticks {
                let mut v = 0u64;
                for i in 0..w as usize {
                    if inputs[t * w as usize + i] {
                        v |= 1 << i;
                    }
                }
                sim.step(&[(input, v)]).expect("step");
            }
            let trace = sim.into_trace();
            for (t, frame) in frames.iter().enumerate() {
                let row = eval_state(&g, frame, &inputs);
                for (col, name) in cd.names().iter().enumerate() {
                    assert_eq!(
                        row[col],
                        trace.value(t, name).expect("trace value"),
                        "signal {name} tick {t} under assignment {asg:#b}"
                    );
                }
            }
        }
    }

    #[test]
    fn counter_unrolls_bit_identically() {
        assert_symbolic_step_matches(
            "module c(input clk, input en, output reg [3:0] q);\n\
             always @(posedge clk) begin if (en) q <= q + 4'd1; end\n\
             endmodule",
            "en",
            4,
        );
    }

    #[test]
    fn mux_case_block_unrolls_bit_identically() {
        assert_symbolic_step_matches(
            "module m(input clk, input [1:0] s, output reg [2:0] y);\n\
             always @(posedge clk) begin\n\
               case (s) 2'd0: y <= 3'd1; 2'd1: y <= y + 3'd2; default: y <= 3'd0; endcase\n\
             end\nendmodule",
            "s",
            3,
        );
    }

    #[test]
    fn blocking_and_nonblocking_mix_matches() {
        assert_symbolic_step_matches(
            "module b(input clk, input d, output reg [1:0] q);\n\
             reg t;\n\
             always @(posedge clk) begin\n\
               t = d & ~q[0];\n\
               q <= {q[0], t};\n\
             end\nendmodule",
            "d",
            4,
        );
    }

    #[test]
    fn shift_and_compare_datapath_matches() {
        assert_symbolic_step_matches(
            "module s(input clk, input [2:0] a, output reg [2:0] acc, output hi);\n\
             assign hi = acc > 3'd4;\n\
             always @(posedge clk) begin\n\
               acc <= (acc << 1) ^ a;\n\
             end\nendmodule",
            "a",
            3,
        );
    }
}
