//! An embedded CDCL SAT solver.
//!
//! Written from scratch for the bounded model checker: two-watched-literal
//! unit propagation, first-UIP conflict-driven clause learning, VSIDS
//! decision ordering with phase saving, Luby restarts, and incremental
//! assumption-based solving — clauses (original and learned) persist
//! across [`Solver::solve`] calls, so unrolling a design one time frame
//! deeper reuses everything learned at shallower depths.
//!
//! The instances produced by bit-blasting the reproduction's designs are
//! small (thousands of variables), so the solver deliberately omits clause
//! database reduction and preprocessing; the core loop is the textbook
//! MiniSat shape.

use asv_sim::cancel::{CancelToken, Deadline};
use std::fmt;
use std::ops::Not;

/// A propositional variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// Index into per-variable tables.
    #[inline]
    fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A literal: a variable with a sign (bit 0 set = negated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Self {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Self {
        Lit(v.0 << 1 | 1)
    }

    /// A literal of `v` with explicit sign (`true` = negated).
    pub fn new(v: Var, negated: bool) -> Self {
        Lit(v.0 << 1 | u32::from(negated))
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// True when negated.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    #[inline]
    fn idx(self) -> usize {
        self.0 as usize
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "-{}", self.var().0 + 1)
        } else {
            write!(f, "{}", self.var().0 + 1)
        }
    }
}

/// Result of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found ([`Solver::model_value`]).
    Sat,
    /// Unsatisfiable under the given assumptions.
    Unsat,
    /// The conflict budget was exhausted before a verdict.
    Unknown,
    /// [`Solver::cancel`] was poisoned mid-search (portfolio racing);
    /// clauses learned so far are kept, and a later `solve` call may
    /// resume the search.
    Cancelled,
    /// [`Solver::deadline`] expired mid-search; like `Cancelled`, the
    /// search unwinds cleanly and learned clauses are kept.
    TimedOut,
}

/// Tri-state assignment value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum LBool {
    True,
    False,
    #[default]
    Undef,
}

impl LBool {
    fn from_bool(b: bool) -> Self {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
}

type ClauseRef = u32;

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
}

/// A watcher entry: the clause plus a blocker literal checked before the
/// clause is touched.
#[derive(Debug, Clone, Copy)]
struct Watch {
    cref: ClauseRef,
    blocker: Lit,
}

/// VSIDS priority queue: a binary max-heap of variables keyed by an
/// external activity table, with position backlinks for `decrease_key`.
#[derive(Debug, Clone, Default)]
struct VarHeap {
    heap: Vec<Var>,
    pos: Vec<i32>,
}

impl VarHeap {
    fn contains(&self, v: Var) -> bool {
        v.idx() < self.pos.len() && self.pos[v.idx()] >= 0
    }

    fn grow(&mut self, n: usize) {
        if self.pos.len() < n {
            self.pos.resize(n, -1);
        }
    }

    fn insert(&mut self, v: Var, act: &[f64]) {
        self.grow(v.idx() + 1);
        if self.contains(v) {
            return;
        }
        self.pos[v.idx()] = self.heap.len() as i32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn pop(&mut self, act: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.pos[top.idx()] = -1;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.idx()] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn bumped(&mut self, v: Var, act: &[f64]) {
        if self.contains(v) {
            let i = self.pos[v.idx()] as usize;
            self.sift_up(i, act);
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let p = (i - 1) / 2;
            if act[self.heap[i].idx()] <= act[self.heap[p].idx()] {
                break;
            }
            self.swap(i, p);
            i = p;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l].idx()] > act[self.heap[best].idx()] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r].idx()] > act[self.heap[best].idx()] {
                best = r;
            }
            if best == i {
                return;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i].idx()] = i as i32;
        self.pos[self.heap[j].idx()] = j as i32;
    }
}

/// The CDCL solver.
#[derive(Debug, Clone, Default)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watch>>,
    assigns: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    heap: VarHeap,
    phase: Vec<bool>,
    seen: Vec<bool>,
    ok: bool,
    /// Total conflicts across all `solve` calls.
    pub conflicts: u64,
    /// Total decisions across all `solve` calls.
    pub decisions: u64,
    /// Total propagated literals across all `solve` calls.
    pub propagations: u64,
    /// Conflict budget per `solve` call (`None` = unbounded).
    pub conflict_budget: Option<u64>,
    /// Cooperative cancellation flag, polled every
    /// [`CANCEL_CHECK_INTERVAL`] propagate/decide rounds of the search
    /// loop (`None` = never cancelled).
    pub cancel: Option<CancelToken>,
    /// Optional deadline, polled at the same stride as `cancel`; expiry
    /// unwinds the search with [`SolveResult::TimedOut`].
    pub deadline: Option<Deadline>,
}

const VAR_DECAY: f64 = 1.0 / 0.95;
const RESCALE_LIMIT: f64 = 1e100;
const LUBY_UNIT: u64 = 64;
/// How many search-loop rounds pass between two cancellation polls: one
/// relaxed atomic load every 256 propagate/decide steps keeps the
/// overhead unmeasurable while a poisoned token stops the solver within
/// microseconds.
pub const CANCEL_CHECK_INTERVAL: u64 = 256;

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            var_inc: 1.0,
            ok: true,
            ..Solver::default()
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of clauses (original and learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.insert(v, &self.activity);
        v
    }

    fn value_lit(&self, l: Lit) -> LBool {
        match self.assigns[l.var().idx()] {
            LBool::Undef => LBool::Undef,
            LBool::True => LBool::from_bool(!l.is_neg()),
            LBool::False => LBool::from_bool(l.is_neg()),
        }
    }

    /// Model value of `v` after [`SolveResult::Sat`]. Unconstrained
    /// variables report `false`.
    pub fn model_value(&self, v: Var) -> bool {
        matches!(self.assigns[v.idx()], LBool::True)
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    /// Adds a clause, simplifying against the level-0 assignment.
    ///
    /// Returns `false` when the clause (or an earlier one) makes the
    /// formula unsatisfiable outright.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        // A previous solve may have left a partial assignment behind.
        self.cancel_until(0);
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            match self.value_lit(l) {
                LBool::True => return true, // satisfied at level 0
                LBool::False => continue,   // falsified at level 0: drop
                LBool::Undef => {
                    if c.contains(&!l) {
                        return true; // tautology
                    }
                    if !c.contains(&l) {
                        c.push(l);
                    }
                }
            }
        }
        match c.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(c[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach(c);
                true
            }
        }
    }

    fn attach(&mut self, lits: Vec<Lit>) -> ClauseRef {
        let cref = self.clauses.len() as ClauseRef;
        let (w0, w1) = (lits[0], lits[1]);
        self.watches[(!w0).idx()].push(Watch { cref, blocker: w1 });
        self.watches[(!w1).idx()].push(Watch { cref, blocker: w0 });
        self.clauses.push(Clause { lits });
        cref
    }

    fn enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.value_lit(l), LBool::Undef);
        let v = l.var();
        self.assigns[v.idx()] = LBool::from_bool(!l.is_neg());
        self.level[v.idx()] = self.decision_level() as u32;
        self.reason[v.idx()] = reason;
        self.phase[v.idx()] = !l.is_neg();
        self.trail.push(l);
    }

    /// Two-watched-literal unit propagation; returns a conflicting clause.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;
            let mut ws = std::mem::take(&mut self.watches[p.idx()]);
            let mut i = 0;
            while i < ws.len() {
                let w = ws[i];
                if self.value_lit(w.blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                // Normalise: watched literal !p at position 1.
                let cref = w.cref as usize;
                if self.clauses[cref].lits[0] == !p {
                    self.clauses[cref].lits.swap(0, 1);
                }
                let first = self.clauses[cref].lits[0];
                if first != w.blocker && self.value_lit(first) == LBool::True {
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Find a new literal to watch.
                let mut moved = false;
                for k in 2..self.clauses[cref].lits.len() {
                    if self.value_lit(self.clauses[cref].lits[k]) != LBool::False {
                        self.clauses[cref].lits.swap(1, k);
                        let nw = self.clauses[cref].lits[1];
                        self.watches[(!nw).idx()].push(Watch {
                            cref: w.cref,
                            blocker: first,
                        });
                        ws.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Unit or conflicting.
                if self.value_lit(first) == LBool::False {
                    // Conflict: restore remaining watchers.
                    self.qhead = self.trail.len();
                    let mut orig = std::mem::take(&mut self.watches[p.idx()]);
                    ws.append(&mut orig);
                    self.watches[p.idx()] = ws;
                    return Some(w.cref);
                }
                self.enqueue(first, Some(w.cref));
                i += 1;
            }
            let mut orig = std::mem::take(&mut self.watches[p.idx()]);
            ws.append(&mut orig);
            self.watches[p.idx()] = ws;
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.idx()] += self.var_inc;
        if self.activity[v.idx()] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.bumped(v, &self.activity);
    }

    /// First-UIP conflict analysis: returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, usize) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot for the asserting literal
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut confl = confl as usize;
        let mut index = self.trail.len();
        let current = self.decision_level() as u32;
        loop {
            let start = usize::from(p.is_some());
            for k in start..self.clauses[confl].lits.len() {
                let q = self.clauses[confl].lits[k];
                let v = q.var();
                if !self.seen[v.idx()] && self.level[v.idx()] > 0 {
                    self.seen[v.idx()] = true;
                    self.bump_var(v);
                    if self.level[v.idx()] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail back to the next marked literal.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().idx()] {
                    break;
                }
            }
            let lit = self.trail[index];
            self.seen[lit.var().idx()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !lit;
                break;
            }
            p = Some(lit);
            // The conflict analysis invariant guarantees a reason here
            // (only the first UIP can be a decision), and propagation
            // always enqueues a clause's position-0 literal, so the
            // implied literal sits at index 0 and is skipped by `start`.
            confl = self.reason[lit.var().idx()].expect("reason on analysis path") as usize;
            debug_assert_eq!(self.clauses[confl].lits[0], lit);
        }
        // Backjump level: highest level among the non-asserting literals.
        let mut bt = 0usize;
        let mut at = 1usize;
        for (i, l) in learnt.iter().enumerate().skip(1) {
            let lv = self.level[l.var().idx()] as usize;
            if lv > bt {
                bt = lv;
                at = i;
            }
        }
        if learnt.len() > 1 {
            learnt.swap(1, at);
        }
        for l in &learnt {
            self.seen[l.var().idx()] = false;
        }
        (learnt, bt)
    }

    fn cancel_until(&mut self, level: usize) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().expect("level");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("trail");
                let v = l.var();
                self.assigns[v.idx()] = LBool::Undef;
                self.reason[v.idx()] = None;
                self.heap.insert(v, &self.activity);
            }
        }
        self.qhead = self.qhead.min(self.trail.len());
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    /// Solves under `assumptions` (each forced true for this call only).
    ///
    /// Clauses learned during the search are kept for future calls, which
    /// is what makes deepening the BMC unrolling incremental.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SolveResult::Unsat;
        }
        let budget = self.conflict_budget.map(|b| self.conflicts + b);
        let mut restart_round = 0u64;
        let mut restart_limit = LUBY_UNIT * luby(restart_round);
        let mut conflicts_this_restart = 0u64;
        let mut rounds = 0u64;
        loop {
            rounds += 1;
            if rounds.is_multiple_of(CANCEL_CHECK_INTERVAL) {
                if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                    // Unwind cleanly: learned clauses stay, the trail is
                    // rolled back, and a later call can resume the search.
                    self.cancel_until(0);
                    return SolveResult::Cancelled;
                }
                if self.deadline.as_ref().is_some_and(|d| d.check().is_err()) {
                    self.cancel_until(0);
                    return SolveResult::TimedOut;
                }
            }
            if let Some(confl) = self.propagate() {
                self.conflicts += 1;
                conflicts_this_restart += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SolveResult::Unsat;
                }
                // A conflict inside the assumption prefix means the
                // assumptions themselves are inconsistent with the clauses.
                if self.decision_level() <= assumptions.len() {
                    let (learnt, _) = self.analyze(confl);
                    self.cancel_until(0);
                    // The learnt clause is still sound: keep it for the
                    // next call before reporting Unsat-under-assumptions.
                    self.add_clause(&learnt);
                    return SolveResult::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                self.cancel_until(bt);
                self.learn(learnt);
                self.var_inc *= VAR_DECAY;
                if let Some(b) = budget {
                    if self.conflicts >= b {
                        self.cancel_until(0);
                        return SolveResult::Unknown;
                    }
                }
                if conflicts_this_restart >= restart_limit {
                    restart_round += 1;
                    restart_limit = LUBY_UNIT * luby(restart_round);
                    conflicts_this_restart = 0;
                    self.cancel_until(0);
                }
            } else if self.decision_level() < assumptions.len() {
                // Re-assert the next assumption as a decision.
                let a = assumptions[self.decision_level()];
                match self.value_lit(a) {
                    LBool::True => self.new_decision_level(),
                    LBool::False => return SolveResult::Unsat,
                    LBool::Undef => {
                        self.new_decision_level();
                        self.enqueue(a, None);
                    }
                }
            } else if let Some(v) = self.pick_branch_var() {
                self.decisions += 1;
                self.new_decision_level();
                self.enqueue(Lit::new(v, !self.phase[v.idx()]), None);
            } else {
                return SolveResult::Sat;
            }
        }
    }

    fn learn(&mut self, learnt: Vec<Lit>) {
        debug_assert!(!learnt.is_empty());
        if learnt.len() == 1 {
            self.enqueue(learnt[0], None);
            return;
        }
        let asserting = learnt[0];
        let cref = self.attach(learnt);
        self.enqueue(asserting, Some(cref));
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        loop {
            let v = self.heap.pop(&self.activity)?;
            if self.assigns[v.idx()] == LBool::Undef {
                return Some(v);
            }
        }
    }
}

/// The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, ...).
fn luby(mut x: u64) -> u64 {
    let (mut size, mut seq) = (1u64, 0u32);
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn luby_sequence() {
        let seq: Vec<u64> = (0..9).map(luby).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1]);
    }

    #[test]
    fn trivial_sat_and_model() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        assert!(s.add_clause(&[Lit::pos(v[0])]));
        assert!(s.add_clause(&[Lit::neg(v[1])]));
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert!(s.model_value(v[0]));
        assert!(!s.model_value(v[1]));
    }

    #[test]
    fn unit_contradiction_is_unsat() {
        let mut s = Solver::new();
        let v = s.new_var();
        assert!(s.add_clause(&[Lit::pos(v)]));
        assert!(!s.add_clause(&[Lit::neg(v)]));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn implication_chain_propagates() {
        // x0 and (¬x_i ∨ x_{i+1}) for a long chain forces every var true.
        let mut s = Solver::new();
        let v = vars(&mut s, 64);
        assert!(s.add_clause(&[Lit::pos(v[0])]));
        for w in v.windows(2) {
            assert!(s.add_clause(&[Lit::neg(w[0]), Lit::pos(w[1])]));
        }
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert!(v.iter().all(|&x| s.model_value(x)));
    }

    #[test]
    fn chain_with_final_negation_is_unsat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 32);
        assert!(s.add_clause(&[Lit::pos(v[0])]));
        for w in v.windows(2) {
            assert!(s.add_clause(&[Lit::neg(w[0]), Lit::pos(w[1])]));
        }
        let _ = s.add_clause(&[Lit::neg(v[31])]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    /// Pigeonhole principle PHP(n+1, n): n+1 pigeons in n holes, UNSAT.
    fn pigeonhole(pigeons: usize, holes: usize) -> (Solver, Vec<Vec<Lit>>) {
        let mut s = Solver::new();
        let x: Vec<Vec<Lit>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| Lit::pos(s.new_var())).collect())
            .collect();
        // Every pigeon sits somewhere.
        for p in &x {
            assert!(s.add_clause(p));
        }
        // No two pigeons share a hole.
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                for (&a, &b) in x[p1].iter().zip(&x[p2]) {
                    assert!(s.add_clause(&[!a, !b]));
                }
            }
        }
        (s, x)
    }

    #[test]
    fn pigeonhole_unsat() {
        let (mut s, _) = pigeonhole(5, 4);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(s.conflicts > 0, "PHP must require real search");
    }

    #[test]
    fn pigeonhole_exact_fit_is_sat() {
        let (mut s, x) = pigeonhole(4, 4);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        // The model must be a permutation.
        for p in &x {
            assert_eq!(p.iter().filter(|&&l| s.model_value(l.var())).count(), 1);
        }
    }

    #[test]
    fn assumptions_are_transient() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        assert!(s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]));
        assert_eq!(
            s.solve(&[Lit::neg(v[0]), Lit::neg(v[1])]),
            SolveResult::Unsat
        );
        // Without assumptions the formula is satisfiable again.
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        // And a different assumption set flips the model.
        assert_eq!(s.solve(&[Lit::neg(v[0])]), SolveResult::Sat);
        assert!(s.model_value(v[1]));
    }

    #[test]
    fn incremental_clauses_between_solves() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        assert!(s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]));
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert!(s.add_clause(&[Lit::neg(v[0])]));
        // ¬v0 propagates v1 at level 0, so ¬v1 closes the formula: the
        // solver may already report unsatisfiability here.
        let _ = s.add_clause(&[Lit::neg(v[1])]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        let mut s = Solver::new();
        let v = s.new_var();
        let w = s.new_var();
        assert!(s.add_clause(&[Lit::pos(v), Lit::pos(v), Lit::pos(w)]));
        assert!(s.add_clause(&[Lit::pos(v), Lit::neg(v)]));
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn poisoned_token_cancels_the_search_promptly() {
        // PHP(8,7) takes thousands of conflicts; a pre-poisoned token
        // must stop the search within one check interval, without
        // panicking and without corrupting solver state.
        let (mut s, _) = pigeonhole(8, 7);
        let token = CancelToken::new();
        token.cancel();
        s.cancel = Some(token);
        let start = std::time::Instant::now();
        assert_eq!(s.solve(&[]), SolveResult::Cancelled);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "cancellation must be prompt"
        );
        assert!(
            s.conflicts < 100_000,
            "search must stop early, saw {} conflicts",
            s.conflicts
        );
        // Un-poisoning resumes: the instance is still decidable and the
        // clauses learned before cancellation are still sound.
        s.cancel = None;
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn expired_manual_deadline_times_out_within_one_interval() {
        // Deadline semantics with injected clock ticks (no sleeps): the
        // clock is advanced past the limit "mid-flight" and the solver
        // must unwind within one check interval, resumable afterwards.
        let (mut s, _) = pigeonhole(8, 7);
        let clock = asv_sim::ManualClock::new();
        s.deadline = Some(asv_sim::Deadline::Manual {
            clock: clock.clone(),
            limit: 5,
        });
        assert_eq!(s.solve(&[]), SolveResult::Unsat, "clock at 0: no timeout");
        let (mut s, _) = pigeonhole(8, 7);
        s.deadline = Some(asv_sim::Deadline::Manual {
            clock: clock.clone(),
            limit: 5,
        });
        clock.advance(6);
        assert_eq!(s.solve(&[]), SolveResult::TimedOut);
        assert!(
            s.conflicts <= CANCEL_CHECK_INTERVAL,
            "search must stop within one check interval, saw {} conflicts",
            s.conflicts
        );
        // Removing the deadline resumes the search with learned clauses
        // intact.
        s.deadline = None;
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn unpoisoned_token_changes_nothing() {
        let (mut s, _) = pigeonhole(5, 4);
        s.cancel = Some(CancelToken::new());
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn conflict_budget_reports_unknown() {
        let (mut s, _) = pigeonhole(7, 6);
        s.conflict_budget = Some(1);
        assert_eq!(s.solve(&[]), SolveResult::Unknown);
        s.conflict_budget = None;
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn random_3sat_models_satisfy_clauses() {
        // Deterministic LCG-generated under-constrained 3-SAT instances:
        // every reported model must actually satisfy all clauses.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for round in 0..10 {
            let n = 20 + round;
            let m = 3 * n; // ratio 3: almost surely SAT
            let mut s = Solver::new();
            let v = vars(&mut s, n as usize);
            let mut cls = Vec::new();
            for _ in 0..m {
                let c: Vec<Lit> = (0..3)
                    .map(|_| Lit::new(v[(next() % n) as usize], next() % 2 == 1))
                    .collect();
                s.add_clause(&c);
                cls.push(c);
            }
            if s.solve(&[]) == SolveResult::Sat {
                for c in &cls {
                    assert!(
                        c.iter().any(|&l| s.model_value(l.var()) != l.is_neg()),
                        "model must satisfy every clause"
                    );
                }
            }
        }
    }
}
