//! Per-assertion cone hashing for incremental re-verification.
//!
//! An assertion's *cone* is exactly what a symbolic check of that
//! assertion can observe: the compiled property program, the `sym_live`
//! subset of the bytecode reachable from the program's signal roots, and
//! the design facts the unrolling schedule depends on (clock/reset
//! discipline, levelization, opt level, the signal table). Hashing the
//! cone — and nothing else — yields a key with the property asv-store's
//! incremental path is built on: **an edit outside every assertion's
//! cone leaves every cone hash unchanged**, so the repair loop re-runs
//! only the assertions whose hashes moved — O(diff), not O(design).
//!
//! Hashes are computed with [`asv_ir::StableHasher`], so they are valid
//! on-disk key material across processes and platforms. Canonical forms
//! are the `Debug` renderings of the compiled bytecode and property
//! programs: these contain interned `SigId`s, op streams and tick
//! offsets but nothing positional (no source spans), and any change to
//! the bytecode shape changes the rendering — a representation change
//! auto-invalidates stale hashes instead of silently aliasing them.
//!
//! ## Why the whole signal table is included
//!
//! Rendered bytecode refers to signals by raw `SigId`. Two designs with
//! different signal sets can intern different names at the same id, so a
//! cone hash over bytecode alone could alias them. Including the full
//! `(name, width)` table in id order makes every `SigId` in the
//! rendering unambiguous. The cost is conservative invalidation — adding
//! *any* signal renumbers nothing but still changes every cone hash —
//! which is safe, and free for the repair workload, whose candidate
//! patches are expression edits that keep the signal set fixed.
//!
//! ## Soundness boundary
//!
//! A cone hash certifies a verdict only for engines whose result is a
//! function of the cone: the symbolic engine on `sym_live`-masked
//! designs. Fuzzing and sampling verdicts depend on whole-design
//! coverage feedback and RNG interleaving, so cone-keyed reuse is
//! restricted by callers (asv-serve, asv-eval) to designs that pass
//! [`crate::engine::supports`] at `OptLevel::Full` with an engine whose
//! canonical path is symbolic. Everything else uses exact whole-design
//! keys.

use std::hash::{Hash, Hasher};

use asv_ir::{OptLevel, StableHasher};
use asv_sim::compile::CompiledDesign;

use crate::engine::{compile_props, prop_roots, BmcError, PropSym};

/// One assertion's stable cone hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssertionCone {
    /// Directive index in `Module::assertions()` order.
    pub index: usize,
    /// `AssertDirective::log_name` (the name verdicts report).
    pub name: String,
    /// Stable 128-bit hash of the assertion's cone.
    pub hash: u128,
}

/// Mixes the design facts every cone depends on: the unrolling schedule
/// discipline, the signal table that grounds every rendered `SigId`, and
/// the failure-report identity (module name plus every directive's log
/// name and `$error` message — a `Fails` verdict's `AssertionFailure`s
/// embed all three, so leaving them out would let bit-different
/// counterexample reports alias one cone key). Including *every*
/// directive's message is
/// conservative — a message edit invalidates all cones — and sound.
fn hash_design_base(h: &mut StableHasher, cd: &CompiledDesign) {
    (cd.opt_level() == OptLevel::Full).hash(h);
    cd.is_levelized().hash(h);
    let design = cd.design();
    design.module.name.hash(h);
    design.clock().hash(h);
    design.reset().hash(h);
    for dir in design.module.assertions() {
        dir.log_name().hash(h);
        dir.message.hash(h);
    }
    let names = cd.names();
    names.len().hash(h);
    for (idx, name) in names.iter().enumerate() {
        name.hash(h);
        cd.width(asv_ir::SigId(idx as u32)).hash(h);
    }
}

/// Mixes one property's compiled program (canonical `Debug` form).
fn hash_prop(h: &mut StableHasher, prop: &PropSym) {
    format!("{prop:?}").hash(h);
}

/// Mixes the `sym_live` bytecode cone for the given masks. At
/// `OptLevel::None` the engine executes *every* step (no masking), so
/// the caller passes all-true masks and the hash covers the whole
/// design — conservative and sound.
fn hash_live_steps(h: &mut StableHasher, cd: &CompiledDesign, live: &(Vec<bool>, Vec<bool>)) {
    let (comb_live, seq_live) = live;
    for (step, _) in cd.comb_steps().iter().zip(comb_live).filter(|(_, &l)| l) {
        format!("{step:?}").hash(h);
    }
    // Domain separator: a comb step can never alias a seq block even if
    // their renderings coincide.
    h.write_u8(0xfe);
    for (block, _) in cd.seq_blocks().iter().zip(seq_live).filter(|(_, &l)| l) {
        format!("{block:?}").hash(h);
    }
}

/// The live masks the engine would use for these roots: `sym_live` at
/// `OptLevel::Full`, everything-live otherwise (mirrors the gate in
/// `engine::check_budgeted`).
fn live_masks(cd: &CompiledDesign, props: &[PropSym]) -> (Vec<bool>, Vec<bool>) {
    if cd.opt_level() == OptLevel::Full {
        cd.sym_live(&prop_roots(props))
    } else {
        (
            vec![true; cd.comb_steps().len()],
            vec![true; cd.seq_blocks().len()],
        )
    }
}

/// Computes every assertion's cone hash, in directive order.
///
/// # Errors
///
/// [`BmcError`] when a directive references an unknown property — the
/// same designs `engine::check` rejects before its first SAT call.
pub fn assertion_cones(cd: &CompiledDesign) -> Result<Vec<AssertionCone>, BmcError> {
    let props = compile_props(cd)?;
    let mut cones = Vec::with_capacity(props.len());
    for (index, prop) in props.iter().enumerate() {
        let single = std::slice::from_ref(prop);
        let mut h = StableHasher::with_domain("asv-cone-assertion");
        hash_design_base(&mut h, cd);
        hash_prop(&mut h, prop);
        hash_live_steps(&mut h, cd, &live_masks(cd, single));
        cones.push(AssertionCone {
            index,
            name: prop.name.clone(),
            hash: h.finish128(),
        });
    }
    Ok(cones)
}

/// The whole-job cone hash: every property plus the union of their
/// cones. Invariant under edits outside *all* assertion cones, so
/// asv-serve can cone-key complete multi-assertion jobs, not just the
/// per-assertion splits.
///
/// # Errors
///
/// As [`assertion_cones`].
pub fn design_cone_hash(cd: &CompiledDesign) -> Result<u128, BmcError> {
    let props = compile_props(cd)?;
    let mut h = StableHasher::with_domain("asv-cone-design");
    hash_design_base(&mut h, cd);
    props.len().hash(&mut h);
    for prop in &props {
        hash_prop(&mut h, prop);
    }
    hash_live_steps(&mut h, cd, &live_masks(cd, &props));
    Ok(h.finish128())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compiled(src: &str) -> CompiledDesign {
        let d = asv_verilog::compile(src).expect("compile");
        CompiledDesign::compile(&d)
    }

    /// Two independent registers, one assertion each: `p_a` observes only
    /// the `a`-cone, `p_b` only the `b`-cone.
    fn two_cones(a_rhs: &str, b_rhs: &str) -> String {
        format!(
            r#"
module two(input clk, input rst, input da, input db,
           output reg qa, output reg qb);
  always @(posedge clk) begin
    if (rst) qa <= 1'b0;
    else qa <= {a_rhs};
  end
  always @(posedge clk) begin
    if (rst) qb <= 1'b0;
    else qb <= {b_rhs};
  end
  property pa; @(posedge clk) disable iff (rst) da |-> ##1 qa; endproperty
  property pb; @(posedge clk) disable iff (rst) db |-> ##1 qb; endproperty
  p_a: assert property (pa);
  p_b: assert property (pb);
endmodule
"#
        )
    }

    #[test]
    fn hashes_are_deterministic() {
        let cd1 = compiled(&two_cones("da", "db"));
        let cd2 = compiled(&two_cones("da", "db"));
        assert_eq!(
            assertion_cones(&cd1).unwrap(),
            assertion_cones(&cd2).unwrap()
        );
        assert_eq!(
            design_cone_hash(&cd1).unwrap(),
            design_cone_hash(&cd2).unwrap()
        );
    }

    #[test]
    fn distinct_assertions_hash_distinctly() {
        let cones = assertion_cones(&compiled(&two_cones("da", "db"))).unwrap();
        assert_eq!(cones.len(), 2);
        assert_eq!(cones[0].name, "p_a");
        assert_eq!(cones[1].name, "p_b");
        assert_ne!(cones[0].hash, cones[1].hash);
    }

    #[test]
    fn edit_inside_one_cone_moves_exactly_that_hash() {
        let base = assertion_cones(&compiled(&two_cones("da", "db"))).unwrap();
        let edited = assertion_cones(&compiled(&two_cones("da", "!db"))).unwrap();
        assert_eq!(base[0], edited[0], "a-cone untouched by a b-cone edit");
        assert_ne!(base[1].hash, edited[1].hash, "b-cone edit must move p_b");
        // The whole-design hash moves with any in-cone edit.
        assert_ne!(
            design_cone_hash(&compiled(&two_cones("da", "db"))).unwrap(),
            design_cone_hash(&compiled(&two_cones("da", "!db"))).unwrap()
        );
    }

    #[test]
    fn edit_outside_every_cone_moves_no_hash() {
        // Dead logic over existing signals: no new names, outside both
        // assertion cones.
        let with_dead = |expr: &str| {
            two_cones("da", "db").replace(
                "endmodule",
                &format!("  wire dead_probe;\n  assign dead_probe = {expr};\nendmodule"),
            )
        };
        let x = assertion_cones(&compiled(&with_dead("da & db"))).unwrap();
        let y = assertion_cones(&compiled(&with_dead("da | db"))).unwrap();
        assert_eq!(x, y, "dead-logic edit must not move any cone hash");
        assert_eq!(
            design_cone_hash(&compiled(&with_dead("da & db"))).unwrap(),
            design_cone_hash(&compiled(&with_dead("da | db"))).unwrap()
        );
    }

    #[test]
    fn signal_table_grounds_sigids() {
        // Same bytecode shape, different signal set ⇒ different hashes
        // (the table is part of the material, so renumbered SigIds can
        // never alias).
        let base = two_cones("da", "db");
        let extra = base.replace("endmodule", "  wire pad;\n  assign pad = 1'b0;\nendmodule");
        let a = assertion_cones(&compiled(&base)).unwrap();
        let b = assertion_cones(&compiled(&extra)).unwrap();
        assert_ne!(a[0].hash, b[0].hash);
        assert_ne!(a[1].hash, b[1].hash);
    }

    #[test]
    fn failure_report_identity_is_key_material() {
        // A `Fails` verdict embeds the module name and the directive's
        // `$error` message; both must move the cone hash.
        let base = two_cones("da", "db");
        let renamed = base.replace("module two(", "module renamed(");
        assert_ne!(
            design_cone_hash(&compiled(&base)).unwrap(),
            design_cone_hash(&compiled(&renamed)).unwrap()
        );
        let messaged = base.replace(
            "p_a: assert property (pa);",
            "p_a: assert property (pa) else $error(\"boom\");",
        );
        let a = assertion_cones(&compiled(&base)).unwrap();
        let b = assertion_cones(&compiled(&messaged)).unwrap();
        assert_ne!(a[0].hash, b[0].hash);
    }

    #[test]
    fn opt_levels_never_alias() {
        let d = asv_verilog::compile(&two_cones("da", "db")).unwrap();
        let full = CompiledDesign::compile_opt(&d, OptLevel::Full);
        let none = CompiledDesign::compile_opt(&d, OptLevel::None);
        let fh = assertion_cones(&full).unwrap();
        let nh = assertion_cones(&none).unwrap();
        assert_ne!(fh[0].hash, nh[0].hash);
        assert_ne!(
            design_cone_hash(&full).unwrap(),
            design_cone_hash(&none).unwrap()
        );
    }
}
