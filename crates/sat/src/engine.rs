//! The symbolic bounded model checker.
//!
//! [`check`] unrolls a [`CompiledDesign`] over time frames (reset protocol
//! and free-input symbolics exactly as [`asv_sim::StimulusGen`] drives the
//! concrete simulator), compiles every SVA directive into the same frame
//! logic — including `$past`/`$rose`/`$fell`/`$stable` history
//! sub-programs evaluated at shifted frames — and asks the embedded CDCL
//! solver, depth by depth, whether any input sequence makes any assertion
//! attempt fail. Depth *k+1* reuses the solver state (and thus all learned
//! clauses) of depth *k*; the first satisfiable depth yields a
//! minimal-depth counterexample, decoded back into a concrete
//! [`Stimulus`].
//!
//! When every depth up to the bound is unsatisfiable the result is a
//! bounded *proof*: `Holds` with per-assertion vacuity decided by a second
//! round of queries (an assertion is vacuous iff *no* input sequence
//! completes a non-vacuous attempt — strictly stronger than the sampled
//! notion the simulation oracle reports).

use crate::aig::{Aig, NLit, Node};
use crate::blast::{run_sym, BlastError, SymEnv, SymVec};
use crate::solver::{Lit, SolveResult, Solver, Var};
use crate::unroll::{clock_edge_sym, settle_sym, SymState};
use asv_sim::cancel::{Budget, CancelToken, Exhausted, Resource, Stop};
use asv_sim::compile::{compile_expr, CompiledDesign, ExprProg, HistoryKind, NameRef, SigId};
use asv_sim::stimulus::{InputVector, Stimulus};
use asv_sim::value::Value;
use asv_trace::{probe, Cost, SpanKind, TraceSink};
use asv_verilog::ast::{AssertTarget, Module, PropExpr, PropertyDecl, SeqExpr};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Bounds and budgets of a symbolic check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BmcOptions {
    /// Post-reset cycles (matches `Verifier::depth`).
    pub depth: usize,
    /// Reset cycles at the head of every run.
    pub reset_cycles: usize,
    /// Conflict budget per SAT call (`None` = unbounded).
    pub conflict_budget: Option<u64>,
    /// Cap on AIG nodes before the engine gives up.
    pub node_limit: usize,
}

impl Default for BmcOptions {
    fn default() -> Self {
        BmcOptions {
            depth: 12,
            reset_cycles: 2,
            conflict_budget: Some(1 << 20),
            node_limit: 4_000_000,
        }
    }
}

/// Per-probe conflict budget during witness canonicalisation: bit-fixing
/// probes after the main solve are near-pure propagation, so a small cap
/// bounds the worst case without ever costing a verdict (the raw model's
/// witness is kept as the fallback).
const MINIMIZE_CONFLICT_BUDGET: u64 = 50_000;

/// Result of a symbolic check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BmcVerdict {
    /// Some input sequence violates an assertion; `stimulus` is a
    /// minimal-depth witness (replay it on the simulator for logs).
    Fails {
        /// The violating input sequence.
        stimulus: Stimulus,
    },
    /// No input sequence up to the bound violates any assertion.
    Holds {
        /// Assertions that cannot fire non-vacuously on any input
        /// sequence of the bounded length (directive order).
        vacuous: Vec<String>,
    },
}

/// Why a symbolic check could not produce a verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BmcError {
    /// The design or its properties fall outside the encodable subset;
    /// callers fall back to the simulation oracle.
    Unsupported(String),
    /// An internal resource invariant failed (e.g. witness minimisation
    /// lost satisfiability); callers treat this like exhaustion.
    Resource(String),
    /// A resource budget (conflicts, AIG nodes, deadline) was exhausted;
    /// the structured record says which and by how much.
    Exhausted(Exhausted),
    /// A cooperative [`CancelToken`] was poisoned mid-check (this engine
    /// lost a portfolio race); the verdict is simply absent, never wrong.
    Cancelled,
}

impl fmt::Display for BmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BmcError::Unsupported(m) => write!(f, "symbolic engine unsupported: {m}"),
            BmcError::Resource(m) => write!(f, "symbolic engine budget exhausted: {m}"),
            BmcError::Exhausted(e) => write!(f, "symbolic engine {e}"),
            BmcError::Cancelled => write!(f, "symbolic check cancelled"),
        }
    }
}

impl From<Stop> for BmcError {
    fn from(s: Stop) -> Self {
        match s {
            Stop::Cancelled => BmcError::Cancelled,
            Stop::Exhausted(e) => BmcError::Exhausted(e),
        }
    }
}

impl std::error::Error for BmcError {}

impl From<BlastError> for BmcError {
    fn from(e: BlastError) -> Self {
        BmcError::Unsupported(e.0)
    }
}

// ---------------------------------------------------------------------------
// Property compilation
// ---------------------------------------------------------------------------

/// One boolean of a linear sequence, evaluated `tick_off` ticks after the
/// attempt start.
#[derive(Debug)]
pub(crate) struct Atom {
    tick_off: u32,
    prog: ExprProg,
}

/// A flattened linear sequence: atoms in evaluation order plus the end
/// offset (`SeqExpr::duration`).
#[derive(Debug)]
pub(crate) struct SeqProg {
    atoms: Vec<Atom>,
    end_off: u32,
}

#[derive(Debug)]
pub(crate) enum PropBody {
    Seq(SeqProg),
    Implication {
        antecedent: SeqProg,
        overlapping: bool,
        consequent: SeqProg,
    },
}

/// A directive compiled against the design's signal interning.
///
/// `Debug` output doubles as the property's canonical form for the cone
/// hash (`crate::cone`): it renders the full compiled program — tick
/// offsets, postfix ops, interned `SigId`s — and nothing position- or
/// span-dependent.
#[derive(Debug)]
pub(crate) struct PropSym {
    /// `AssertDirective::log_name`.
    pub(crate) name: String,
    disable: Option<ExprProg>,
    body: PropBody,
    /// Ticks beyond the start the attempt may observe (the monitor's
    /// `property_window`).
    window: u32,
}

fn flatten_seq<R>(seq: &SeqExpr, off: u32, resolve: &R, out: &mut Vec<Atom>) -> u32
where
    R: Fn(&str) -> NameRef,
{
    match seq {
        SeqExpr::Expr(e) => {
            out.push(Atom {
                tick_off: off,
                prog: compile_expr(e, resolve, true),
            });
            off
        }
        SeqExpr::Delay {
            lhs, cycles, rhs, ..
        } => {
            let end_l = flatten_seq(lhs, off, resolve, out);
            flatten_seq(rhs, end_l + cycles, resolve, out)
        }
    }
}

fn compile_seq<R>(seq: &SeqExpr, resolve: &R) -> SeqProg
where
    R: Fn(&str) -> NameRef,
{
    let mut atoms = Vec::new();
    let end_off = flatten_seq(seq, 0, resolve, &mut atoms);
    SeqProg { atoms, end_off }
}

fn resolve_property(module: &Module, dir_idx: usize) -> Option<&PropertyDecl> {
    let dir = module.assertions().nth(dir_idx)?;
    match &dir.target {
        AssertTarget::Named(n) => module.properties().find(|p| &p.name == n),
        AssertTarget::Inline(p) => Some(p),
    }
}

pub(crate) fn compile_props(cd: &CompiledDesign) -> Result<Vec<PropSym>, BmcError> {
    let module = &cd.design().module;
    let resolve = |name: &str| match cd.sig(name) {
        Some(sig) => NameRef::Sig(sig),
        None => NameRef::Unknown,
    };
    let mut props = Vec::new();
    for (i, dir) in module.assertions().enumerate() {
        let Some(prop) = resolve_property(module, i) else {
            return Err(BmcError::Unsupported(format!(
                "directive `{}` references an unknown property",
                dir.log_name()
            )));
        };
        // Semantic twin of the monitor's `property_window` (asv-sva
        // monitor.rs): any change there must be mirrored here — the
        // differential suite (tests/differential_bmc.rs) enforces the
        // agreement on enumerable designs.
        let window = match &prop.body {
            PropExpr::Seq(s) => s.duration(),
            PropExpr::Implication {
                antecedent,
                overlapping,
                consequent,
                ..
            } => antecedent.duration() + consequent.duration() + u32::from(!*overlapping),
        };
        let body = match &prop.body {
            PropExpr::Seq(s) => PropBody::Seq(compile_seq(s, &resolve)),
            PropExpr::Implication {
                antecedent,
                overlapping,
                consequent,
                ..
            } => PropBody::Implication {
                antecedent: compile_seq(antecedent, &resolve),
                overlapping: *overlapping,
                consequent: compile_seq(consequent, &resolve),
            },
        };
        props.push(PropSym {
            name: dir.log_name().to_string(),
            disable: prop
                .disable
                .as_ref()
                .map(|d| compile_expr(d, &resolve, true)),
            body,
            window,
        });
    }
    Ok(props)
}

// ---------------------------------------------------------------------------
// Trace environment
// ---------------------------------------------------------------------------

/// Environment evaluating property programs over sampled symbolic rows,
/// the symbolic twin of the monitor's `TraceExecEnv`.
struct TraceSymEnv<'a> {
    rows: &'a [SymState],
    t: usize,
}

impl SymEnv for TraceSymEnv<'_> {
    fn load(&self, sig: SigId) -> SymVec {
        self.rows[self.t].vals[sig.idx()].clone()
    }

    fn history(
        &self,
        g: &mut Aig,
        kind: HistoryKind,
        arg: &ExprProg,
        n: usize,
    ) -> Result<SymVec, BlastError> {
        let at = |t: usize| TraceSymEnv { rows: self.rows, t };
        match kind {
            HistoryKind::Past => run_sym(g, arg, &at(self.t.saturating_sub(n))),
            HistoryKind::Rose | HistoryKind::Fell | HistoryKind::Stable => {
                let now = run_sym(g, arg, self)?;
                let before = if self.t == 0 {
                    match kind {
                        HistoryKind::Stable => now.clone(),
                        _ => SymVec::zeros(now.width()),
                    }
                } else {
                    run_sym(g, arg, &at(self.t - 1))?
                };
                let bit = match kind {
                    HistoryKind::Rose => g.and(now.get(0), !before.get(0)),
                    HistoryKind::Fell => g.and(!now.get(0), before.get(0)),
                    HistoryKind::Stable => {
                        // `Value` equality compares width and bits.
                        if now.width() == before.width() {
                            now.eq_bits(g, &before)
                        } else {
                            NLit::FALSE
                        }
                    }
                    HistoryKind::Past => unreachable!(),
                };
                Ok(SymVec::new(vec![bit]))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// CNF encoding
// ---------------------------------------------------------------------------

/// Incremental Tseitin encoder: AIG nodes map to solver variables once and
/// stay valid across depths.
#[derive(Default)]
struct Encoder {
    var_of: Vec<Option<Var>>,
}

impl Encoder {
    fn var(&mut self, g: &Aig, s: &mut Solver, node: u32) -> Var {
        if self.var_of.len() < g.len() {
            self.var_of.resize(g.len(), None);
        }
        if let Some(v) = self.var_of[node as usize] {
            return v;
        }
        // Iterative post-order over the unencoded cone.
        let mut stack = vec![node];
        while let Some(&n) = stack.last() {
            if self.var_of[n as usize].is_some() {
                stack.pop();
                continue;
            }
            match g.node(n) {
                Node::Const => {
                    // Constants are folded away during construction; a
                    // constant root is handled by callers. Encode it as a
                    // frozen-false variable for completeness.
                    let v = s.new_var();
                    s.add_clause(&[Lit::neg(v)]);
                    self.var_of[n as usize] = Some(v);
                    stack.pop();
                }
                Node::Input => {
                    self.var_of[n as usize] = Some(s.new_var());
                    stack.pop();
                }
                Node::And(a, b) => {
                    let (na, nb) = (a.node() as usize, b.node() as usize);
                    if self.var_of[na].is_none() {
                        stack.push(a.node());
                        continue;
                    }
                    if self.var_of[nb].is_none() {
                        stack.push(b.node());
                        continue;
                    }
                    let la = Lit::new(self.var_of[na].expect("encoded"), a.is_inverted());
                    let lb = Lit::new(self.var_of[nb].expect("encoded"), b.is_inverted());
                    let v = s.new_var();
                    // v <-> la & lb
                    s.add_clause(&[Lit::neg(v), la]);
                    s.add_clause(&[Lit::neg(v), lb]);
                    s.add_clause(&[Lit::pos(v), !la, !lb]);
                    self.var_of[n as usize] = Some(v);
                    stack.pop();
                }
            }
        }
        self.var_of[node as usize].expect("just encoded")
    }

    fn lit(&mut self, g: &Aig, s: &mut Solver, l: NLit) -> Lit {
        let v = self.var(g, s, l.node());
        Lit::new(v, l.is_inverted())
    }

    /// Model value of an AIG literal; unencoded nodes are unconstrained
    /// and read as false.
    fn model(&self, s: &Solver, l: NLit) -> bool {
        if let Some(b) = l.as_const() {
            return b;
        }
        match self.var_of.get(l.node() as usize).copied().flatten() {
            Some(v) => s.model_value(v) != l.is_inverted(),
            None => l.is_inverted(),
        }
    }
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

struct Engine<'a> {
    cd: &'a CompiledDesign,
    opts: BmcOptions,
    budget: Budget,
    g: Aig,
    solver: Solver,
    enc: Encoder,
    /// Free inputs (name, width), in `StimulusGen` order.
    free_inputs: Vec<(String, u32)>,
    reset: Option<(String, bool)>,
    state: SymState,
    rows: Vec<SymState>,
    /// Per frame, the symbolic free inputs in `free_inputs` order.
    frame_inputs: Vec<Vec<SymVec>>,
    /// Dead-logic elimination masks for the unrolling: `(comb, seq)`
    /// liveness from `CompiledDesign::sym_live` (None = blast everything,
    /// as the `supports` probe and `OptLevel::None` designs do).
    live: Option<(Vec<bool>, Vec<bool>)>,
}

impl<'a> Engine<'a> {
    fn new(
        cd: &'a CompiledDesign,
        opts: BmcOptions,
        budget: &Budget,
        live: Option<(Vec<bool>, Vec<bool>)>,
    ) -> Result<Self, BmcError> {
        if !cd.is_levelized() {
            return Err(BmcError::Unsupported(
                "combinational logic is not levelizable (cyclic, latch-style, \
                 or dynamically indexed)"
                    .into(),
            ));
        }
        let design = cd.design();
        if design.module.assertions().count() == 0 {
            return Err(BmcError::Unsupported("design has no assertions".into()));
        }
        let gen = asv_sim::StimulusGen::new(design);
        let free_inputs = gen.free_inputs().to_vec();
        let reset = design.reset().map(|(n, al)| (n.to_string(), al));
        let mut solver = Solver::new();
        solver.conflict_budget = opts.conflict_budget;
        solver.cancel = budget.cancel_token().cloned();
        solver.deadline = budget.deadline().cloned();
        Ok(Engine {
            cd,
            opts,
            budget: budget.clone(),
            g: Aig::new(),
            solver,
            enc: Encoder::default(),
            free_inputs,
            reset,
            state: SymState::init(cd),
            rows: Vec::new(),
            frame_inputs: Vec::new(),
            live,
        })
    }

    /// Folds the engine-wide conflict cap into the solver's per-call
    /// budget: the remaining allowance is the cap minus conflicts the
    /// solver has already spent across previous depths.
    fn refresh_conflict_budget(&mut self) {
        let per_call = self.opts.conflict_budget;
        let remaining = self
            .budget
            .max_conflicts()
            .map(|m| m.saturating_sub(self.solver.conflicts));
        self.solver.conflict_budget = match (per_call, remaining) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        };
    }

    /// The structured error for a solver that reported
    /// [`SolveResult::Unknown`] (conflict budget spent).
    fn conflicts_exhausted(&self) -> BmcError {
        if let Err(stop) = self.budget.check_conflicts(self.solver.conflicts) {
            return stop.into();
        }
        BmcError::Exhausted(Exhausted {
            resource: Resource::SatConflicts,
            spent: self.solver.conflicts,
            limit: self.opts.conflict_budget.unwrap_or(u64::MAX),
        })
    }

    /// The structured error for a solver that reported
    /// [`SolveResult::TimedOut`] (deadline expired mid-search).
    fn timed_out(&self) -> BmcError {
        match self.budget.check() {
            Err(stop) => stop.into(),
            Ok(()) => BmcError::Exhausted(Exhausted {
                resource: Resource::WallClock,
                spent: 0,
                limit: 0,
            }),
        }
    }

    /// Unrolls one more frame: drive inputs, settle, sample, clock, settle
    /// — the exact shape of `Simulator::step`.
    fn push_frame(&mut self) -> Result<(), BmcError> {
        let t = self.rows.len();
        let in_reset = t < self.opts.reset_cycles;
        if let Some((rname, active_low)) = &self.reset {
            let asserted = u64::from(!*active_low);
            let deasserted = 1 - asserted;
            let sig = self.cd.sig(rname).expect("reset is a known signal");
            let v = if in_reset { asserted } else { deasserted };
            self.state.vals[sig.idx()] = SymVec::from_value(Value::new(v, self.cd.width(sig)));
        }
        let mut frame = Vec::with_capacity(self.free_inputs.len());
        for (name, _) in &self.free_inputs {
            let sig = self.cd.sig(name).expect("input is a known signal");
            let w = self.cd.width(sig);
            let sv = if in_reset {
                SymVec::zeros(w)
            } else {
                SymVec::new((0..w).map(|_| self.g.input()).collect())
            };
            self.state.vals[sig.idx()] = sv.clone();
            frame.push(sv);
        }
        self.frame_inputs.push(frame);
        let comb_live = self.live.as_ref().map(|l| l.0.as_slice());
        let seq_live = self.live.as_ref().map(|l| l.1.as_slice());
        settle_sym(&mut self.g, self.cd, &mut self.state, comb_live)?;
        self.rows.push(self.state.clone());
        clock_edge_sym(&mut self.g, self.cd, &mut self.state, seq_live)?;
        settle_sym(&mut self.g, self.cd, &mut self.state, comb_live)?;
        let node_cap = self
            .budget
            .max_aig_nodes()
            .map_or(self.opts.node_limit as u64, |m| {
                m.min(self.opts.node_limit as u64)
            });
        if self.g.len() as u64 > node_cap {
            return Err(BmcError::Exhausted(Exhausted {
                resource: Resource::AigNodes,
                spent: self.g.len() as u64,
                limit: node_cap,
            }));
        }
        Ok(())
    }

    /// Truthiness of a property program at tick `t`.
    fn eval_at(&mut self, prog: &ExprProg, t: usize) -> Result<NLit, BmcError> {
        let env = TraceSymEnv {
            rows: &self.rows,
            t,
        };
        let v = run_sym(&mut self.g, prog, &env)?;
        Ok(v.is_truthy(&mut self.g))
    }

    /// `(match, no_match)` of a linear sequence starting at `s` over a
    /// trace of length `len` — the symbolic form of the monitor's
    /// `match_seq`, where out-of-range atoms are *pending* and contribute
    /// to neither outcome.
    fn seq_lits(&mut self, sp: &SeqProg, s: usize, len: usize) -> Result<(NLit, NLit), BmcError> {
        let mut prefix = NLit::TRUE;
        let mut no_match = NLit::FALSE;
        for atom in &sp.atoms {
            let t = s + atom.tick_off as usize;
            if t >= len {
                break;
            }
            let e = self.eval_at(&atom.prog, t)?;
            let miss = self.g.and(prefix, !e);
            no_match = self.g.or(no_match, miss);
            prefix = self.g.and(prefix, e);
        }
        let matches = if s + (sp.end_off as usize) < len {
            prefix
        } else {
            NLit::FALSE
        };
        Ok((matches, no_match))
    }

    /// `(fail, pass)` of one attempt of `prop` starting at `s` over a
    /// trace of length `len` — the symbolic form of the monitor's
    /// `attempt`.
    fn attempt_lits(
        &mut self,
        prop: &PropSym,
        s: usize,
        len: usize,
    ) -> Result<(NLit, NLit), BmcError> {
        let disabled = match &prop.disable {
            Some(dis) => {
                let end = (s + prop.window as usize).min(len.saturating_sub(1));
                let mut acc = NLit::FALSE;
                for t in s..=end {
                    let d = self.eval_at(dis, t)?;
                    acc = self.g.or(acc, d);
                }
                acc
            }
            None => NLit::FALSE,
        };
        let enabled = !disabled;
        let (fail, pass) = match &prop.body {
            PropBody::Seq(sp) => {
                let (m, nm) = self.seq_lits(sp, s, len)?;
                (nm, m)
            }
            PropBody::Implication {
                antecedent,
                overlapping,
                consequent,
            } => {
                let (am, _) = self.seq_lits(antecedent, s, len)?;
                if am == NLit::FALSE {
                    // Antecedent pending or refuted on every path:
                    // the attempt is vacuous.
                    (NLit::FALSE, NLit::FALSE)
                } else {
                    let cstart = s + antecedent.end_off as usize + usize::from(!overlapping);
                    let (cm, cnm) = self.seq_lits(consequent, cstart, len)?;
                    (self.g.and(am, cnm), self.g.and(am, cm))
                }
            }
        };
        Ok((self.g.and(enabled, fail), self.g.and(enabled, pass)))
    }

    /// Canonicalises the current SAT model into the *lexicographically
    /// smallest* violating input assignment: every free input bit, in
    /// `(frame, input, bit)` order, is forced to 0 under assumptions when
    /// the instance stays satisfiable, else fixed to 1. The result
    /// depends only on the set of violating input sequences — not on the
    /// CNF's shape, variable numbering or VSIDS history — so the witness
    /// is identical across opt levels, engine revisions and portfolio
    /// runs, and the differential suites can compare counterexamples
    /// bit-for-bit.
    ///
    /// Minimisation probes run under their own small conflict budget
    /// ([`MINIMIZE_CONFLICT_BUDGET`]): after the main solve, fixing bits
    /// is almost always pure propagation, so a genuinely hard probe means
    /// canonicalisation is not worth its cost. The caller keeps the raw
    /// witness it stashed before the call, so abandoning here never loses
    /// the counterexample.
    ///
    /// # Errors
    ///
    /// [`BmcError::Cancelled`] when the token is poisoned mid-probe;
    /// exhausting the probe budget abandons canonicalisation (any other
    /// error is treated the same way by the caller).
    fn minimize_witness(&mut self, fail: Lit, len: usize) -> Result<(), BmcError> {
        let saved = self.solver.conflict_budget;
        self.solver.conflict_budget = Some(saved.map_or(MINIMIZE_CONFLICT_BUDGET, |b| {
            b.min(MINIMIZE_CONFLICT_BUDGET)
        }));
        let r = self.minimize_witness_inner(fail, len);
        self.solver.conflict_budget = saved;
        r
    }

    fn minimize_witness_inner(&mut self, fail: Lit, len: usize) -> Result<(), BmcError> {
        let mut assumps = vec![fail];
        'bits: for t in 0..len {
            for k in 0..self.free_inputs.len() {
                let lits: Vec<NLit> = self.frame_inputs[t][k].lits().to_vec();
                for l in lits {
                    if l.as_const().is_some() {
                        continue; // reset-frame constants
                    }
                    let sl = self.enc.lit(&self.g, &mut self.solver, l);
                    assumps.push(!sl);
                    match self.solver.solve(&assumps) {
                        SolveResult::Sat => {}
                        SolveResult::Unsat => {
                            assumps.pop();
                            assumps.push(sl);
                        }
                        SolveResult::Unknown | SolveResult::TimedOut => {
                            // Out of probe budget (or time): abandon
                            // canonicalisation; the caller keeps the raw
                            // witness.
                            assumps.pop();
                            break 'bits;
                        }
                        SolveResult::Cancelled => return Err(BmcError::Cancelled),
                    }
                }
            }
        }
        // Re-solve the fixed prefix so the model reflects it (the loop
        // may have ended on an Unsat probe). The prefix was satisfiable
        // at every step by construction.
        match self.solver.solve(&assumps) {
            SolveResult::Sat => Ok(()),
            SolveResult::Unsat => Err(BmcError::Resource(
                "witness minimisation lost satisfiability".into(),
            )),
            SolveResult::Unknown | SolveResult::TimedOut => {
                Err(BmcError::Resource("conflict budget exhausted".into()))
            }
            SolveResult::Cancelled => Err(BmcError::Cancelled),
        }
    }

    /// Decodes the solver model (or the trivial all-zero assignment) into
    /// a concrete stimulus of length `len`, shaped exactly like
    /// `StimulusGen` output so replays drive the simulator identically.
    fn extract_stimulus(&self, len: usize, use_model: bool) -> Stimulus {
        let mut vectors = Vec::with_capacity(len);
        for t in 0..len {
            let in_reset = t < self.opts.reset_cycles;
            let mut vec: InputVector = Vec::with_capacity(self.free_inputs.len() + 1);
            if let Some((r, active_low)) = &self.reset {
                let asserted = u64::from(!*active_low);
                vec.push((r.clone(), if in_reset { asserted } else { 1 - asserted }));
            }
            for (k, (name, _)) in self.free_inputs.iter().enumerate() {
                let v = if in_reset || !use_model {
                    0
                } else {
                    let sv = &self.frame_inputs[t][k];
                    let mut bits = 0u64;
                    for (i, &l) in sv.lits().iter().enumerate() {
                        if self.enc.model(&self.solver, l) {
                            bits |= 1 << i;
                        }
                    }
                    bits
                };
                vec.push((name.clone(), v));
            }
            vectors.push(vec);
        }
        Stimulus {
            vectors,
            reset_cycles: self.opts.reset_cycles,
        }
    }

    fn run(&mut self, props: &[PropSym]) -> Result<BmcVerdict, BmcError> {
        let max_len = self.opts.reset_cycles + self.opts.depth;
        if max_len == 0 {
            return Ok(BmcVerdict::Holds {
                vacuous: props.iter().map(|p| p.name.clone()).collect(),
            });
        }
        let trace = self.budget.trace().clone();
        for len in 1..=max_len {
            // Poll before starting the depth, not just inside it: a
            // portfolio loser cancelled between depths stops here
            // immediately instead of burning a full check interval.
            self.budget.probe(probe::SAT_DEPTH)?;
            let mut blast = trace.span(probe::SAT_BLAST, SpanKind::AigBlast);
            blast.set_code(len as u64);
            let nodes_before = self.g.len();
            self.push_frame()?;
            let mut fail = NLit::FALSE;
            for prop in props {
                for s in 0..len {
                    let (f, _) = self.attempt_lits(prop, s, len)?;
                    fail = self.g.or(fail, f);
                }
            }
            blast.add_cost(Cost {
                aig_nodes: (self.g.len() - nodes_before) as u64,
                ..Cost::default()
            });
            drop(blast);
            match fail.as_const() {
                Some(false) => continue,
                Some(true) => {
                    // Every input sequence fails; the all-zero one will do.
                    return Ok(BmcVerdict::Fails {
                        stimulus: self.extract_stimulus(len, false),
                    });
                }
                None => {
                    self.refresh_conflict_budget();
                    let q = self.enc.lit(&self.g, &mut self.solver, fail);
                    let mut solve = trace.span(probe::SAT_SOLVE, SpanKind::SatSolve);
                    solve.set_code(len as u64);
                    let conflicts_before = self.solver.conflicts;
                    let decisions_before = self.solver.decisions;
                    let propagations_before = self.solver.propagations;
                    let res = self.solver.solve(&[q]);
                    solve.add_cost(Cost {
                        conflicts: self.solver.conflicts - conflicts_before,
                        decisions: self.solver.decisions - decisions_before,
                        propagations: self.solver.propagations - propagations_before,
                        ..Cost::default()
                    });
                    drop(solve);
                    match res {
                        SolveResult::Sat => {
                            // A witness exists. Canonicalisation must
                            // never lose it: stash the raw model's
                            // stimulus first, and fall back to it if the
                            // probe budget runs out mid-minimisation.
                            let raw = self.extract_stimulus(len, true);
                            let stimulus = match self.minimize_witness(q, len) {
                                Ok(()) => self.extract_stimulus(len, true),
                                Err(BmcError::Cancelled) => return Err(BmcError::Cancelled),
                                Err(_) => raw,
                            };
                            return Ok(BmcVerdict::Fails { stimulus });
                        }
                        SolveResult::Unsat => continue,
                        SolveResult::Unknown => return Err(self.conflicts_exhausted()),
                        SolveResult::TimedOut => return Err(self.timed_out()),
                        SolveResult::Cancelled => return Err(BmcError::Cancelled),
                    }
                }
            }
        }
        // Bounded proof; decide vacuity per assertion name, mirroring the
        // oracle's `fired` bookkeeping (a name counts as fired when any
        // directive bearing it can complete a non-vacuous attempt).
        let mut pass_by_name: BTreeMap<&str, NLit> = BTreeMap::new();
        for prop in props {
            self.budget.check().map_err(BmcError::from)?;
            let mut pass = NLit::FALSE;
            for s in 0..max_len {
                let (_, pl) = self.attempt_lits(prop, s, max_len)?;
                pass = self.g.or(pass, pl);
            }
            let entry = pass_by_name.entry(&prop.name).or_insert(NLit::FALSE);
            *entry = self.g.or(*entry, pass);
        }
        let mut fired: BTreeSet<&str> = BTreeSet::new();
        for (name, lit) in &pass_by_name {
            // Each vacuity query is its own SAT solve: poll between
            // them so cancellation and deadlines land mid-phase, not
            // only after the whole phase.
            self.budget.probe(probe::SAT_VACUITY)?;
            let can_fire = match lit.as_const() {
                Some(b) => b,
                None => {
                    self.refresh_conflict_budget();
                    let q = self.enc.lit(&self.g, &mut self.solver, *lit);
                    let mut solve = trace.span(probe::SAT_VACUITY, SpanKind::SatSolve);
                    let conflicts_before = self.solver.conflicts;
                    let decisions_before = self.solver.decisions;
                    let propagations_before = self.solver.propagations;
                    let res = self.solver.solve(&[q]);
                    solve.add_cost(Cost {
                        conflicts: self.solver.conflicts - conflicts_before,
                        decisions: self.solver.decisions - decisions_before,
                        propagations: self.solver.propagations - propagations_before,
                        ..Cost::default()
                    });
                    drop(solve);
                    match res {
                        SolveResult::Sat => true,
                        SolveResult::Unsat => false,
                        SolveResult::Unknown => return Err(self.conflicts_exhausted()),
                        SolveResult::TimedOut => return Err(self.timed_out()),
                        SolveResult::Cancelled => return Err(BmcError::Cancelled),
                    }
                }
            };
            if can_fire {
                fired.insert(name);
            }
        }
        let vacuous = props
            .iter()
            .map(|p| p.name.clone())
            .filter(|n| !fired.contains(n.as_str()))
            .collect();
        Ok(BmcVerdict::Holds { vacuous })
    }
}

/// Symbolically model-checks every assertion of a compiled design.
///
/// # Errors
///
/// [`BmcError::Unsupported`] when the design falls outside the encodable
/// subset (non-levelizable logic, non-constant division, unsupported
/// system calls); [`BmcError::Exhausted`] when a budget is exhausted.
/// Both are signals to fall back to the simulation oracle.
pub fn check(cd: &CompiledDesign, opts: BmcOptions) -> Result<BmcVerdict, BmcError> {
    check_budgeted(cd, opts, &Budget::unbounded())
}

/// [`check`] with a cooperative [`CancelToken`] threaded into the CDCL
/// search loop and the per-depth unrolling loop: once the token is
/// poisoned the engine returns [`BmcError::Cancelled`] within one
/// [`crate::solver::CANCEL_CHECK_INTERVAL`] of solver work. Used by the
/// portfolio racer so a losing symbolic check stops promptly.
///
/// # Errors
///
/// As [`check`], plus [`BmcError::Cancelled`].
pub fn check_cancellable(
    cd: &CompiledDesign,
    opts: BmcOptions,
    cancel: Option<&CancelToken>,
) -> Result<BmcVerdict, BmcError> {
    check_budgeted(cd, opts, &Budget::from_cancel(cancel))
}

/// [`check`] under a full resource [`Budget`]: the deadline and conflict
/// cap are threaded into the CDCL inner loop, the AIG node cap tightens
/// `BmcOptions::node_limit`, and the per-depth loop polls the budget (and
/// its fault probes) before each unrolling step.
///
/// # Errors
///
/// As [`check_cancellable`], plus a structured [`BmcError::Exhausted`]
/// whenever any budget dimension runs out.
pub fn check_budgeted(
    cd: &CompiledDesign,
    opts: BmcOptions,
    budget: &Budget,
) -> Result<BmcVerdict, BmcError> {
    let props = compile_props(cd)?;
    // Dead-logic elimination: restrict the unrolling to the assertion
    // cone. Gated on the opt level so `OptLevel::None` stays the
    // untouched reference unrolling; steps that might not bit-blast are
    // pinned live inside `sym_live`, so the accept/reject decision is
    // identical either way.
    let live =
        (cd.opt_level() == asv_sim::OptLevel::Full).then(|| cd.sym_live(&prop_roots(&props)));
    Engine::new(cd, opts, budget, live)?.run(&props)
}

/// Observability roots of the properties: every signal any compiled
/// property program (body atoms, disable guards, history sub-programs)
/// reads.
pub(crate) fn prop_roots(props: &[PropSym]) -> Vec<SigId> {
    let mut roots = Vec::new();
    let seq = |sp: &SeqProg, roots: &mut Vec<SigId>| {
        for a in &sp.atoms {
            a.prog.collect_sigs(roots);
        }
    };
    for p in props {
        if let Some(d) = &p.disable {
            d.collect_sigs(&mut roots);
        }
        match &p.body {
            PropBody::Seq(sp) => seq(sp, &mut roots),
            PropBody::Implication {
                antecedent,
                consequent,
                ..
            } => {
                seq(antecedent, &mut roots);
                seq(consequent, &mut roots);
            }
        }
    }
    roots
}

/// Size metrics of a bounded unrolling (for `table_engines` and the
/// README's before/after table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnrollStats {
    /// AIG nodes after unrolling every frame and building the combined
    /// fail cone.
    pub aig_nodes: usize,
    /// CNF variables after Tseitin-encoding the fail cone.
    pub cnf_vars: usize,
    /// CNF clauses after Tseitin-encoding the fail cone.
    pub cnf_clauses: usize,
}

/// Unrolls the full bound (same schedule, cone restriction and property
/// logic as [`check`]) and Tseitin-encodes the combined fail cone —
/// without solving. The resulting sizes quantify what the IR pipeline
/// saves the SAT engine per design.
///
/// # Errors
///
/// As [`check`], minus anything solver-related.
pub fn unroll_stats(cd: &CompiledDesign, opts: BmcOptions) -> Result<UnrollStats, BmcError> {
    let props = compile_props(cd)?;
    let live =
        (cd.opt_level() == asv_sim::OptLevel::Full).then(|| cd.sym_live(&prop_roots(&props)));
    let mut engine = Engine::new(cd, opts, &Budget::unbounded(), live)?;
    let max_len = opts.reset_cycles + opts.depth;
    for _ in 0..max_len {
        engine.push_frame()?;
    }
    let mut fail = NLit::FALSE;
    for prop in &props {
        for s in 0..max_len {
            let (f, _) = engine.attempt_lits(prop, s, max_len)?;
            fail = engine.g.or(fail, f);
        }
    }
    if fail.as_const().is_none() {
        let _ = engine.enc.lit(&engine.g, &mut engine.solver, fail);
    }
    Ok(UnrollStats {
        aig_nodes: engine.g.len(),
        cnf_vars: engine.solver.num_vars(),
        cnf_clauses: engine.solver.num_clauses(),
    })
}

/// Cheap structural probe: does `cd` fall inside the symbolic engine's
/// encodable subset?
///
/// Compiles every property and symbolically blasts **one post-reset
/// frame** (settle, sample, clock edge, settle) plus one attempt of each
/// property — the frame is driven with free symbolic inputs (no reset
/// prefix), so every operator the full unrolling would blast is
/// exercised once, without paying for SAT solving or deep unrolling. The
/// portfolio mode uses this to pick its canonical engine up front.
///
/// # Errors
///
/// [`BmcError::Unsupported`] exactly when [`check`] would reject the
/// design before its first SAT call.
pub fn supports(cd: &CompiledDesign) -> Result<(), BmcError> {
    let props = compile_props(cd)?;
    let probe = BmcOptions {
        depth: 1,
        reset_cycles: 0,
        conflict_budget: Some(0),
        ..BmcOptions::default()
    };
    // The probe blasts the FULL schedule (no cone restriction): the
    // accept/reject answer must match what `check` would decide for the
    // same design at `OptLevel::None`, where nothing is masked.
    let mut engine = Engine::new(cd, probe, &Budget::unbounded(), None)?;
    engine.push_frame()?;
    for prop in &props {
        engine.attempt_lits(prop, 0, 1)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_sim::Simulator;
    use std::sync::Arc;

    fn compiled(src: &str) -> Arc<CompiledDesign> {
        let d = asv_verilog::compile(src).expect("compile");
        Arc::new(CompiledDesign::compile(&d))
    }

    const GOOD: &str = r#"
module latch1(input clk, input rst_n, input d, output reg q);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) q <= 1'b0;
    else q <= d;
  end
  property follow;
    @(posedge clk) disable iff (!rst_n) d |-> ##1 q;
  endproperty
  chk: assert property (follow) else $error("q must follow d");
endmodule
"#;

    #[test]
    fn good_design_holds_non_vacuously() {
        let cd = compiled(GOOD);
        let verdict = check(
            &cd,
            BmcOptions {
                depth: 6,
                reset_cycles: 2,
                ..BmcOptions::default()
            },
        )
        .expect("symbolic check");
        assert_eq!(verdict, BmcVerdict::Holds { vacuous: vec![] });
    }

    #[test]
    fn buggy_design_yields_replaying_counterexample() {
        let cd = compiled(&GOOD.replace("q <= d;", "q <= !d;"));
        let verdict = check(
            &cd,
            BmcOptions {
                depth: 6,
                reset_cycles: 2,
                ..BmcOptions::default()
            },
        )
        .expect("symbolic check");
        let BmcVerdict::Fails { stimulus } = verdict else {
            panic!("bug must be refuted");
        };
        // The witness must replay to a concrete assertion failure. (The
        // sva monitor cannot be used here — it depends on this crate — so
        // re-check `d |-> ##1 q` by hand: some post-reset tick must show
        // d=1 with q=0 one tick later.)
        let mut sim = Simulator::from_compiled(Arc::clone(&cd));
        for t in 0..stimulus.len() {
            sim.step(&stimulus.cycle(t)).expect("step");
        }
        let trace = sim.into_trace();
        let bit = |t: usize, name: &str| trace.value(t, name).map(|v| v.bits()).unwrap_or(0);
        let violated = (0..trace.len().saturating_sub(1)).any(|t| {
            bit(t, "rst_n") == 1
                && bit(t + 1, "rst_n") == 1
                && bit(t, "d") == 1
                && bit(t + 1, "q") == 0
        });
        assert!(violated, "replay must fail the assertion");
    }

    #[test]
    fn rare_trigger_bug_is_found() {
        // The antecedent fires only for a == 0xA5: random sampling has a
        // 1/256-per-cycle chance; the solver finds it directly.
        let src = r#"
module rare(input clk, input rst_n, input [7:0] a, output reg bad);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) bad <= 1'b0;
    else bad <= (a == 8'hA5);
  end
  p_rare: assert property (@(posedge clk) disable iff (!rst_n)
    a == 8'hA5 |-> ##1 !bad) else $error("rare trigger");
endmodule
"#;
        let cd = compiled(src);
        let verdict = check(
            &cd,
            BmcOptions {
                depth: 8,
                reset_cycles: 2,
                ..BmcOptions::default()
            },
        )
        .expect("symbolic check");
        let BmcVerdict::Fails { stimulus } = verdict else {
            panic!("rare-trigger bug must be refuted symbolically");
        };
        // The witness must actually drive a to 0xA5 at some post-reset tick.
        let hit = (0..stimulus.len()).any(|t| {
            stimulus
                .cycle(t)
                .iter()
                .any(|(n, v)| *n == "a" && *v == 0xA5)
        });
        assert!(hit, "witness must contain the rare trigger value");
    }

    #[test]
    fn vacuous_assertion_is_reported() {
        // The antecedent can never hold (a > 15 on a 4-bit input).
        let src = r#"
module vac(input clk, input rst_n, input [3:0] a, output reg q);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) q <= 1'b0;
    else q <= 1'b1;
  end
  p_vac: assert property (@(posedge clk) disable iff (!rst_n)
    a > 4'd15 |-> ##1 q) else $error("unreachable");
endmodule
"#;
        let cd = compiled(src);
        let verdict = check(
            &cd,
            BmcOptions {
                depth: 6,
                reset_cycles: 2,
                ..BmcOptions::default()
            },
        )
        .expect("symbolic check");
        assert_eq!(
            verdict,
            BmcVerdict::Holds {
                vacuous: vec!["p_vac".to_string()]
            }
        );
    }

    #[test]
    fn non_levelizable_designs_are_unsupported() {
        let src = r#"
module lat(input clk, input en, input d, output reg q);
  always @(*) begin if (en) q = d; end
  p: assert property (@(posedge clk) 1'b1 |-> 1'b1);
endmodule
"#;
        let cd = compiled(src);
        assert!(matches!(
            check(&cd, BmcOptions::default()),
            Err(BmcError::Unsupported(_))
        ));
    }

    #[test]
    fn supports_probe_matches_full_check() {
        assert!(supports(&compiled(GOOD)).is_ok());
        let latch = r#"
module lat(input clk, input en, input d, output reg q);
  always @(*) begin if (en) q = d; end
  p: assert property (@(posedge clk) 1'b1 |-> 1'b1);
endmodule
"#;
        assert!(matches!(
            supports(&compiled(latch)),
            Err(BmcError::Unsupported(_))
        ));
        // Symbolic-input-dependent unsupported op (non-constant shift is
        // fine, non-constant division is not): the probe must catch it
        // even though a reset-frame constant fold would hide it.
        let div = r#"
module dv(input clk, input rst_n, input [3:0] a, output reg [3:0] q);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) q <= 4'd0;
    else q <= 4'd8 / a;
  end
  p: assert property (@(posedge clk) disable iff (!rst_n) 1'b1 |-> 1'b1);
endmodule
"#;
        assert_eq!(
            supports(&compiled(div)).is_ok(),
            check(&compiled(div), BmcOptions::default()).is_ok(),
            "probe and full check must agree on non-constant division"
        );
    }

    #[test]
    fn expired_manual_deadline_reports_structured_exhaustion() {
        // Injected clock ticks, no sleeps: an expired deadline surfaces
        // as Exhausted{WallClock} from the per-depth poll / CDCL loop.
        let cd = compiled(GOOD);
        let clock = asv_sim::ManualClock::new();
        let budget = Budget::unbounded().with_manual_deadline(clock.clone(), 3);
        clock.advance(4);
        match check_budgeted(&cd, BmcOptions::default(), &budget) {
            Err(BmcError::Exhausted(e)) => {
                assert_eq!(e.resource, Resource::WallClock);
                assert_eq!(e.spent, 4);
                assert_eq!(e.limit, 3);
            }
            other => panic!("expected wall-clock exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn aig_node_cap_reports_structured_exhaustion() {
        let cd = compiled(GOOD);
        let budget = Budget::unbounded().with_max_aig_nodes(4);
        match check_budgeted(&cd, BmcOptions::default(), &budget) {
            Err(BmcError::Exhausted(e)) => {
                assert_eq!(e.resource, Resource::AigNodes);
                assert_eq!(e.limit, 4);
                assert!(e.spent > 4);
            }
            other => panic!("expected AIG-node exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn budgeted_check_with_headroom_matches_unbounded() {
        let cd = compiled(GOOD);
        let opts = BmcOptions {
            depth: 6,
            reset_cycles: 2,
            ..BmcOptions::default()
        };
        let roomy = Budget::unbounded()
            .with_max_conflicts(1 << 20)
            .with_max_aig_nodes(4_000_000);
        assert_eq!(
            check_budgeted(&cd, opts, &roomy).expect("within budget"),
            check(&cd, opts).expect("unbounded"),
            "a budget with headroom must not change the verdict"
        );
    }

    #[test]
    fn poisoned_token_cancels_the_check_without_panicking() {
        let cd = compiled(GOOD);
        let token = CancelToken::new();
        token.cancel();
        let verdict = check_cancellable(
            &cd,
            BmcOptions {
                depth: 6,
                reset_cycles: 2,
                ..BmcOptions::default()
            },
            Some(&token),
        );
        assert_eq!(verdict, Err(BmcError::Cancelled));
    }
}
