//! # asv-sat
//!
//! Symbolic bounded model checking for the AssertSolver reproduction: the
//! exhaustive counterpart of the simulation oracle in `asv-sva`, standing
//! in for the SymbiYosys runs of the source paper.
//!
//! The pipeline has four stages, each its own module:
//!
//! 1. [`blast`] — **bit-blasting**: the compiled design's expression
//!    bytecode ([`asv_sim::compile`]) is executed symbolically over an
//!    and-inverter graph ([`aig`]), word-level operators expanding to
//!    ripple-carry, barrel-shift and mux networks with semantics
//!    bit-identical to the 2-state interpreter.
//! 2. [`unroll`] — **time-frame expansion**: the sequential state is
//!    unrolled frame by frame with the exact settle/sample/clock-edge
//!    discipline of the concrete simulator, reset protocol included.
//! 3. [`engine`] — **property encoding + search**: SVA directives
//!    (implication, `##n` delay, `disable iff`, `$past`-family history)
//!    compile into the frame logic; Tseitin-encoded queries are solved
//!    depth by depth.
//! 4. [`solver`] — an embedded **CDCL SAT solver** (two-watched-literal
//!    propagation, first-UIP learning, VSIDS, Luby restarts) with
//!    incremental assumption-based solving, so deeper unrollings reuse
//!    everything learned at shallower depths.
//!
//! Designs outside the encodable subset (non-levelizable combinational
//! logic, non-constant division, unsupported system calls) are reported
//! as [`engine::BmcError::Unsupported`]; the verifier in `asv-sva` then
//! falls back to its enumeration/sampling oracle.
//!
//! ## Quick start
//!
//! ```
//! use asv_sat::engine::{check, BmcOptions, BmcVerdict};
//! use asv_sim::CompiledDesign;
//!
//! let design = asv_verilog::compile(
//!     "module m(input clk, input rst_n, input [7:0] a, output reg hit);\n\
//!      always @(posedge clk or negedge rst_n) begin\n\
//!        if (!rst_n) hit <= 1'b0; else hit <= (a == 8'hA5);\n\
//!      end\n\
//!      p: assert property (@(posedge clk) disable iff (!rst_n)\n\
//!        a == 8'hA5 |-> ##1 !hit) else $error(\"boom\");\n\
//!      endmodule",
//! )?;
//! let compiled = CompiledDesign::compile(&design);
//! // Random simulation almost never drives `a` to 0xA5; the solver must.
//! let verdict = check(&compiled, BmcOptions::default()).expect("in-subset design");
//! assert!(matches!(verdict, BmcVerdict::Fails { .. }));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod aig;
pub mod blast;
pub mod cone;
pub mod engine;
pub mod solver;
pub mod unroll;

pub use aig::{Aig, NLit};
pub use blast::{BlastError, SymVec};
pub use engine::{check, check_budgeted, BmcError, BmcOptions, BmcVerdict};
pub use solver::{Lit, SolveResult, Solver, Var};
