//! And-inverter graph: the intermediate form between word-level bytecode
//! and CNF.
//!
//! Every boolean function built during bit-blasting is represented as a
//! literal over a growing node table: node 0 is the constant, every other
//! node is either a primary input (one per symbolic input bit of the
//! unrolled design) or a two-input AND gate. Inversion is encoded in the
//! literal, not the node ([`NLit`]). Construction performs constant
//! folding, unit/idempotence/complement simplification and structural
//! hashing, so the concrete reset frames of an unrolled design collapse to
//! constants before any CNF is produced.

use std::collections::HashMap;
use std::ops::Not;

/// A literal over an AIG node: node index shifted left once, with the
/// inversion flag in bit 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NLit(u32);

impl NLit {
    /// The constant-false literal (node 0, not inverted).
    pub const FALSE: NLit = NLit(0);
    /// The constant-true literal (node 0, inverted).
    pub const TRUE: NLit = NLit(1);

    /// Builds a literal from a node index and an inversion flag.
    pub fn new(node: u32, inverted: bool) -> Self {
        NLit(node << 1 | u32::from(inverted))
    }

    /// A literal from a constant boolean.
    pub fn constant(b: bool) -> Self {
        if b {
            NLit::TRUE
        } else {
            NLit::FALSE
        }
    }

    /// The node this literal refers to.
    pub fn node(self) -> u32 {
        self.0 >> 1
    }

    /// True when the literal inverts its node.
    pub fn is_inverted(self) -> bool {
        self.0 & 1 == 1
    }

    /// The constant value, if this literal is the constant node.
    pub fn as_const(self) -> Option<bool> {
        match self.0 {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    /// The raw encoded form (used as a hash key).
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl Not for NLit {
    type Output = NLit;

    fn not(self) -> NLit {
        NLit(self.0 ^ 1)
    }
}

/// One AIG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Node {
    /// The constant node (index 0), representing *false* uninverted.
    Const,
    /// A primary input: one symbolic bit of the unrolled problem.
    Input,
    /// A two-input AND gate over two literals.
    And(NLit, NLit),
}

/// A growing and-inverter graph with structural hashing.
#[derive(Debug, Clone, Default)]
pub struct Aig {
    nodes: Vec<Node>,
    strash: HashMap<(u32, u32), u32>,
}

impl Aig {
    /// Creates an empty graph (just the constant node).
    pub fn new() -> Self {
        Aig {
            nodes: vec![Node::Const],
            strash: HashMap::new(),
        }
    }

    /// Number of nodes (constant and inputs included).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph holds only the constant node.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// The node behind an index (for CNF encoding walks).
    pub fn node(&self, idx: u32) -> Node {
        self.nodes[idx as usize]
    }

    /// Allocates a fresh primary input and returns its positive literal.
    pub fn input(&mut self) -> NLit {
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node::Input);
        NLit::new(idx, false)
    }

    /// Builds `a AND b` with folding and structural hashing.
    pub fn and(&mut self, a: NLit, b: NLit) -> NLit {
        if a == NLit::FALSE || b == NLit::FALSE || a == !b {
            return NLit::FALSE;
        }
        if a == NLit::TRUE || a == b {
            return b;
        }
        if b == NLit::TRUE {
            return a;
        }
        let (lo, hi) = if a.raw() <= b.raw() { (a, b) } else { (b, a) };
        let key = (lo.raw(), hi.raw());
        if let Some(&idx) = self.strash.get(&key) {
            return NLit::new(idx, false);
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node::And(lo, hi));
        self.strash.insert(key, idx);
        NLit::new(idx, false)
    }

    /// `a OR b`.
    pub fn or(&mut self, a: NLit, b: NLit) -> NLit {
        !self.and(!a, !b)
    }

    /// `a XOR b`.
    pub fn xor(&mut self, a: NLit, b: NLit) -> NLit {
        let t = self.and(a, !b);
        let e = self.and(!a, b);
        self.or(t, e)
    }

    /// `a XNOR b` (equivalence).
    pub fn eq(&mut self, a: NLit, b: NLit) -> NLit {
        !self.xor(a, b)
    }

    /// `if s then t else e`.
    pub fn mux(&mut self, s: NLit, t: NLit, e: NLit) -> NLit {
        if t == e {
            return t;
        }
        let a = self.and(s, t);
        let b = self.and(!s, e);
        self.or(a, b)
    }

    /// Conjunction over a slice.
    pub fn and_many(&mut self, lits: &[NLit]) -> NLit {
        let mut acc = NLit::TRUE;
        for &l in lits {
            acc = self.and(acc, l);
        }
        acc
    }

    /// Disjunction over a slice.
    pub fn or_many(&mut self, lits: &[NLit]) -> NLit {
        let mut acc = NLit::FALSE;
        for &l in lits {
            acc = self.or(acc, l);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding() {
        let mut g = Aig::new();
        let x = g.input();
        assert_eq!(g.and(NLit::FALSE, x), NLit::FALSE);
        assert_eq!(g.and(NLit::TRUE, x), x);
        assert_eq!(g.and(x, x), x);
        assert_eq!(g.and(x, !x), NLit::FALSE);
        assert_eq!(g.or(x, !x), NLit::TRUE);
        assert_eq!(g.xor(x, NLit::FALSE), x);
        assert_eq!(g.xor(x, NLit::TRUE), !x);
    }

    #[test]
    fn structural_hashing_dedups() {
        let mut g = Aig::new();
        let x = g.input();
        let y = g.input();
        let a = g.and(x, y);
        let b = g.and(y, x);
        assert_eq!(a, b);
        let before = g.len();
        let _ = g.and(x, y);
        assert_eq!(g.len(), before, "no new node for a hashed AND");
    }

    #[test]
    fn mux_selects() {
        let mut g = Aig::new();
        let t = g.input();
        let e = g.input();
        assert_eq!(g.mux(NLit::TRUE, t, e), t);
        assert_eq!(g.mux(NLit::FALSE, t, e), e);
        let s = g.input();
        assert_eq!(g.mux(s, t, t), t, "same branches fold away the select");
    }
}
