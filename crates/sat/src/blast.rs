//! Bit-blasting: symbolic execution of `asv_sim` expression bytecode over
//! AIG literals.
//!
//! [`SymVec`] is the symbolic twin of [`asv_sim::value::Value`]: a vector
//! of 1..=64 AIG literals, least-significant bit first, with identical
//! width rules (results masked to `max(lhs, rhs)` width, arithmetic
//! wrapping, unsigned comparisons, the arithmetic-shift sign fill of the
//! interpreter). Word-level operators expand to ripple-carry adders,
//! shift-and-add multipliers, barrel shifters and mux networks.
//!
//! [`run_sym`] executes a compiled [`ExprProg`] symbolically. Control flow
//! with *constant* conditions follows the concrete jump (preserving the
//! interpreter's lazy-error semantics); a *symbolic* ternary condition
//! evaluates both branches and muxes them. Constructs whose concrete
//! evaluation could raise a runtime error that cannot be ruled out at
//! lowering time (division by a non-constant, unsupported system calls,
//! unresolved names) return a [`BlastError`], which the engine
//! turns into a fallback to the simulation oracle.

use crate::aig::{Aig, NLit};
use asv_sim::compile::{ExprProg, HistoryKind, Op, SigId};
use asv_sim::eval as sim_eval;
use asv_sim::value::Value;
use asv_verilog::ast::{BinaryOp, UnaryOp};
use std::fmt;

/// Raised when a construct cannot be lowered to 2-state AIG logic with
/// semantics provably identical to the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlastError(pub String);

impl fmt::Display for BlastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "not bit-blastable: {}", self.0)
    }
}

impl std::error::Error for BlastError {}

fn unsupported<T>(msg: impl Into<String>) -> Result<T, BlastError> {
    Err(BlastError(msg.into()))
}

/// A symbolic bit vector: the AIG counterpart of [`Value`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymVec {
    bits: Vec<NLit>,
}

impl SymVec {
    /// Builds a vector from literals (LSB first).
    ///
    /// # Panics
    ///
    /// Panics when the width is outside 1..=64, mirroring [`Value::new`].
    pub fn new(bits: Vec<NLit>) -> Self {
        assert!((1..=64).contains(&bits.len()), "width must be in 1..=64");
        SymVec { bits }
    }

    /// A constant vector from a concrete [`Value`].
    pub fn from_value(v: Value) -> Self {
        SymVec {
            bits: (0..v.width())
                .map(|i| NLit::constant(v.get_bit(i)))
                .collect(),
        }
    }

    /// An all-zero vector of `width` bits.
    pub fn zeros(width: u32) -> Self {
        SymVec::from_value(Value::zero(width))
    }

    /// The declared width.
    pub fn width(&self) -> u32 {
        self.bits.len() as u32
    }

    /// The literals, LSB first.
    pub fn lits(&self) -> &[NLit] {
        &self.bits
    }

    /// The concrete value, when every bit is constant.
    pub fn as_const(&self) -> Option<Value> {
        let mut bits = 0u64;
        for (i, l) in self.bits.iter().enumerate() {
            if l.as_const()? {
                bits |= 1 << i;
            }
        }
        Some(Value::new(bits, self.width()))
    }

    /// Bit `i`, or constant false out of range (mirrors [`Value::get_bit`]).
    pub fn get(&self, i: u32) -> NLit {
        self.bits.get(i as usize).copied().unwrap_or(NLit::FALSE)
    }

    /// Reinterprets at a new width, truncating or zero-extending
    /// (mirrors [`Value::resize`]).
    pub fn resize(&self, width: u32) -> Self {
        SymVec {
            bits: (0..width).map(|i| self.get(i)).collect(),
        }
    }

    /// `self != 0`.
    pub fn is_truthy(&self, g: &mut Aig) -> NLit {
        g.or_many(&self.bits)
    }

    /// Extracts `[msb:lsb]` (mirrors [`Value::slice`]).
    pub fn slice(&self, msb: u32, lsb: u32) -> Self {
        debug_assert!(msb >= lsb);
        let w = (msb - lsb + 1).min(64);
        SymVec {
            bits: (0..w).map(|j| self.get(lsb.saturating_add(j))).collect(),
        }
    }

    /// Writes `[msb:lsb]` from the low bits of `v`
    /// (mirrors [`Value::set_slice`]).
    pub fn set_slice(&self, msb: u32, lsb: u32, v: &SymVec) -> Self {
        debug_assert!(msb >= lsb);
        let w = msb - lsb + 1;
        SymVec {
            bits: (0..self.width())
                .map(|j| {
                    if j >= lsb && j < lsb.saturating_add(w.min(64)) {
                        v.get(j - lsb)
                    } else {
                        self.get(j)
                    }
                })
                .collect(),
        }
    }

    /// Concatenates `self` (high) with `low`, clamping to 64 bits
    /// (mirrors [`Value::concat`]).
    pub fn concat(&self, low: &SymVec) -> Self {
        let w = (self.width() + low.width()).min(64);
        SymVec {
            bits: (0..w)
                .map(|j| {
                    if j < low.width() {
                        low.get(j)
                    } else {
                        self.get(j - low.width())
                    }
                })
                .collect(),
        }
    }

    /// Per-bit mux: `cond ? then_v : else_v`. Both sides must share a width.
    pub fn mux(g: &mut Aig, cond: NLit, then_v: &SymVec, else_v: &SymVec) -> Self {
        debug_assert_eq!(then_v.width(), else_v.width());
        SymVec {
            bits: (0..then_v.width() as usize)
                .map(|j| g.mux(cond, then_v.bits[j], else_v.bits[j]))
                .collect(),
        }
    }

    /// `self == j` for a constant `j` (false when `j` needs more bits).
    pub fn eq_const(&self, g: &mut Aig, j: u64) -> NLit {
        if self.width() < 64 && j >> self.width() != 0 {
            return NLit::FALSE;
        }
        let lits: Vec<NLit> = (0..self.width())
            .map(|i| {
                if j >> i & 1 == 1 {
                    self.get(i)
                } else {
                    !self.get(i)
                }
            })
            .collect();
        g.and_many(&lits)
    }

    /// Raw-bits equality with another vector (operands zero-extended to a
    /// common width; this is the comparison `case` labels use).
    pub fn eq_bits(&self, g: &mut Aig, other: &SymVec) -> NLit {
        let w = self.width().max(other.width());
        let lits: Vec<NLit> = (0..w).map(|i| g.eq(self.get(i), other.get(i))).collect();
        g.and_many(&lits)
    }

    /// Selects bit `index` where the index is itself symbolic: a one-hot
    /// mux network, with out-of-range indices reading 0.
    pub fn bit_index(&self, g: &mut Aig, index: &SymVec) -> NLit {
        if let Some(iv) = index.as_const() {
            return self.get(u32::try_from(iv.bits()).unwrap_or(u32::MAX));
        }
        let mut acc = NLit::FALSE;
        for j in 0..self.width() {
            let hit = index.eq_const(g, u64::from(j));
            let sel = g.and(hit, self.get(j));
            acc = g.or(acc, sel);
        }
        acc
    }

    /// Writes bit `index` (symbolic) to `b`, a no-op out of range
    /// (mirrors [`Value::set_bit`]).
    pub fn set_bit(&self, g: &mut Aig, index: &SymVec, b: NLit) -> Self {
        SymVec {
            bits: (0..self.width())
                .map(|j| {
                    let hit = index.eq_const(g, u64::from(j));
                    g.mux(hit, b, self.get(j))
                })
                .collect(),
        }
    }
}

/// Ripple-carry addition of equal-width vectors (result that width).
fn ripple_add(g: &mut Aig, a: &SymVec, b: &SymVec, mut carry: NLit) -> SymVec {
    debug_assert_eq!(a.width(), b.width());
    let mut bits = Vec::with_capacity(a.width() as usize);
    for i in 0..a.width() {
        let (x, y) = (a.get(i), b.get(i));
        let xy = g.xor(x, y);
        bits.push(g.xor(xy, carry));
        let c1 = g.and(x, y);
        let c2 = g.and(xy, carry);
        carry = g.or(c1, c2);
    }
    SymVec { bits }
}

/// Unsigned `a < b` over equal-width vectors.
fn ult(g: &mut Aig, a: &SymVec, b: &SymVec) -> NLit {
    debug_assert_eq!(a.width(), b.width());
    let mut lt = NLit::FALSE;
    for i in 0..a.width() {
        let (x, y) = (a.get(i), b.get(i));
        let diff = g.xor(x, y);
        let y_wins = g.and(!x, y);
        lt = g.mux(diff, y_wins, lt);
    }
    lt
}

/// `shift >= bound` for a constant bound (used to saturate shifters).
fn shift_ge(g: &mut Aig, shift: &SymVec, bound: u32) -> NLit {
    let bv = SymVec::from_value(Value::new(u64::from(bound), 64));
    let s64 = shift.resize(64);
    let lt = ult(g, &s64, &bv);
    !lt
}

/// Logical left shift of `v` by symbolic amount, zero when the amount
/// reaches the vector width.
fn barrel_shl(g: &mut Aig, v: &SymVec, shift: &SymVec) -> SymVec {
    let w = v.width();
    let mut cur = v.clone();
    for i in 0..shift.width().min(7) {
        let k = 1u64 << i;
        if k >= u64::from(w) {
            break;
        }
        let shifted = SymVec {
            bits: (0..w)
                .map(|j| {
                    if u64::from(j) >= k {
                        cur.get(j - k as u32)
                    } else {
                        NLit::FALSE
                    }
                })
                .collect(),
        };
        cur = SymVec::mux(g, shift.get(i), &shifted, &cur);
    }
    let sat = shift_ge(g, shift, w);
    let zero = SymVec::zeros(w);
    SymVec::mux(g, sat, &zero, &cur)
}

/// Logical right shift by a symbolic amount.
fn barrel_shr(g: &mut Aig, v: &SymVec, shift: &SymVec) -> SymVec {
    let w = v.width();
    let mut cur = v.clone();
    for i in 0..shift.width().min(7) {
        let k = 1u64 << i;
        if k >= u64::from(w) {
            break;
        }
        let shifted = SymVec {
            bits: (0..w).map(|j| cur.get(j + k as u32)).collect(),
        };
        cur = SymVec::mux(g, shift.get(i), &shifted, &cur);
    }
    let sat = shift_ge(g, shift, w);
    let zero = SymVec::zeros(w);
    SymVec::mux(g, sat, &zero, &cur)
}

/// Arithmetic right shift over the operand's *declared* width, filling
/// with its msb — the interpreter's `>>>` on the unsigned domain.
fn barrel_ashr(g: &mut Aig, v: &SymVec, shift: &SymVec) -> SymVec {
    let w = v.width();
    let sign = v.get(w - 1);
    let mut cur = v.clone();
    for i in 0..shift.width().min(7) {
        let k = 1u64 << i;
        if k >= u64::from(w) {
            break;
        }
        let shifted = SymVec {
            bits: (0..w)
                .map(|j| {
                    if j + (k as u32) < w {
                        cur.get(j + k as u32)
                    } else {
                        sign
                    }
                })
                .collect(),
        };
        cur = SymVec::mux(g, shift.get(i), &shifted, &cur);
    }
    let sat = shift_ge(g, shift, w);
    let all_sign = SymVec {
        bits: vec![sign; w as usize],
    };
    SymVec::mux(g, sat, &all_sign, &cur)
}

/// Applies a unary operator with [`sim_eval::unary`] semantics.
pub fn unary_sym(g: &mut Aig, op: UnaryOp, v: &SymVec) -> SymVec {
    if let Some(cv) = v.as_const() {
        return SymVec::from_value(sim_eval::unary(op, cv));
    }
    match op {
        UnaryOp::Neg => {
            let zero = SymVec::zeros(v.width());
            let inv = SymVec {
                bits: v.bits.iter().map(|&b| !b).collect(),
            };
            ripple_add(g, &zero, &inv, NLit::TRUE)
        }
        UnaryOp::LogicNot => {
            let t = v.is_truthy(g);
            SymVec { bits: vec![!t] }
        }
        UnaryOp::BitNot => SymVec {
            bits: v.bits.iter().map(|&b| !b).collect(),
        },
        UnaryOp::RedAnd => SymVec {
            bits: vec![g.and_many(&v.bits)],
        },
        UnaryOp::RedOr => SymVec {
            bits: vec![v.is_truthy(g)],
        },
        UnaryOp::RedXor => {
            let mut acc = NLit::FALSE;
            for &b in &v.bits {
                acc = g.xor(acc, b);
            }
            SymVec { bits: vec![acc] }
        }
        UnaryOp::RedNand => {
            let a = g.and_many(&v.bits);
            SymVec { bits: vec![!a] }
        }
        UnaryOp::RedNor => {
            let t = v.is_truthy(g);
            SymVec { bits: vec![!t] }
        }
        UnaryOp::RedXnor => {
            let mut acc = NLit::FALSE;
            for &b in &v.bits {
                acc = g.xor(acc, b);
            }
            SymVec { bits: vec![!acc] }
        }
        UnaryOp::Plus => v.clone(),
    }
}

/// `$countones` as a 32-bit popcount network.
fn popcount32(g: &mut Aig, v: &SymVec) -> SymVec {
    let mut acc = SymVec::zeros(32);
    for i in 0..v.width() {
        let mut addend = SymVec::zeros(32);
        addend.bits[0] = v.get(i);
        acc = ripple_add(g, &acc, &addend, NLit::FALSE);
    }
    acc
}

/// Applies a binary operator with [`sim_eval::binary`] semantics.
///
/// # Errors
///
/// [`BlastError`] for operators whose concrete evaluation can raise a
/// runtime error that constant analysis cannot rule out (`/`, `%`, `**`
/// with non-constant operands).
pub fn binary_sym(g: &mut Aig, op: BinaryOp, a: &SymVec, b: &SymVec) -> Result<SymVec, BlastError> {
    use BinaryOp as B;
    if let (Some(av), Some(bv)) = (a.as_const(), b.as_const()) {
        return match sim_eval::binary(op, av, bv) {
            Ok(v) => Ok(SymVec::from_value(v)),
            Err(e) => unsupported(format!("constant evaluation raises `{e}`")),
        };
    }
    let w = a.width().max(b.width());
    let (x, y) = (a.resize(w), b.resize(w));
    Ok(match op {
        B::Add => ripple_add(g, &x, &y, NLit::FALSE),
        B::Sub => {
            let inv = SymVec {
                bits: y.bits.iter().map(|&l| !l).collect(),
            };
            ripple_add(g, &x, &inv, NLit::TRUE)
        }
        B::Mul => {
            let mut acc = SymVec::zeros(w);
            for i in 0..w.min(b.width()) {
                let shifted = SymVec {
                    bits: (0..w)
                        .map(|j| if j >= i { x.get(j - i) } else { NLit::FALSE })
                        .collect(),
                };
                let zero = SymVec::zeros(w);
                let addend = SymVec::mux(g, y.get(i), &shifted, &zero);
                acc = ripple_add(g, &acc, &addend, NLit::FALSE);
            }
            acc
        }
        B::Div | B::Mod => {
            // A constant power-of-two divisor is a pure rewire: `x / 2^k`
            // is a logical right shift, `x % 2^k` keeps the low k bits —
            // exactly the strength reduction the IR pipeline performs,
            // supported here too so the symbolic subset is identical at
            // every opt level. Any other divisor can raise DivideByZero
            // (or needs a divider network) and stays unsupported.
            let Some(bv) = b.as_const() else {
                return unsupported(format!("`{}` with non-constant operands", op.as_str()));
            };
            if !bv.bits().is_power_of_two() {
                return unsupported(format!("`{}` by a non-power-of-two constant", op.as_str()));
            }
            let k = bv.bits().trailing_zeros();
            match op {
                B::Div => SymVec {
                    bits: (0..w).map(|j| x.get(j + k)).collect(),
                },
                _ => SymVec {
                    bits: (0..w)
                        .map(|j| if j < k { x.get(j) } else { NLit::FALSE })
                        .collect(),
                },
            }
        }
        B::Pow => {
            return unsupported(format!("`{}` with non-constant operands", op.as_str()));
        }
        B::BitAnd => SymVec {
            bits: (0..w as usize)
                .map(|j| g.and(x.bits[j], y.bits[j]))
                .collect(),
        },
        B::BitOr => SymVec {
            bits: (0..w as usize)
                .map(|j| g.or(x.bits[j], y.bits[j]))
                .collect(),
        },
        B::BitXor => SymVec {
            bits: (0..w as usize)
                .map(|j| g.xor(x.bits[j], y.bits[j]))
                .collect(),
        },
        B::BitXnor => SymVec {
            bits: (0..w as usize)
                .map(|j| g.eq(x.bits[j], y.bits[j]))
                .collect(),
        },
        B::LogicAnd => {
            let ta = a.is_truthy(g);
            let tb = b.is_truthy(g);
            SymVec {
                bits: vec![g.and(ta, tb)],
            }
        }
        B::LogicOr => {
            let ta = a.is_truthy(g);
            let tb = b.is_truthy(g);
            SymVec {
                bits: vec![g.or(ta, tb)],
            }
        }
        B::Eq | B::CaseEq => SymVec {
            bits: vec![x.eq_bits(g, &y)],
        },
        B::Ne | B::CaseNe => {
            let e = x.eq_bits(g, &y);
            SymVec { bits: vec![!e] }
        }
        B::Lt => SymVec {
            bits: vec![ult(g, &x, &y)],
        },
        B::Le => {
            let gt = ult(g, &y, &x);
            SymVec { bits: vec![!gt] }
        }
        B::Gt => SymVec {
            bits: vec![ult(g, &y, &x)],
        },
        B::Ge => {
            let lt = ult(g, &x, &y);
            SymVec { bits: vec![!lt] }
        }
        B::Shl | B::AShl => barrel_shl(g, &x, b),
        B::Shr => barrel_shr(g, &x, b),
        B::AShr => {
            let shifted = barrel_ashr(g, a, b);
            shifted.resize(w)
        }
    })
}

/// Resolves system calls the simulator supports combinationally.
fn sys_call_sym(g: &mut Aig, name: &str, args: &[SymVec]) -> Result<SymVec, BlastError> {
    match (name, args) {
        ("countones", [v]) => Ok(popcount32(g, v)),
        ("onehot", [v]) => {
            let c = popcount32(g, v);
            Ok(SymVec {
                bits: vec![c.eq_const(g, 1)],
            })
        }
        ("onehot0", [v]) => {
            let c = popcount32(g, v);
            let one = c.eq_const(g, 1);
            let zero = c.eq_const(g, 0);
            Ok(SymVec {
                bits: vec![g.or(one, zero)],
            })
        }
        _ => unsupported(format!("system call `${name}`")),
    }
}

/// Value environment of symbolic bytecode execution.
pub trait SymEnv {
    /// Symbolic value of an interned signal.
    fn load(&self, sig: SigId) -> SymVec;

    /// Resolves a history call (`$past`/`$rose`/`$fell`/`$stable`).
    /// Environments without sampled history cannot lower these.
    fn history(
        &self,
        _g: &mut Aig,
        kind: HistoryKind,
        _arg: &ExprProg,
        _n: usize,
    ) -> Result<SymVec, BlastError> {
        unsupported(format!("history call {kind:?} outside a trace context"))
    }
}

/// Executes a compiled expression program symbolically.
///
/// # Errors
///
/// [`BlastError`] for constructs outside the 2-state encodable subset.
pub fn run_sym<E: SymEnv + ?Sized>(
    g: &mut Aig,
    prog: &ExprProg,
    env: &E,
) -> Result<SymVec, BlastError> {
    let mut tmps: Vec<Option<SymVec>> = vec![None; prog.n_tmps as usize];
    exec_range(g, prog, 0, prog.ops.len(), env, &mut tmps)
}

/// Executes `prog.ops[start..end]`, which must form a self-contained
/// expression (pushes exactly one net value). `tmps` are the program's
/// CSE slots; the emitter guarantees tmp ops only appear at unconditional
/// positions, so sharing the slot vector across branch sub-ranges is
/// sound.
fn exec_range<E: SymEnv + ?Sized>(
    g: &mut Aig,
    prog: &ExprProg,
    start: usize,
    end: usize,
    env: &E,
    tmps: &mut Vec<Option<SymVec>>,
) -> Result<SymVec, BlastError> {
    let mut stack: Vec<SymVec> = Vec::new();
    let mut pc = start;
    while pc < end {
        match &prog.ops[pc] {
            Op::Const(v) => stack.push(SymVec::from_value(*v)),
            Op::Load(sig) => stack.push(env.load(*sig)),
            Op::Unary(op) => {
                let v = stack.pop().expect("unary operand");
                stack.push(unary_sym(g, *op, &v));
            }
            Op::Binary(op) => {
                let b = stack.pop().expect("binary rhs");
                let a = stack.pop().expect("binary lhs");
                stack.push(binary_sym(g, *op, &a, &b)?);
            }
            Op::BinConst { op, rhs } => {
                let a = stack.pop().expect("binary lhs");
                stack.push(binary_sym(g, *op, &a, &SymVec::from_value(*rhs))?);
            }
            Op::LoadBin { op, a, b } => {
                let va = env.load(*a);
                let vb = env.load(*b);
                stack.push(binary_sym(g, *op, &va, &vb)?);
            }
            Op::LoadBinConst { op, sig, rhs } => {
                let v = env.load(*sig);
                stack.push(binary_sym(g, *op, &v, &SymVec::from_value(*rhs))?);
            }
            Op::LoadUnary { op, sig } => {
                let v = env.load(*sig);
                stack.push(unary_sym(g, *op, &v));
            }
            Op::StoreTmp(i) => {
                let v = stack.last().expect("tmp source").clone();
                tmps[*i as usize] = Some(v);
            }
            Op::LoadTmp(i) => {
                stack.push(tmps[*i as usize].clone().expect("tmp stored before load"));
            }
            Op::JumpIfFalse(target) => {
                let c = stack.pop().expect("jump condition");
                let t = c.is_truthy(g);
                match t.as_const() {
                    Some(true) => {} // fall through into the then branch
                    Some(false) => {
                        pc = *target as usize;
                        continue;
                    }
                    None => {
                        // Structured ternary: `emit` always places an
                        // unconditional Jump(end) immediately before the
                        // else branch.
                        let else_start = *target as usize;
                        let Some(Op::Jump(end_t)) = prog.ops.get(else_start.wrapping_sub(1)) else {
                            return unsupported("unstructured branch in bytecode");
                        };
                        let end_t = *end_t as usize;
                        let tv = exec_range(g, prog, pc + 1, else_start - 1, env, tmps)?;
                        let ev = exec_range(g, prog, else_start, end_t, env, tmps)?;
                        if tv.width() != ev.width() {
                            return unsupported(
                                "ternary branches of different widths under a symbolic condition",
                            );
                        }
                        stack.push(SymVec::mux(g, t, &tv, &ev));
                        pc = end_t;
                        continue;
                    }
                }
            }
            Op::Jump(target) => {
                pc = *target as usize;
                continue;
            }
            Op::ConcatN(n) => {
                let n = *n as usize;
                debug_assert!(n >= 1 && stack.len() >= n);
                let first = stack.len() - n;
                let mut acc = stack[first].clone();
                for v in &stack[first + 1..] {
                    acc = acc.concat(v);
                }
                stack.truncate(first);
                stack.push(acc);
            }
            Op::RepeatGuard => {
                let Some(cv) = stack.last().expect("repeat count").as_const() else {
                    return unsupported("non-constant replication count");
                };
                let n = cv.bits();
                if n == 0 || n > 64 {
                    return unsupported(format!("replication count {n} outside 1..=64"));
                }
            }
            Op::Repeat => {
                let v = stack.pop().expect("repeat value");
                let n = stack
                    .pop()
                    .expect("repeat count")
                    .as_const()
                    .expect("guard checked constness")
                    .bits();
                let mut acc = v.clone();
                for _ in 1..n {
                    acc = acc.concat(&v);
                }
                stack.push(acc);
            }
            Op::BitIndex => {
                let i = stack.pop().expect("bit index");
                let base = stack.pop().expect("bit base");
                let bit = base.bit_index(g, &i);
                stack.push(SymVec { bits: vec![bit] });
            }
            Op::Slice(msb, lsb) => {
                let base = stack.pop().expect("slice base");
                stack.push(base.slice(*msb, *lsb));
            }
            Op::SysCall { name, argc } => {
                let argc = *argc as usize;
                debug_assert!(stack.len() >= argc);
                let first = stack.len() - argc;
                let r = sys_call_sym(g, name, &stack[first..])?;
                stack.truncate(first);
                stack.push(r);
            }
            Op::History { kind, arg, n } => {
                let n = match n {
                    Some(id) => {
                        let nv = run_sym(g, &prog.subs[*id as usize], env)?;
                        let Some(cv) = nv.as_const() else {
                            return unsupported("non-constant $past cycle count");
                        };
                        usize::try_from(cv.bits()).unwrap_or(usize::MAX)
                    }
                    None => 1,
                };
                let v = env.history(g, *kind, &prog.subs[*arg as usize], n)?;
                stack.push(v);
            }
            Op::Fail(e) => return unsupported(format!("evaluation would raise `{e}`")),
        }
        pc += 1;
    }
    let v = stack.pop().expect("program result");
    debug_assert!(stack.is_empty(), "expression must be self-contained");
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::Aig;

    /// Evaluates `op` symbolically on fully-constant inputs and checks the
    /// result against the concrete evaluator.
    fn check_binary(op: BinaryOp, a: Value, b: Value) {
        let mut g = Aig::new();
        let sa = SymVec::from_value(a);
        let sb = SymVec::from_value(b);
        let expected = sim_eval::binary(op, a, b).expect("concrete eval");
        let got = binary_sym(&mut g, op, &sa, &sb).expect("blast");
        assert_eq!(got.as_const(), Some(expected), "{op:?} {a} {b}");
    }

    /// Same check but through the symbolic network: inputs are AIG inputs
    /// constrained only by substituting the model afterwards — here we
    /// instead enumerate the full truth table of small widths.
    fn check_binary_symbolic(op: BinaryOp, aw: u32, bw: u32) {
        for xa in 0..(1u64 << aw) {
            for xb in 0..(1u64 << bw) {
                let (a, b) = (Value::new(xa, aw), Value::new(xb, bw));
                let mut g = Aig::new();
                // Route through symbolic inputs then substitute: exercises
                // the gate network rather than the constant fast path.
                let sa = SymVec::new((0..aw).map(|_| g.input()).collect());
                let sb = SymVec::new((0..bw).map(|_| g.input()).collect());
                let out = match binary_sym(&mut g, op, &sa, &sb) {
                    Ok(o) => o,
                    Err(_) => return, // unsupported symbolically: nothing to check
                };
                let expected = sim_eval::binary(op, a, b).expect("concrete eval");
                let inputs: Vec<bool> = (0..aw)
                    .map(|i| xa >> i & 1 == 1)
                    .chain((0..bw).map(|i| xb >> i & 1 == 1))
                    .collect();
                let got = eval_aig(&g, out.lits(), &inputs);
                assert_eq!(
                    got,
                    (0..expected.width())
                        .map(|i| expected.get_bit(i))
                        .collect::<Vec<_>>(),
                    "{op:?} {a} {b}"
                );
            }
        }
    }

    /// Concrete cofactoring of an AIG: inputs valued in allocation order.
    fn eval_aig(g: &Aig, outs: &[NLit], inputs: &[bool]) -> Vec<bool> {
        use crate::aig::Node;
        let mut val = vec![false; g.len()];
        let mut next_input = 0usize;
        for idx in 0..g.len() {
            val[idx] = match g.node(idx as u32) {
                Node::Const => false,
                Node::Input => {
                    let v = inputs[next_input];
                    next_input += 1;
                    v
                }
                Node::And(a, b) => {
                    let va = val[a.node() as usize] ^ a.is_inverted();
                    let vb = val[b.node() as usize] ^ b.is_inverted();
                    va && vb
                }
            };
        }
        outs.iter()
            .map(|l| val[l.node() as usize] ^ l.is_inverted())
            .collect()
    }

    #[test]
    fn constant_folding_matches_interpreter() {
        use BinaryOp as B;
        for op in [
            B::Add,
            B::Sub,
            B::Mul,
            B::Div,
            B::Mod,
            B::BitAnd,
            B::BitOr,
            B::BitXor,
            B::BitXnor,
            B::LogicAnd,
            B::LogicOr,
            B::Eq,
            B::Ne,
            B::Lt,
            B::Le,
            B::Gt,
            B::Ge,
            B::Shl,
            B::Shr,
            B::AShr,
        ] {
            check_binary(op, Value::new(13, 4), Value::new(6, 4));
            check_binary(op, Value::new(200, 8), Value::new(3, 4));
        }
    }

    #[test]
    fn symbolic_networks_match_interpreter_exhaustively() {
        use BinaryOp as B;
        for op in [
            B::Add,
            B::Sub,
            B::Mul,
            B::BitAnd,
            B::BitXor,
            B::LogicAnd,
            B::LogicOr,
            B::Eq,
            B::Ne,
            B::Lt,
            B::Le,
            B::Gt,
            B::Ge,
            B::Shl,
            B::Shr,
            B::AShr,
        ] {
            check_binary_symbolic(op, 3, 3);
            check_binary_symbolic(op, 2, 4); // mixed widths
        }
    }

    #[test]
    fn unary_networks_match_interpreter_exhaustively() {
        use UnaryOp as U;
        for op in [
            U::Neg,
            U::LogicNot,
            U::BitNot,
            U::RedAnd,
            U::RedOr,
            U::RedXor,
            U::RedNand,
            U::RedNor,
            U::RedXnor,
            U::Plus,
        ] {
            for x in 0..16u64 {
                let v = Value::new(x, 4);
                let mut g = Aig::new();
                let sv = SymVec::new((0..4).map(|_| g.input()).collect());
                let out = unary_sym(&mut g, op, &sv);
                let expected = sim_eval::unary(op, v);
                let inputs: Vec<bool> = (0..4).map(|i| x >> i & 1 == 1).collect();
                let got = eval_aig(&g, out.lits(), &inputs);
                assert_eq!(
                    got,
                    (0..expected.width())
                        .map(|i| expected.get_bit(i))
                        .collect::<Vec<_>>(),
                    "{op:?} {v}"
                );
            }
        }
    }

    #[test]
    fn division_by_symbolic_operand_is_unsupported() {
        let mut g = Aig::new();
        let a = SymVec::new(vec![g.input()]);
        let b = SymVec::new(vec![g.input()]);
        assert!(binary_sym(&mut g, BinaryOp::Div, &a, &b).is_err());
    }

    #[test]
    fn concat_and_slice_mirror_value() {
        let hi = Value::new(0xA, 4);
        let lo = Value::new(0x5, 4);
        let sh = SymVec::from_value(hi);
        let sl = SymVec::from_value(lo);
        assert_eq!(sh.concat(&sl).as_const(), Some(hi.concat(lo)));
        let v = Value::new(0b1101_0110, 8);
        let sv = SymVec::from_value(v);
        assert_eq!(sv.slice(7, 4).as_const(), Some(v.slice(7, 4)));
        assert_eq!(
            sv.set_slice(7, 4, &SymVec::from_value(Value::new(0x3, 4)))
                .as_const(),
            Some(v.set_slice(7, 4, Value::new(0x3, 4)))
        );
    }

    #[test]
    fn popcount_matches_countones() {
        for x in 0..256u64 {
            let v = Value::new(x, 8);
            let mut g = Aig::new();
            let sv = SymVec::from_value(v);
            let c = popcount32(&mut g, &sv);
            assert_eq!(
                c.as_const(),
                Some(Value::new(u64::from(v.count_ones()), 32))
            );
        }
    }
}
