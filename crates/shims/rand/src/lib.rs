//! Offline stand-in for the subset of `rand` 0.8 this workspace uses
//! (rationale in `crates/shims/README.md`).
//!
//! Everything in the reproduction is seeded, so the only contract callers
//! rely on is *determinism given a seed* — not bit-compatibility with the
//! real `StdRng`. [`rngs::StdRng`] is xoshiro256++ seeded via SplitMix64,
//! which passes the statistical bar for stimulus generation and sampling.

use std::ops::{Range, RangeInclusive};

/// Seedable RNG constructor, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core entropy source, mirroring `rand::RngCore`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Sampling helpers, mirroring the used subset of `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample of the full domain of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable from raw bits (the used subset of the `Standard`
/// distribution).
pub trait Standard {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`], generic over the output type so
/// integer literals infer from the call site (as in real `rand` 0.8).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers, mirroring the used subset of `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling support for slices (stand-in for `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9u64);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(1..=2u64);
            assert!((1..=2).contains(&w));
            let x = rng.gen_range(0..5usize);
            assert!(x < 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "32 elements virtually never shuffle to identity");
    }

    #[test]
    fn f64_samples_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
