//! Offline stand-in for the subset of `criterion` this workspace uses
//! (rationale in `crates/shims/README.md`).
//!
//! `bench_function` auto-calibrates the iteration count to roughly
//! [`TARGET_MEASURE_NANOS`] of wall time and reports mean ns/iteration on
//! stdout in a `name ... time: X ns/iter` format, so relative speedups
//! (e.g. interpreted vs compiled simulation) remain directly readable even
//! without the real statistical machinery.

use std::time::Instant;

pub use std::hint::black_box;

/// Rough wall-clock budget per benchmark, nanoseconds.
pub const TARGET_MEASURE_NANOS: u128 = 400_000_000;

/// Budget under `ASV_SCALE=quick` (CI smoke runs).
pub const QUICK_MEASURE_NANOS: u128 = 40_000_000;

/// The active per-benchmark budget: `ASV_SCALE=quick` selects the smoke
/// budget, anything else the full one.
fn target_nanos() -> u128 {
    match std::env::var("ASV_SCALE").as_deref() {
        Ok("quick") => QUICK_MEASURE_NANOS,
        _ => TARGET_MEASURE_NANOS,
    }
}

/// Measurement driver handed to the closure of
/// [`Criterion::bench_function`].
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    nanos: u128,
}

impl Bencher {
    /// Times `routine`, auto-scaling the iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: double the batch until it takes long enough to time.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos().max(1);
            if elapsed >= 10_000_000 || batch >= 1 << 20 {
                let per_iter = elapsed / u128::from(batch);
                let iters = (target_nanos() / per_iter.max(1)).clamp(1, 1 << 24) as u64;
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                self.nanos = start.elapsed().as_nanos();
                self.iters = iters;
                return;
            }
            batch *= 2;
        }
    }
}

/// Benchmark registry/driver (stand-in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Runs one named benchmark and prints its mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        let per_iter = b.nanos / u128::from(b.iters.max(1));
        println!(
            "{name:<32} time: {per_iter:>12} ns/iter  ({} iters)",
            b.iters
        );
        self
    }
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
