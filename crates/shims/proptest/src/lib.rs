//! Offline stand-in for the subset of `proptest` this workspace uses
//! (rationale in `crates/shims/README.md`).
//!
//! The [`proptest!`] macro runs each property over `cases` deterministic
//! samples drawn from the argument ranges with a per-case seeded RNG — no
//! shrinking, no persistence. Failures report the sampled arguments so a
//! reproduction is one `cargo test` away (sampling is fully deterministic).

use std::fmt;
use std::ops::Range;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` samples per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (carried by `prop_assert!`-style macros).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic per-case RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// RNG for the `case`-th sample of a property.
    pub fn for_case(case: u64) -> Self {
        TestRng(case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED_5EED_5EED_5EED)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Value sources usable on the left of `in` inside [`proptest!`] and the
/// combinator surface the workspace uses (`prop_map`, `prop_recursive`,
/// [`prop_oneof!`], [`sample::select`]).
pub trait Strategy: Clone {
    /// Sampled value type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.sample(rng)))
    }

    /// Maps sampled values through `f`.
    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized + 'static,
        U: fmt::Debug + 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| f(self.sample(rng))))
    }

    /// Builds recursive values: `recurse` wraps an inner strategy into one
    /// more level, applied up to `depth` times with leaves mixed in at
    /// every level (`_desired_size`/`_expected_branch` are accepted for
    /// API compatibility and ignored).
    fn prop_recursive<F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> BoxedStrategy<Self::Value>,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let inner = one_of(vec![leaf.clone(), cur]);
            cur = recurse(inner);
        }
        one_of(vec![leaf, cur])
    }
}

use std::rc::Rc;

/// A type-erased strategy (cheap to clone).
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }

    fn boxed(self) -> BoxedStrategy<T>
    where
        Self: Sized + 'static,
    {
        self
    }
}

/// Uniform choice among strategies (the engine behind [`prop_oneof!`]).
pub fn one_of<T: fmt::Debug + 'static>(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one option");
    BoxedStrategy(Rc::new(move |rng| {
        let i = (rng.next_u64() % options.len() as u64) as usize;
        options[i].sample(rng)
    }))
}

/// Uniform choice among strategies, mirroring `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::one_of(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// The used subset of `proptest::sample`.
pub mod sample {
    use super::{BoxedStrategy, Strategy};
    use std::fmt;

    /// Uniformly selects one of the given values.
    pub fn select<T: Clone + fmt::Debug + 'static>(options: Vec<T>) -> BoxedStrategy<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        super::BoxedStrategy(super::Rc::new(move |rng| {
            let i = (rng.next_u64() % options.len() as u64) as usize;
            options[i].clone()
        }))
        .boxed()
    }
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_strategy_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_tuple {
    ($(($($n:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_strategy_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

/// Property-test entry point, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $range:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..u64::from(cfg.cases) {
                    let mut rng = $crate::TestRng::for_case(case);
                    $( let $arg = $crate::Strategy::sample(&($range), &mut rng); )*
                    let run = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    };
                    if let Err(e) = run() {
                        panic!(
                            "property failed at case {case}: {e}\n  args: {}",
                            [$( format!(concat!(stringify!($arg), " = {:?}"), $arg) ),*]
                                .join(", "),
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}
