//! Offline stand-in for `serde` (rationale in `crates/shims/README.md`).
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never serialises at runtime (no `serde_json` or similar consumer), so
//! the traits here are empty markers with blanket impls and the derives
//! (re-exported from the sibling `serde_derive` shim) expand to nothing.
//! Swapping the real crates.io `serde` back in is a Cargo.toml-only change.

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
