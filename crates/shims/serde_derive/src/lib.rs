//! No-op derive macros standing in for `serde_derive` in this offline
//! build (rationale in `crates/shims/README.md`). The repository never
//! serialises at runtime — `#[derive(Serialize, Deserialize)]` markers on
//! data types only need to compile, so both derives expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` has a blanket impl instead.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` has a blanket impl instead.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
