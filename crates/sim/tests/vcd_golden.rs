//! Golden-file test for [`asv_sim::Trace::to_vcd`]: the exported waveform
//! of a fixed counter run must match `tests/golden/counter.vcd` byte for
//! byte. The export carries no timestamps or tool versions, so the file
//! is stable across machines; regenerate it (and review the diff) only
//! when the VCD format intentionally changes.

use asv_sim::Simulator;

const COUNTER: &str = "module c(input clk, input rst_n, input en, output reg [3:0] q);\n\
     always @(posedge clk or negedge rst_n) begin\n\
       if (!rst_n) q <= 4'd0; else if (en) q <= q + 4'd1;\n\
     end\nendmodule";

fn counter_vcd() -> String {
    let design = asv_verilog::compile(COUNTER).expect("compile");
    let mut sim = Simulator::new(&design);
    sim.step(&[("rst_n", 0), ("en", 0)]).expect("reset");
    for en in [1, 1, 0, 1, 1, 1] {
        sim.step(&[("rst_n", 1), ("en", en)]).expect("step");
    }
    sim.into_trace().to_vcd("c")
}

#[test]
fn counter_vcd_matches_golden() {
    let golden = include_str!("golden/counter.vcd");
    assert_eq!(
        counter_vcd(),
        golden,
        "VCD export drifted from the golden file"
    );
}

#[test]
fn vcd_is_deterministic() {
    assert_eq!(counter_vcd(), counter_vcd());
}
