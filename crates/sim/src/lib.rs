//! # asv-sim
//!
//! Cycle-accurate, 2-state RTL simulator for elaborated
//! [`asv_verilog::Design`]s — the reproduction's substitute for the
//! event-driven simulation step the AssertSolver paper performs with
//! Icarus Verilog (substitution rationale in DESIGN.md).
//!
//! Two backends share identical semantics (see README "Simulation
//! backends"): the default [`Simulator`] runs on the compiled core in
//! [`compile`] (interned signals, bytecode expressions, levelized
//! combinational scheduling), while [`interp::AstSimulator`] keeps the
//! original tree-walking executor as the reference oracle for
//! differential testing.
//!
//! ## Quick start
//!
//! ```
//! use asv_sim::{Simulator, Value};
//!
//! let design = asv_verilog::compile(
//!     "module c(input clk, input rst_n, output reg [3:0] q);\n\
//!      always @(posedge clk or negedge rst_n) begin\n\
//!        if (!rst_n) q <= 4'd0; else q <= q + 4'd1;\n\
//!      end\nendmodule",
//! )?;
//! let mut sim = Simulator::new(&design);
//! sim.step(&[("rst_n", 0)])?;
//! sim.step(&[("rst_n", 1)])?;
//! sim.step(&[("rst_n", 1)])?;
//! assert_eq!(sim.value("q"), Some(Value::new(2, 4)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cache;
pub mod cancel;
pub mod compile;
pub mod cover;
pub mod eval;
pub mod exec;
pub mod fault;
pub mod interp;
pub mod stimulus;
pub mod trace;
pub use asv_ir::value;

pub use asv_ir::OptLevel;
pub use cache::CompileCache;
pub use cancel::{Budget, CancelToken, Deadline, Exhausted, ManualClock, Resource, Stop};
pub use compile::batch::{
    run_stimulus_group, run_stimulus_scalar, LaneBatch, LaneOutcome, LaneRun, LANE_WIDTHS,
};
pub use compile::{CompiledDesign, SigId};
pub use cover::{CovMap, CoverageReport};
pub use eval::{Env, EvalError};
pub use exec::{SimError, Simulator};
pub use fault::{FaultKind, FaultKinds, FaultPlan, FaultSession};
pub use interp::AstSimulator;
pub use stimulus::{Stimulus, StimulusGen};
pub use trace::{Trace, TraceHeader};
pub use value::Value;
