//! Stimulus generation: reset protocols and input sequences.
//!
//! The bounded model checker and the datagen validation loops drive designs
//! with sequences produced here. Generation is fully deterministic given a
//! seed, so every experiment in the paper reproduction is replayable.

use asv_verilog::sema::Design;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One cycle of input assignments: `(signal, value)` pairs.
pub type InputVector = Vec<(String, u64)>;

/// A full stimulus: a reset prologue followed by per-cycle input vectors.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Stimulus {
    /// Input vectors applied cycle by cycle (reset cycles included).
    pub vectors: Vec<InputVector>,
    /// Number of leading reset cycles.
    pub reset_cycles: usize,
}

impl Stimulus {
    /// Number of cycles.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True if there are no cycles.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Borrow the vector for cycle `t` as `(&str, u64)` pairs.
    pub fn cycle(&self, t: usize) -> Vec<(&str, u64)> {
        self.vectors[t]
            .iter()
            .map(|(n, v)| (n.as_str(), *v))
            .collect()
    }

    /// Borrow the raw vector for cycle `t` (the allocation-free accessor
    /// the lane-batched executor drives inputs through).
    pub fn vector(&self, t: usize) -> &[(String, u64)] {
        &self.vectors[t]
    }

    /// True when every cycle names the same inputs in the same order as
    /// cycle 0 — the generated-stimulus common case that lets executors
    /// resolve input names to signal ids once per run instead of per
    /// tick.
    pub fn uniform_names(&self) -> bool {
        let Some(first) = self.vectors.first() else {
            return true;
        };
        self.vectors[1..].iter().all(|v| {
            v.len() == first.len() && v.iter().zip(first.iter()).all(|((n, _), (f, _))| n == f)
        })
    }
}

/// Deterministic stimulus generator for a design.
///
/// Non-clock, non-reset inputs receive uniformly random values each cycle;
/// the reset (if present) is asserted for `reset_cycles` then deasserted.
#[derive(Debug, Clone)]
pub struct StimulusGen {
    inputs: Vec<(String, u32)>,
    reset: Option<(String, bool)>,
    clock: Option<String>,
}

impl StimulusGen {
    /// Builds a generator by inspecting a design's ports.
    pub fn new(design: &Design) -> Self {
        let clock = design.clock().map(str::to_string);
        let reset = design.reset().map(|(n, al)| (n.to_string(), al));
        let inputs = design
            .inputs()
            .iter()
            .filter(|s| Some(s.name.as_str()) != clock.as_deref())
            .filter(|s| reset.as_ref().map(|(r, _)| r.as_str()) != Some(s.name.as_str()))
            .map(|s| (s.name.clone(), s.width))
            .collect();
        StimulusGen {
            inputs,
            reset,
            clock,
        }
    }

    /// Names and widths of the free (randomisable) inputs.
    pub fn free_inputs(&self) -> &[(String, u32)] {
        &self.inputs
    }

    /// Name of the recognised reset signal, if any.
    pub fn reset_signal(&self) -> Option<&str> {
        self.reset.as_ref().map(|(n, _)| n.as_str())
    }

    /// Name of the recognised clock signal, if any (not driven: the
    /// simulator advances per tick).
    pub fn clock_signal(&self) -> Option<&str> {
        self.clock.as_deref()
    }

    /// Generates a random stimulus of `cycles` post-reset cycles.
    ///
    /// One draw in four is biased to a corner value (all-zeros or
    /// all-ones): uniform sampling alone almost never hits antecedents
    /// like `duty == 0` on multi-bit inputs, leaving such properties
    /// vacuous within any realistic run budget.
    pub fn random(&self, cycles: usize, reset_cycles: usize, rng: &mut StdRng) -> Stimulus {
        let mut vectors = Vec::with_capacity(cycles + reset_cycles);
        for t in 0..cycles + reset_cycles {
            vectors.push(self.vector_at(t, reset_cycles, |w| {
                let roll: u64 = rng.gen();
                match roll % 8 {
                    0 => 0,
                    1 => mask(u64::MAX, w),
                    _ => mask(rng.gen(), w),
                }
            }));
        }
        Stimulus {
            vectors,
            reset_cycles,
        }
    }

    /// Generates a random stimulus from a seed (convenience).
    pub fn random_seeded(&self, cycles: usize, reset_cycles: usize, seed: u64) -> Stimulus {
        let mut rng = StdRng::seed_from_u64(seed);
        self.random(cycles, reset_cycles, &mut rng)
    }

    /// Whether [`StimulusGen::exhaustive`] would succeed at these bounds,
    /// without materialising anything (the portfolio racer decides its
    /// engine line-up with this before spawning threads).
    pub fn exhaustive_feasible(&self, cycles: usize, limit: u64) -> bool {
        let bits_per_cycle: u32 = self.inputs.iter().map(|(_, w)| *w).sum();
        let total_bits = bits_per_cycle as u64 * cycles as u64;
        total_bits < 63 && (1u64 << total_bits) <= limit
    }

    /// Enumerates *every* input sequence of length `cycles` (after
    /// `reset_cycles` of reset), provided the total input space
    /// `2^(bits × cycles)` does not exceed `limit`. Returns `None` when the
    /// space is too large — callers then fall back to random stimulus.
    pub fn exhaustive(
        &self,
        cycles: usize,
        reset_cycles: usize,
        limit: u64,
    ) -> Option<Vec<Stimulus>> {
        if !self.exhaustive_feasible(cycles, limit) {
            return None;
        }
        let bits_per_cycle: u32 = self.inputs.iter().map(|(_, w)| *w).sum();
        let total_bits = bits_per_cycle as u64 * cycles as u64;
        let count = 1u64 << total_bits;
        let mut all = Vec::with_capacity(count as usize);
        for idx in 0..count {
            let mut cursor = idx;
            let mut vectors = Vec::with_capacity(cycles + reset_cycles);
            for t in 0..cycles + reset_cycles {
                if t < reset_cycles {
                    vectors.push(self.vector_at(t, reset_cycles, |_| 0));
                } else {
                    let mut vec = Vec::with_capacity(self.inputs.len() + 1);
                    if let Some((r, active_low)) = &self.reset {
                        vec.push((r.clone(), u64::from(*active_low)));
                    }
                    for (name, w) in &self.inputs {
                        let v = cursor & mask(u64::MAX, *w);
                        cursor >>= w;
                        vec.push((name.clone(), v));
                    }
                    vectors.push(vec);
                }
            }
            all.push(Stimulus {
                vectors,
                reset_cycles,
            });
        }
        Some(all)
    }

    fn vector_at(
        &self,
        t: usize,
        reset_cycles: usize,
        mut value_for: impl FnMut(u32) -> u64,
    ) -> InputVector {
        let mut vec = Vec::with_capacity(self.inputs.len() + 1);
        if let Some((r, active_low)) = &self.reset {
            let in_reset = t < reset_cycles;
            let asserted = if *active_low { 0 } else { 1 };
            let deasserted = 1 - asserted;
            vec.push((r.clone(), if in_reset { asserted } else { deasserted }));
        }
        for (name, w) in &self.inputs {
            let v = if t < reset_cycles { 0 } else { value_for(*w) };
            vec.push((name.clone(), v));
        }
        vec
    }
}

fn mask(v: u64, w: u32) -> u64 {
    if w >= 64 {
        v
    } else {
        v & ((1u64 << w) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_verilog::compile;

    const COUNTER: &str = "module c(input clk, input rst_n, input en, output reg [3:0] q);\n\
        always @(posedge clk or negedge rst_n) begin\n\
          if (!rst_n) q <= 4'd0; else if (en) q <= q + 4'd1;\n\
        end\nendmodule";

    fn gen() -> StimulusGen {
        StimulusGen::new(&compile(COUNTER).expect("compile"))
    }

    #[test]
    fn detects_clock_and_reset() {
        let g = gen();
        assert_eq!(g.clock_signal(), Some("clk"));
        assert_eq!(g.reset_signal(), Some("rst_n"));
        assert_eq!(g.free_inputs(), &[("en".to_string(), 1)]);
    }

    #[test]
    fn reset_prologue_asserts_active_low() {
        let g = gen();
        let s = g.random_seeded(4, 2, 7);
        assert_eq!(s.len(), 6);
        assert!(s.cycle(0).contains(&("rst_n", 0)));
        assert!(s.cycle(1).contains(&("rst_n", 0)));
        assert!(s.cycle(2).contains(&("rst_n", 1)));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let g = gen();
        assert_eq!(g.random_seeded(8, 2, 42), g.random_seeded(8, 2, 42));
        assert_ne!(g.random_seeded(64, 2, 42), g.random_seeded(64, 2, 43));
    }

    #[test]
    fn exhaustive_enumerates_full_space() {
        let g = gen();
        // 1 input bit × 3 cycles = 8 sequences.
        let all = g.exhaustive(3, 1, 1 << 20).expect("small space");
        assert_eq!(all.len(), 8);
        // All distinct.
        let mut seen = std::collections::BTreeSet::new();
        for s in &all {
            assert!(seen.insert(format!("{s:?}")));
        }
    }

    #[test]
    fn exhaustive_refuses_large_spaces() {
        let d = compile(
            "module w(input clk, input [15:0] a, output reg [15:0] q);\n\
             always @(posedge clk) q <= a;\nendmodule",
        )
        .expect("compile");
        let g = StimulusGen::new(&d);
        assert!(g.exhaustive(8, 1, 1 << 20).is_none());
    }

    #[test]
    fn stimulus_drives_simulator() {
        let d = compile(COUNTER).expect("compile");
        let g = StimulusGen::new(&d);
        let stim = g.random_seeded(10, 2, 5);
        let mut sim = crate::exec::Simulator::new(&d);
        for t in 0..stim.len() {
            sim.step(&stim.cycle(t)).expect("step");
        }
        assert_eq!(sim.trace().len(), 12);
    }
}
