//! Waveform traces: per-cycle sampled signal values.
//!
//! Samples are taken in the *preponed* region of each clock tick (after
//! combinational settling, before register updates), matching SVA sampling
//! semantics: a property evaluated at tick `t` observes exactly
//! `trace.value(t, sig)`.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The immutable name table of a trace: signal names in column order plus
/// the name→column index. Shared (`Arc`) between every trace of one
/// compiled design, so starting a fresh trace is O(1) instead of cloning
/// each name and rebuilding the index — the per-stimulus allocation that
/// used to dominate simulator restarts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceHeader {
    names: Vec<String>,
    index: BTreeMap<String, usize>,
}

impl TraceHeader {
    /// Builds a header over signal names in column order.
    pub fn new(names: Vec<String>) -> Self {
        let index = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        TraceHeader { names, index }
    }
}

/// A recorded waveform.
///
/// Samples are stored **flat** (tick-major: `samples[t * cols + col]`)
/// rather than as one `Vec` per tick: appending a tick is an
/// `extend_from_slice` into one growing buffer, so the hot recording
/// paths ([`push_row`](Trace::push_row)) do zero per-tick allocations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    header: Arc<TraceHeader>,
    samples: Vec<Value>,
}

impl Trace {
    /// Creates an empty trace over the given signal names.
    pub fn new(names: Vec<String>) -> Self {
        Trace::with_header(Arc::new(TraceHeader::new(names)))
    }

    /// Creates an empty trace sharing an existing header — the O(1)
    /// restart path used by the executors, which intern one header per
    /// compiled design.
    pub fn with_header(header: Arc<TraceHeader>) -> Self {
        Trace {
            header,
            samples: Vec::new(),
        }
    }

    /// Builds a trace directly from a flat sample buffer (tick-major,
    /// `samples[t * cols + col]`) — the bulk path of the lane-batched
    /// executor, which logs lane-minor rows during the run and
    /// transposes each lane's samples out once at the end.
    ///
    /// # Panics
    ///
    /// Panics when `samples` is not a whole number of rows.
    pub fn from_parts(header: Arc<TraceHeader>, samples: Vec<Value>) -> Self {
        let cols = header.names.len();
        assert!(
            if cols == 0 {
                samples.is_empty()
            } else {
                samples.len().is_multiple_of(cols)
            },
            "sample buffer not a whole number of rows"
        );
        Trace { header, samples }
    }

    /// The shared name table.
    pub fn header(&self) -> &Arc<TraceHeader> {
        &self.header
    }

    /// Drops all recorded ticks, keeping the name table (and the sample
    /// buffer's capacity) for reuse.
    pub fn clear(&mut self) {
        self.samples.clear();
    }

    /// Signal names in column order.
    pub fn names(&self) -> &[String] {
        &self.header.names
    }

    /// Number of columns per tick.
    fn cols(&self) -> usize {
        self.header.names.len()
    }

    /// Number of recorded ticks.
    pub fn len(&self) -> usize {
        match self.cols() {
            0 => 0,
            c => self.samples.len() / c,
        }
    }

    /// True if no tick has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Appends one tick worth of samples (must match column order).
    ///
    /// # Panics
    ///
    /// Panics if `row` length differs from the number of signals.
    pub fn push(&mut self, row: Vec<Value>) {
        self.push_row(&row);
    }

    /// [`push`](Trace::push) from a borrowed slice — the allocation-free
    /// recording path: executors sample into a reused scratch buffer (or
    /// straight from their state vector) and append it here.
    ///
    /// # Panics
    ///
    /// Panics if `row` length differs from the number of signals.
    pub fn push_row(&mut self, row: &[Value]) {
        assert_eq!(row.len(), self.cols(), "row arity mismatch");
        self.samples.extend_from_slice(row);
    }

    /// Sampled value of `signal` at tick `t`.
    pub fn value(&self, t: usize, signal: &str) -> Option<Value> {
        let &col = self.header.index.get(signal)?;
        if t >= self.len() {
            return None;
        }
        Some(self.samples[t * self.cols() + col])
    }

    /// Column index of a signal (for the compiled evaluation path, which
    /// resolves names once and then indexes rows directly).
    pub fn col(&self, signal: &str) -> Option<usize> {
        self.header.index.get(signal).copied()
    }

    /// Sampled value at tick `t`, column `col` — the hot-path lookup of
    /// compiled property evaluation (no name hashing).
    ///
    /// # Panics
    ///
    /// Panics when `t` or `col` is out of range; compiled property
    /// checkers only evaluate in-range ticks over their own column map.
    #[inline]
    pub fn get(&self, t: usize, col: usize) -> Value {
        assert!(col < self.cols() && t < self.len(), "trace index range");
        self.samples[t * self.cols() + col]
    }

    /// Sampled value `n` ticks before `t` (`$past` semantics). For
    /// `t < n` returns the value at tick 0, matching simulators that
    /// return the initial sampled value before enough history exists.
    pub fn past(&self, t: usize, signal: &str, n: usize) -> Option<Value> {
        let at = t.saturating_sub(n);
        self.value(at, signal)
    }

    /// `$rose`: bit 0 of `signal` is 1 at `t` and was 0 at `t-1`.
    pub fn rose(&self, t: usize, signal: &str) -> Option<bool> {
        let now = self.value(t, signal)?.get_bit(0);
        let before = if t == 0 {
            false
        } else {
            self.value(t - 1, signal)?.get_bit(0)
        };
        Some(now && !before)
    }

    /// `$fell`: bit 0 was 1 at `t-1` and is 0 at `t`.
    pub fn fell(&self, t: usize, signal: &str) -> Option<bool> {
        let now = self.value(t, signal)?.get_bit(0);
        let before = if t == 0 {
            false
        } else {
            self.value(t - 1, signal)?.get_bit(0)
        };
        Some(!now && before)
    }

    /// `$stable`: value unchanged between `t-1` and `t` (true at `t = 0`).
    pub fn stable(&self, t: usize, signal: &str) -> Option<bool> {
        if t == 0 {
            return Some(true);
        }
        Some(self.value(t, signal)? == self.value(t - 1, signal)?)
    }

    /// Renders the trace as a standard VCD (value change dump) waveform,
    /// viewable in GTKWave & co. Counterexamples and fuzzer findings are
    /// exported with this.
    ///
    /// The output is fully deterministic (no date/version headers): one
    /// `$var` per signal in column order, a full dump at `#0`, then
    /// change-only dumps per tick. Each tick is one timescale unit.
    pub fn to_vcd(&self, module: &str) -> String {
        let mut out = String::new();
        out.push_str("$timescale 1ns $end\n");
        out.push_str(&format!("$scope module {module} $end\n"));
        let ids: Vec<String> = (0..self.header.names.len()).map(vcd_id).collect();
        for (i, name) in self.header.names.iter().enumerate() {
            let width = self.samples.get(i).map(|v| v.width()).unwrap_or(1);
            out.push_str(&format!("$var wire {width} {} {name} $end\n", ids[i]));
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        let mut last: Vec<Option<Value>> = vec![None; self.header.names.len()];
        let cols = self.cols().max(1);
        for (t, row) in self.samples.chunks_exact(cols).enumerate() {
            out.push_str(&format!("#{t}\n"));
            for (i, v) in row.iter().enumerate() {
                if last[i] == Some(*v) {
                    continue;
                }
                last[i] = Some(*v);
                if v.width() == 1 {
                    out.push_str(&format!("{}{}\n", v.bits(), ids[i]));
                } else {
                    out.push_str(&format!("b{:b} {}\n", v.bits(), ids[i]));
                }
            }
        }
        out.push_str(&format!("#{}\n", self.len()));
        out
    }

    /// Renders a compact textual waveform of the chosen signals (debugging
    /// aid and CoT evidence).
    pub fn format_signals(&self, signals: &[&str]) -> String {
        let mut out = String::new();
        for sig in signals {
            out.push_str(&format!("{sig:>12}: "));
            for t in 0..self.len() {
                match self.value(t, sig) {
                    Some(v) => out.push_str(&format!("{:>3} ", v.bits())),
                    None => out.push_str("  ? "),
                }
            }
            out.push('\n');
        }
        out
    }
}

/// VCD identifier code for signal column `i`: base-94 over the printable
/// ASCII range `!`..=`~`, as the format specifies.
fn vcd_id(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((b'!' + (i % 94) as u8) as char);
        i /= 94;
        if i == 0 {
            break;
        }
        i -= 1;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tr() -> Trace {
        let mut t = Trace::new(vec!["a".into(), "b".into()]);
        t.push(vec![Value::new(0, 1), Value::new(0, 4)]);
        t.push(vec![Value::new(1, 1), Value::new(3, 4)]);
        t.push(vec![Value::new(0, 1), Value::new(3, 4)]);
        t
    }

    #[test]
    fn value_lookup() {
        let t = tr();
        assert_eq!(t.value(1, "b").map(Value::bits), Some(3));
        assert_eq!(t.value(9, "b"), None);
        assert_eq!(t.value(0, "zz"), None);
    }

    #[test]
    fn past_clamps_at_zero() {
        let t = tr();
        assert_eq!(t.past(2, "b", 1).map(Value::bits), Some(3));
        assert_eq!(t.past(0, "b", 3).map(Value::bits), Some(0));
    }

    #[test]
    fn rose_and_fell() {
        let t = tr();
        assert_eq!(t.rose(1, "a"), Some(true));
        assert_eq!(t.rose(2, "a"), Some(false));
        assert_eq!(t.fell(2, "a"), Some(true));
        assert_eq!(t.rose(0, "a"), Some(false));
    }

    #[test]
    fn stable_detects_changes() {
        let t = tr();
        assert_eq!(t.stable(0, "b"), Some(true));
        assert_eq!(t.stable(1, "b"), Some(false));
        assert_eq!(t.stable(2, "b"), Some(true));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn push_checks_arity() {
        let mut t = Trace::new(vec!["a".into()]);
        t.push(vec![Value::new(0, 1), Value::new(0, 1)]);
    }

    #[test]
    fn vcd_ids_cover_multi_char_codes() {
        assert_eq!(vcd_id(0), "!");
        assert_eq!(vcd_id(93), "~");
        assert_eq!(vcd_id(94), "!!");
        let all: std::collections::BTreeSet<String> = (0..300).map(vcd_id).collect();
        assert_eq!(all.len(), 300, "id codes must be unique");
    }

    #[test]
    fn vcd_emits_changes_only() {
        let vcd = tr().to_vcd("m");
        assert!(vcd.contains("$scope module m $end"));
        assert!(vcd.contains("$var wire 1 ! a $end"));
        assert!(vcd.contains("$var wire 4 \" b $end"));
        // b holds 3 at ticks 1 and 2: exactly one change record for it.
        assert_eq!(vcd.matches("b11 \"").count(), 1);
        // a toggles 0 → 1 → 0: three scalar records.
        assert_eq!(vcd.matches("\n0!").count(), 2);
        assert_eq!(vcd.matches("\n1!").count(), 1);
    }

    #[test]
    fn format_is_readable() {
        let t = tr();
        let s = t.format_signals(&["a"]);
        assert!(s.contains("a"));
        assert!(s.contains("1"));
    }
}
