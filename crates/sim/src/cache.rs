//! Shared, sharded compile cache: one [`CompiledDesign`] per distinct
//! design, process-wide.
//!
//! The bounded verifier used to keep a *thread-local* MRU slot of
//! compiled designs, which meant every worker thread of a parallel
//! sampling/fuzzing/portfolio run re-lowered the same AST once per
//! thread. This cache replaces that path with a single process-wide
//! table sharded by design hash: lookups take one shard mutex (shards
//! are independent, so concurrent verification jobs on different designs
//! never contend), hits bump the entry to most-recently-used, and misses
//! compile under no lock other than the owning shard's.
//!
//! Keys are a 64-bit structural hash of the elaborated design (rendered
//! module source plus resolved parameters); hash collisions are resolved
//! by full structural equality before an entry is reused, so a hit is
//! always the *same* design.
//!
//! Shard locks are poison-proof: a verification job that panics (or has
//! a panic injected by the chaos harness) while touching a shard never
//! wedges the cache for later jobs. Recovering the poisoned guard is
//! sound because every mutation keeps the MRU vector valid at all
//! times — there is no multi-step invariant a mid-flight panic could
//! tear.

use crate::compile::{CompiledDesign, OptLevel};
use asv_verilog::sema::Design;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of independent shards (power of two).
const SHARDS: usize = 16;
/// LRU capacity per shard; total capacity is `SHARDS * SHARD_CAP`.
const SHARD_CAP: usize = 8;

/// A stable (per-process) 64-bit structural hash of an elaborated design.
///
/// Hashes the pretty-printed module — which covers ports, logic,
/// properties and assertion directives — plus the resolved parameter
/// environment, so two designs hash equal iff they would compile to the
/// same [`CompiledDesign`].
pub fn design_hash(design: &Design) -> u64 {
    let mut h = DefaultHasher::new();
    asv_verilog::pretty::render_module(&design.module).hash(&mut h);
    for (name, value) in &design.params {
        name.hash(&mut h);
        value.hash(&mut h);
    }
    h.finish()
}

/// One shard: a small MRU-ordered vector (most recently used last).
///
/// Entries are keyed on `(design hash, OptLevel)`: a mixed-opt workload
/// (e.g. a differential run holding both forms of one design) must never
/// alias to the other level's compiled artifact.
#[derive(Default)]
struct Shard {
    entries: Vec<(u64, OptLevel, std::sync::Arc<CompiledDesign>)>,
}

/// A sharded LRU cache of compiled designs.
pub struct CompileCache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CompileCache {
    /// An empty cache (prefer [`global`] outside of tests).
    pub fn new() -> Self {
        CompileCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// [`CompileCache::get_or_compile_opt`] at the default opt level.
    pub fn get_or_compile(&self, design: &Design) -> std::sync::Arc<CompiledDesign> {
        self.get_or_compile_opt(design, OptLevel::default())
    }

    /// Returns the compiled form of `design` at `opt`, compiling and
    /// caching it on the first request. The cache key is
    /// `(design hash, OptLevel)` — the two opt forms of one design are
    /// distinct artifacts and never alias. Hash collisions fall back to
    /// structural equality, so a hit is always `design` itself.
    pub fn get_or_compile_opt(
        &self,
        design: &Design,
        opt: OptLevel,
    ) -> std::sync::Arc<CompiledDesign> {
        self.get_or_compile_traced(design, opt, &asv_trace::TraceHandle::disabled())
    }

    /// [`CompileCache::get_or_compile_opt`] with span emission: a cache
    /// hit records an instant `sim.compile` event (code 0), a miss
    /// records the full compile span (code 1, with a nested `sim.opt`
    /// span at `OptLevel::Full`). Every job thus gets its compile cost
    /// attributed, hit or miss; the compiled artifact is identical
    /// either way.
    pub fn get_or_compile_traced(
        &self,
        design: &Design,
        opt: OptLevel,
        trace: &asv_trace::TraceHandle,
    ) -> std::sync::Arc<CompiledDesign> {
        let key = design_hash(design);
        let shard = &self.shards[(key as usize) & (SHARDS - 1)];
        {
            let mut s = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(pos) = s
                .entries
                .iter()
                .position(|(k, o, cd)| *k == key && *o == opt && cd.design() == design)
            {
                let entry = s.entries.remove(pos);
                let cd = std::sync::Arc::clone(&entry.2);
                s.entries.push(entry); // most recently used last
                self.hits.fetch_add(1, Ordering::Relaxed);
                trace.instant(
                    asv_trace::probe::SIM_COMPILE,
                    asv_trace::SpanKind::Compile,
                    0,
                    asv_trace::Cost::default(),
                );
                return cd;
            }
        }
        // Compile outside the shard lock: a slow compile of one design
        // must not block lookups of the other designs in its shard.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let cd = std::sync::Arc::new(CompiledDesign::compile_traced(design, opt, trace));
        let mut s = shard
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // A racing thread may have inserted the same design meanwhile;
        // keeping both copies is harmless (the duplicate ages out), but
        // prefer the existing entry so Arc identity stays stable.
        if let Some(pos) = s
            .entries
            .iter()
            .position(|(k, o, e)| *k == key && *o == opt && e.design() == design)
        {
            return std::sync::Arc::clone(&s.entries[pos].2);
        }
        if s.entries.len() == SHARD_CAP {
            s.entries.remove(0); // least recently used first
        }
        s.entries.push((key, opt, std::sync::Arc::clone(&cd)));
        cd
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Drops every cached entry (benchmarks use this to measure the
    /// cache-cold path; counters are preserved).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .entries
                .clear();
        }
    }
}

impl Default for CompileCache {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-wide cache every verifier call goes through.
pub fn global() -> &'static CompileCache {
    static GLOBAL: OnceLock<CompileCache> = OnceLock::new();
    GLOBAL.get_or_init(CompileCache::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design(n: u64) -> Design {
        asv_verilog::compile(&format!(
            "module m{n}(input clk, input [3:0] a, output reg [3:0] q);\n\
             always @(posedge clk) q <= a + 4'd{};\nendmodule",
            n % 16
        ))
        .expect("compile")
    }

    #[test]
    fn hit_returns_the_same_arc() {
        let cache = CompileCache::new();
        let d = design(1);
        let a = cache.get_or_compile(&d);
        let b = cache.get_or_compile(&d);
        assert!(std::sync::Arc::ptr_eq(&a, &b), "second call must hit");
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn distinct_designs_get_distinct_entries() {
        let cache = CompileCache::new();
        let a = cache.get_or_compile(&design(1));
        let b = cache.get_or_compile(&design(2));
        assert!(!std::sync::Arc::ptr_eq(&a, &b));
        assert_ne!(a.design(), b.design());
    }

    #[test]
    fn eviction_keeps_capacity_bounded_and_correct() {
        let cache = CompileCache::new();
        // Far more designs than total capacity: every lookup must still
        // return the right design.
        for round in 0..3 {
            for n in 0..(SHARDS * SHARD_CAP * 2) as u64 {
                let d = design(n);
                let cd = cache.get_or_compile(&d);
                assert_eq!(cd.design(), &d, "round {round}: wrong design for {n}");
            }
        }
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = CompileCache::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = &cache;
                scope.spawn(move || {
                    for n in 0..32u64 {
                        let d = design((n + t) % 8);
                        let cd = cache.get_or_compile(&d);
                        assert_eq!(cd.design(), &d);
                    }
                });
            }
        });
    }

    #[test]
    fn opt_levels_never_alias() {
        let cache = CompileCache::new();
        let d = design(5);
        let full = cache.get_or_compile_opt(&d, OptLevel::Full);
        let none = cache.get_or_compile_opt(&d, OptLevel::None);
        assert!(
            !std::sync::Arc::ptr_eq(&full, &none),
            "distinct artifacts per (hash, OptLevel)"
        );
        assert_eq!(full.opt_level(), OptLevel::Full);
        assert_eq!(none.opt_level(), OptLevel::None);
        // Re-requests hit the matching level.
        assert!(std::sync::Arc::ptr_eq(
            &none,
            &cache.get_or_compile_opt(&d, OptLevel::None)
        ));
        assert!(std::sync::Arc::ptr_eq(
            &full,
            &cache.get_or_compile_opt(&d, OptLevel::Full)
        ));
    }

    #[test]
    fn poisoned_shard_keeps_serving() {
        let cache = CompileCache::new();
        let d = design(1);
        let a = cache.get_or_compile(&d);
        // Poison every shard mutex by panicking while holding the guard.
        for shard in &cache.shards {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _guard = shard
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                panic!("poison");
            }));
        }
        let b = cache.get_or_compile(&d);
        assert!(
            std::sync::Arc::ptr_eq(&a, &b),
            "poisoned shard must still answer with the cached entry"
        );
        let e = design(99);
        assert_eq!(cache.get_or_compile(&e).design(), &e);
    }

    #[test]
    fn clear_forgets_entries() {
        let cache = CompileCache::new();
        let d = design(3);
        let a = cache.get_or_compile(&d);
        cache.clear();
        let b = cache.get_or_compile(&d);
        assert!(!std::sync::Arc::ptr_eq(&a, &b), "cleared entry recompiles");
    }
}
