//! Compile-once/run-many execution backend, lowered through the shared
//! word-level IR (`asv-ir`).
//!
//! [`CompiledDesign::compile`] turns an elaborated [`Design`] into a form
//! the simulator can execute without touching the AST again. Lowering is
//! a three-stage pipeline, split across this module's children:
//!
//! 1. **IR lowering & optimization** — the AST lowers to the hash-consed
//!    word-level IR once; at [`OptLevel::Full`] (the default) the pass
//!    pipeline in `asv_ir::opt` folds constants, simplifies algebra,
//!    strength-reduces and copy-propagates. [`OptLevel::None`] keeps the
//!    raw form alive as the bit-exact differential reference.
//! 2. **Bytecode emission** ([`lower`]) — IR programs become postfix
//!    [`Op`] streams ([`bytecode`]); optimized emission materialises
//!    shared subexpressions into temporaries and fuses superinstructions.
//! 3. **Levelized scheduling** (`levelize`) — combinational steps are
//!    topologically sorted so settling is one ordered pass. The
//!    *levelizability verdict* is always taken on the raw emission, so
//!    optimization can never flip a design between the one-pass and
//!    fixpoint disciplines (or between verification engines).
//!
//! Every backend consumes this one compiled form: the simulator executes
//! it, the `asv-sat` bit-blaster walks the same bytecode symbolically
//! (through [`CompiledDesign::comb_steps`]/[`CompiledDesign::seq_blocks`]
//! with [`CompiledDesign::sym_live`] masking logic outside the assertion
//! cone), and the fuzzer reads branch-site ids and dictionary constants
//! assigned here. Branch sites are allocated at IR lowering — before any
//! pass — so coverage maps are identical at every opt level.

pub mod batch;
pub mod bytecode;
mod levelize;
pub mod lower;

pub use asv_ir::{param_value, OptLevel, SigId};
pub use bytecode::{compile_expr, run, ExecEnv, ExprProg, HistoryKind, NameRef, Op};

use crate::cover::{CovSink, NoCov};
use crate::eval::EvalError;
use crate::exec::SimError;
use crate::trace::TraceHeader;
use crate::value::Value;
use asv_ir::IrDesign;
use asv_verilog::sema::Design;
use levelize::{levelize, StepFx};
use std::collections::HashMap;
use std::sync::Arc;

/// Maximum delta iterations of the fallback fixpoint loop (mirrors the
/// AST interpreter).
const MAX_SETTLE_ITERS: usize = 64;

/// A compiled assignment target.
#[derive(Debug, Clone)]
pub enum CLValue {
    /// Whole signal (write masked to declared width).
    Whole(SigId),
    /// Single bit with a (possibly dynamic) index program.
    Bit {
        /// Target signal.
        sig: SigId,
        /// Index program, evaluated at write time.
        index: ExprProg,
    },
    /// Constant part select.
    Part {
        /// Target signal.
        sig: SigId,
        /// Most significant bit.
        msb: u32,
        /// Least significant bit.
        lsb: u32,
    },
    /// Concatenated target, assigned from the high part downward.
    Concat(Vec<CLValue>),
    /// Target that elaboration never resolved; writing raises
    /// [`EvalError::UnknownSignal`] like the interpreter.
    Unknown(String),
}

/// A compiled procedural statement.
#[derive(Debug, Clone)]
pub enum CStmt {
    /// `begin ... end`
    Block(Vec<CStmt>),
    /// `if (cond) ... else ...`
    If {
        /// Condition program.
        cond: ExprProg,
        /// Taken branch.
        then_branch: Box<CStmt>,
        /// Else branch.
        else_branch: Option<Box<CStmt>>,
        /// Branch-site id of the then arm; the (possibly implicit) else
        /// arm is `site + 1`. See [`CompiledDesign::branch_sites`].
        site: u32,
    },
    /// `case (scrutinee) ... endcase`
    Case {
        /// Scrutinee program.
        scrutinee: ExprProg,
        /// Arms in source order.
        arms: Vec<CCaseArm>,
        /// Default arm.
        default: Option<Box<CStmt>>,
        /// Branch-site id of the first arm; arm *i* is `site + i` and the
        /// (possibly implicit) default is `site + arms.len()`.
        site: u32,
    },
    /// Blocking or nonblocking assignment.
    Assign {
        /// Target.
        lhs: CLValue,
        /// Value program.
        rhs: ExprProg,
        /// `<=` if true.
        nonblocking: bool,
    },
    /// `;`
    Empty,
}

/// One compiled case arm.
#[derive(Debug, Clone)]
pub struct CCaseArm {
    /// Label programs.
    pub labels: Vec<ExprProg>,
    /// Arm body.
    pub body: CStmt,
}

/// One combinational process in source order.
///
/// Public so that second consumers of the compiled form (the `asv-sat`
/// bit-blaster walks the same bytecode symbolically) can traverse the
/// schedule without re-lowering the AST.
#[derive(Debug, Clone)]
pub enum CombStep {
    /// Continuous assignment.
    Assign {
        /// Compiled target.
        lhs: CLValue,
        /// Compiled value program.
        rhs: ExprProg,
    },
    /// Combinational always block (nonblocking writes inside commit at
    /// block end — delta-cycle collapse, as in the interpreter).
    Block(CStmt),
}

/// A design lowered for execution. Cheap to share (`Arc`) across many
/// simulator instances; restarting a simulation is an O(#signals) state
/// reset instead of a `Design` clone.
#[derive(Debug, Clone)]
pub struct CompiledDesign {
    design: Design,
    names: Vec<String>,
    index: HashMap<String, SigId>,
    widths: Vec<u32>,
    init: Vec<Value>,
    comb: Vec<CombStep>,
    /// Execution order over `comb` (levelized when `levelized`, identity
    /// declaration order otherwise).
    order: Vec<usize>,
    /// True when a single ordered pass settles combinational logic.
    levelized: bool,
    seq: Vec<CStmt>,
    /// Number of branch sites allocated across all statements.
    branch_sites: u32,
    /// The pipeline this design was lowered with.
    opt: OptLevel,
    /// Constants harvested from the *raw* emission (opt-level-invariant
    /// fuzzer dictionary).
    dict_consts: Vec<u64>,
    /// Per comb step: statically guaranteed to bit-blast (see
    /// [`CompiledDesign::sym_live`]).
    sym_clean_comb: Vec<bool>,
    /// Per clocked block: statically guaranteed to bit-blast.
    sym_clean_seq: Vec<bool>,
    /// Interned trace name table, shared by every trace of this design so
    /// simulator restarts are O(#signals) in state only.
    trace_header: Arc<TraceHeader>,
}

impl CompiledDesign {
    /// Lowers an elaborated design at the default (full) optimization
    /// level. Never fails: unresolvable constructs compile to
    /// instructions that raise the interpreter's runtime error when (and
    /// only when) they execute.
    pub fn compile(design: &Design) -> Self {
        Self::compile_opt(design, OptLevel::default())
    }

    /// [`CompiledDesign::compile`] with an explicit [`OptLevel`].
    /// `OptLevel::None` reproduces the historical direct lowering
    /// byte-for-byte; `OptLevel::Full` runs the IR pass pipeline. Both
    /// forms are observationally identical (traces, errors, coverage,
    /// verdicts) — the `differential_opt` suite is the enforcement.
    pub fn compile_opt(design: &Design, opt: OptLevel) -> Self {
        Self::compile_traced(design, opt, &asv_trace::NoTrace)
    }

    /// [`CompiledDesign::compile_opt`] emitting `sim.compile` /
    /// `sim.opt` spans into `sink`. Monomorphized per sink: with
    /// [`NoTrace`](asv_trace::NoTrace) (the `compile_opt` path) the
    /// instrumentation compiles to nothing, and the produced bytecode is
    /// identical whichever sink is passed — tracing observes lowering,
    /// it never participates in it.
    pub fn compile_traced<S: asv_trace::TraceSink>(
        design: &Design,
        opt: OptLevel,
        sink: &S,
    ) -> Self {
        let mut span = sink.span(asv_trace::probe::SIM_COMPILE, asv_trace::SpanKind::Compile);
        span.set_code(1); // 1 = actually compiled (cache hits emit 0)
        Self::compile_inner(design, opt, sink)
    }

    fn compile_inner<S: asv_trace::TraceSink>(design: &Design, opt: OptLevel, sink: &S) -> Self {
        let names: Vec<String> = design.signals.keys().cloned().collect();
        let index: HashMap<String, SigId> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), SigId(i as u32)))
            .collect();
        let widths: Vec<u32> = design.signals.values().map(|s| s.width).collect();
        let init: Vec<Value> = widths.iter().map(|&w| Value::zero(w)).collect();

        let ir = IrDesign::from_design(design);
        let branch_sites = ir.branch_sites;
        let (sym_clean_comb, sym_clean_seq) = ir.sym_clean_steps();

        // Raw emission always happens: it supplies the levelizability
        // verdict, the opt-invariant fuzzer dictionary, and (at
        // OptLevel::None) the executable form itself.
        let raw = lower::emit_design(&ir, lower::EmitMode::Raw);
        let (raw_order, raw_lev) = levelize(&raw.comb, names.len());
        let dict_consts = lower::harvest_consts(&raw.comb, &raw.seq);

        let (comb, seq, order, levelized) = match opt {
            OptLevel::None => (raw.comb, raw.seq, raw_order, raw_lev),
            OptLevel::Full => {
                let mut oir = ir;
                {
                    let _opt_span =
                        sink.span(asv_trace::probe::SIM_OPT, asv_trace::SpanKind::OptPass);
                    asv_ir::opt::optimize(&mut oir, raw_lev);
                }
                let ob = lower::emit_design(&oir, lower::EmitMode::Optimized);
                let (o_order, o_lev) = levelize(&ob.comb, names.len());
                // Optimization only removes dependencies, so a
                // raw-levelizable design must stay levelizable; if the
                // optimized schedule were ever rejected, the raw order is
                // still a valid topological order for the (sparser)
                // optimized dependency graph.
                debug_assert!(
                    o_lev || !raw_lev,
                    "optimization must not break levelization"
                );
                let order = if o_lev { o_order } else { raw_order };
                (ob.comb, ob.seq, order, raw_lev)
            }
        };

        let trace_header = Arc::new(TraceHeader::new(names.clone()));
        CompiledDesign {
            design: design.clone(),
            names,
            index,
            widths,
            init,
            comb,
            order,
            levelized,
            seq,
            branch_sites,
            opt,
            dict_consts,
            sym_clean_comb,
            sym_clean_seq,
            trace_header,
        }
    }

    /// The elaborated design this was compiled from.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// The optimization level this design was lowered with.
    pub fn opt_level(&self) -> OptLevel {
        self.opt
    }

    /// Interned signal names, in state/trace column order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Looks up the interned id of a signal.
    pub fn sig(&self, name: &str) -> Option<SigId> {
        self.index.get(name).copied()
    }

    /// Declared width of an interned signal.
    pub fn width(&self, sig: SigId) -> u32 {
        self.widths[sig.idx()]
    }

    /// A fresh all-zero state vector.
    pub fn init_state(&self) -> Vec<Value> {
        self.init.clone()
    }

    /// The initial state as a slice, for in-place restarts that reuse an
    /// existing state buffer instead of allocating.
    pub(crate) fn init_slice(&self) -> &[Value] {
        &self.init
    }

    /// The interned trace name table shared by every trace of this design
    /// (see [`crate::trace::Trace::with_header`]).
    pub fn trace_header(&self) -> &Arc<TraceHeader> {
        &self.trace_header
    }

    /// True when combinational logic settles in one levelized pass (the
    /// fallback is the declaration-order fixpoint loop). Decided on the
    /// raw lowering, so the answer is identical at every opt level.
    pub fn is_levelized(&self) -> bool {
        self.levelized
    }

    /// The combinational steps in declaration order. Walk them in
    /// [`CompiledDesign::comb_order`] to replay the levelized schedule.
    pub fn comb_steps(&self) -> &[CombStep] {
        &self.comb
    }

    /// Execution order over [`CompiledDesign::comb_steps`] (levelized when
    /// [`CompiledDesign::is_levelized`], declaration order otherwise).
    pub fn comb_order(&self) -> &[usize] {
        &self.order
    }

    /// The clocked `always` bodies in declaration order, as executed by
    /// [`CompiledDesign::clock_edge`].
    pub fn seq_blocks(&self) -> &[CStmt] {
        &self.seq
    }

    /// Number of branch sites ([`CStmt::If`]/[`CStmt::Case`] arms)
    /// allocated during lowering — the size of a [`crate::cover::CovMap`]'s
    /// branch axis. Allocated on the IR before any pass runs, so the id
    /// space (and every recorded hit) is identical at every opt level.
    pub fn branch_sites(&self) -> u32 {
        self.branch_sites
    }

    /// Every constant appearing in the *raw* bytecode of the design — the
    /// fuzzer's dictionary. Harvested before optimization so fuzzing
    /// campaigns are bit-identical across opt levels.
    pub fn dict_consts(&self) -> &[u64] {
        &self.dict_consts
    }

    /// Total `Op` count across all programs of the compiled form (the
    /// bytecode-length metric of `table_engines` and the README).
    pub fn bytecode_len(&self) -> usize {
        lower::bytecode_len(&self.comb, &self.seq)
    }

    /// Dead-logic elimination for the symbolic path: given observability
    /// roots (the signals the assertions read), returns
    /// `(comb_live, seq_live)` masks of the steps a symbolic unrolling
    /// must execute. A step is live when it (transitively) feeds a root —
    /// or when it is not statically guaranteed to bit-blast, in which
    /// case it is kept so that the symbolic engine's accept/reject
    /// decision cannot differ between opt levels.
    ///
    /// The *simulation* path never uses these masks: every signal is
    /// observable through traces and toggle coverage, so the simulator
    /// executes everything.
    pub fn sym_live(&self, roots: &[SigId]) -> (Vec<bool>, Vec<bool>) {
        let comb_fx: Vec<StepFx> = self.comb.iter().map(StepFx::of_step).collect();
        let seq_fx: Vec<StepFx> = self.seq.iter().map(StepFx::of_stmt).collect();
        let mut live_sig = vec![false; self.names.len()];
        for r in roots {
            live_sig[r.idx()] = true;
        }
        let mut comb_live: Vec<bool> = self.sym_clean_comb.iter().map(|clean| !clean).collect();
        let mut seq_live: Vec<bool> = self.sym_clean_seq.iter().map(|clean| !clean).collect();
        // Defensive: mask lengths track the emitted step lists.
        comb_live.resize(self.comb.len(), true);
        seq_live.resize(self.seq.len(), true);
        let mut done_comb = vec![false; comb_live.len()];
        let mut done_seq = vec![false; seq_live.len()];
        loop {
            let mut changed = false;
            let visit =
                |live: &mut bool, done: &mut bool, fx: &StepFx, live_sig: &mut Vec<bool>| -> bool {
                    if *live && !*done {
                        // Newly live: its reads become observability roots.
                        *done = true;
                        for r in &fx.reads {
                            live_sig[r.idx()] = true;
                        }
                        return true;
                    }
                    if !*live && fx.writes.iter().any(|w| live_sig[w.idx()]) {
                        *live = true;
                        return true;
                    }
                    false
                };
            for (i, fx) in comb_fx.iter().enumerate() {
                changed |= visit(&mut comb_live[i], &mut done_comb[i], fx, &mut live_sig);
            }
            for (i, fx) in seq_fx.iter().enumerate() {
                changed |= visit(&mut seq_live[i], &mut done_seq[i], fx, &mut live_sig);
            }
            if !changed {
                break;
            }
        }
        (comb_live, seq_live)
    }

    /// Settles combinational logic.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CombDivergence`] when the (cyclic) fallback
    /// fixpoint fails to stabilise, and propagates evaluation errors.
    pub fn settle(&self, state: &mut Vec<Value>, stack: &mut Vec<Value>) -> Result<(), SimError> {
        self.settle_cov(state, stack, &mut NoCov)
    }

    /// [`CompiledDesign::settle`] with branch coverage recorded into
    /// `cov`. With [`NoCov`] this monomorphises to the uninstrumented
    /// executor (zero cost when coverage is disabled).
    ///
    /// # Errors
    ///
    /// As for [`CompiledDesign::settle`].
    pub fn settle_cov<C: CovSink>(
        &self,
        state: &mut Vec<Value>,
        stack: &mut Vec<Value>,
        cov: &mut C,
    ) -> Result<(), SimError> {
        if self.levelized {
            for &i in &self.order {
                self.run_comb_step(&self.comb[i], state, stack, cov)?;
            }
            return Ok(());
        }
        for _ in 0..MAX_SETTLE_ITERS {
            let before = state.clone();
            for step in &self.comb {
                self.run_comb_step(step, state, stack, cov)?;
            }
            if *state == before {
                return Ok(());
            }
        }
        Err(SimError::CombDivergence)
    }

    fn run_comb_step<C: CovSink>(
        &self,
        step: &CombStep,
        state: &mut Vec<Value>,
        stack: &mut Vec<Value>,
        cov: &mut C,
    ) -> Result<(), SimError> {
        match step {
            CombStep::Assign { lhs, rhs } => {
                let v = run(rhs, &StateEnv { state }, stack)?;
                cov.ops(rhs.ops.len() as u64);
                self.write_lvalue(lhs, v, state, stack)?;
            }
            CombStep::Block(body) => {
                let mut nba = Vec::new();
                self.exec_stmt(body, state, stack, &mut nba, cov)?;
                for (lv, v) in nba {
                    self.write_lvalue(lv, v, state, stack)?;
                }
            }
        }
        Ok(())
    }

    /// Executes every clocked block against the pre-edge state and commits
    /// nonblocking updates atomically, mirroring the interpreter's commit
    /// order (per block: blocking diffs in signal order, then NBAs in
    /// execution order).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn clock_edge(
        &self,
        state: &mut Vec<Value>,
        stack: &mut Vec<Value>,
    ) -> Result<(), SimError> {
        self.clock_edge_cov(state, stack, &mut NoCov)
    }

    /// [`CompiledDesign::clock_edge`] with branch coverage recorded into
    /// `cov` (zero cost with [`NoCov`]).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn clock_edge_cov<C: CovSink>(
        &self,
        state: &mut Vec<Value>,
        stack: &mut Vec<Value>,
        cov: &mut C,
    ) -> Result<(), SimError> {
        let pre_edge = state.clone();
        let mut scratch = Vec::new();
        let mut nba_all: Vec<NbaUpdate<'_>> = Vec::new();
        for block in &self.seq {
            scratch.clone_from(&pre_edge);
            let mut nba = Vec::new();
            self.exec_stmt(block, &mut scratch, stack, &mut nba, cov)?;
            for (i, v) in scratch.iter().enumerate() {
                if pre_edge[i] != *v {
                    nba_all.push(NbaUpdate::Whole(SigId(i as u32), *v));
                }
            }
            nba_all.extend(nba.into_iter().map(|(lv, v)| NbaUpdate::Lv(lv, v)));
        }
        for up in nba_all {
            match up {
                NbaUpdate::Whole(sig, v) => {
                    state[sig.idx()] = v.resize(self.widths[sig.idx()]);
                }
                NbaUpdate::Lv(lv, v) => self.write_lvalue(lv, v, state, stack)?,
            }
        }
        Ok(())
    }

    fn exec_stmt<'a, C: CovSink>(
        &'a self,
        s: &'a CStmt,
        state: &mut Vec<Value>,
        stack: &mut Vec<Value>,
        nba: &mut Vec<(&'a CLValue, Value)>,
        cov: &mut C,
    ) -> Result<(), SimError> {
        match s {
            CStmt::Block(stmts) => {
                for st in stmts {
                    self.exec_stmt(st, state, stack, nba, cov)?;
                }
                Ok(())
            }
            CStmt::If {
                cond,
                then_branch,
                else_branch,
                site,
            } => {
                let taken = run(cond, &StateEnv { state }, stack)?.is_truthy();
                cov.ops(cond.ops.len() as u64);
                if taken {
                    cov.branch(*site);
                    self.exec_stmt(then_branch, state, stack, nba, cov)
                } else {
                    cov.branch(*site + 1);
                    if let Some(e) = else_branch {
                        self.exec_stmt(e, state, stack, nba, cov)
                    } else {
                        Ok(())
                    }
                }
            }
            CStmt::Case {
                scrutinee,
                arms,
                default,
                site,
            } => {
                let sv = run(scrutinee, &StateEnv { state }, stack)?;
                cov.ops(scrutinee.ops.len() as u64);
                for (i, arm) in arms.iter().enumerate() {
                    for label in &arm.labels {
                        let lv = run(label, &StateEnv { state }, stack)?;
                        cov.ops(label.ops.len() as u64);
                        if lv.bits() == sv.bits() {
                            cov.branch(*site + i as u32);
                            return self.exec_stmt(&arm.body, state, stack, nba, cov);
                        }
                    }
                }
                cov.branch(*site + arms.len() as u32);
                if let Some(d) = default {
                    self.exec_stmt(d, state, stack, nba, cov)
                } else {
                    Ok(())
                }
            }
            CStmt::Assign {
                lhs,
                rhs,
                nonblocking,
            } => {
                let v = run(rhs, &StateEnv { state }, stack)?;
                cov.ops(rhs.ops.len() as u64);
                if *nonblocking {
                    nba.push((lhs, v));
                } else {
                    self.write_lvalue(lhs, v, state, stack)?;
                }
                Ok(())
            }
            CStmt::Empty => Ok(()),
        }
    }

    fn write_lvalue(
        &self,
        lv: &CLValue,
        value: Value,
        state: &mut Vec<Value>,
        stack: &mut Vec<Value>,
    ) -> Result<(), SimError> {
        match lv {
            CLValue::Whole(sig) => {
                state[sig.idx()] = value.resize(self.widths[sig.idx()]);
                Ok(())
            }
            CLValue::Bit { sig, index } => {
                let i = run(index, &StateEnv { state }, stack)?.bits();
                let i = u32::try_from(i).unwrap_or(u32::MAX);
                let cur = state[sig.idx()];
                state[sig.idx()] = cur.set_bit(i, value.is_truthy() && value.get_bit(0));
                Ok(())
            }
            CLValue::Part { sig, msb, lsb } => {
                let cur = state[sig.idx()];
                state[sig.idx()] = cur.set_slice(*msb, *lsb, value);
                Ok(())
            }
            CLValue::Concat(_) => {
                // The interpreter snapshots the store on entry: nested
                // reads (including index evaluation) observe pre-write
                // values throughout the concat.
                let snapshot = state.clone();
                self.write_concat_part(lv, value, &snapshot, state, stack)
            }
            CLValue::Unknown(name) => Err(SimError::Eval(EvalError::UnknownSignal(name.clone()))),
        }
    }

    fn write_concat_part(
        &self,
        lv: &CLValue,
        value: Value,
        snapshot: &[Value],
        state: &mut Vec<Value>,
        stack: &mut Vec<Value>,
    ) -> Result<(), SimError> {
        match lv {
            CLValue::Whole(sig) => {
                state[sig.idx()] = value.resize(self.widths[sig.idx()]);
                Ok(())
            }
            CLValue::Bit { sig, index } => {
                let i = run(index, &StateEnv { state: snapshot }, stack)?.bits();
                let i = u32::try_from(i).unwrap_or(u32::MAX);
                let cur = snapshot[sig.idx()];
                state[sig.idx()] = cur.set_bit(i, value.is_truthy() && value.get_bit(0));
                Ok(())
            }
            CLValue::Part { sig, msb, lsb } => {
                let cur = snapshot[sig.idx()];
                state[sig.idx()] = cur.set_slice(*msb, *lsb, value);
                Ok(())
            }
            CLValue::Concat(parts) => {
                let total: u32 = parts
                    .iter()
                    .map(|p| self.lvalue_width(p))
                    .sum::<Result<u32, EvalError>>()?;
                let mut consumed = 0u32;
                for p in parts {
                    let w = self.lvalue_width(p)?;
                    let hi = total - consumed - 1;
                    let lo = total - consumed - w;
                    let field = value.resize(total.min(64)).slice(hi.min(63), lo.min(63));
                    self.write_concat_part(p, field, snapshot, state, stack)?;
                    consumed += w;
                }
                Ok(())
            }
            CLValue::Unknown(name) => Err(SimError::Eval(EvalError::UnknownSignal(name.clone()))),
        }
    }

    fn lvalue_width(&self, lv: &CLValue) -> Result<u32, EvalError> {
        match lv {
            CLValue::Whole(sig) => Ok(self.widths[sig.idx()]),
            CLValue::Bit { .. } => Ok(1),
            CLValue::Part { msb, lsb, .. } => Ok(msb - lsb + 1),
            CLValue::Concat(parts) => parts.iter().map(|p| self.lvalue_width(p)).sum(),
            CLValue::Unknown(name) => Err(EvalError::UnknownSignal(name.clone())),
        }
    }
}

/// Pending nonblocking update during a clock edge.
enum NbaUpdate<'a> {
    /// Whole-signal commit of a blocking-write diff.
    Whole(SigId, Value),
    /// Deferred `<=` write through a compiled lvalue.
    Lv(&'a CLValue, Value),
}

/// State environment over the flat value store.
struct StateEnv<'a> {
    state: &'a [Value],
}

impl ExecEnv for StateEnv<'_> {
    #[inline]
    fn load(&self, sig: SigId) -> Value {
        self.state[sig.idx()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_verilog::compile as velab;

    fn compiled(src: &str) -> CompiledDesign {
        CompiledDesign::compile(&velab(src).expect("compile"))
    }

    fn compiled_at(src: &str, opt: OptLevel) -> CompiledDesign {
        CompiledDesign::compile_opt(&velab(src).expect("compile"), opt)
    }

    #[test]
    fn interns_signals_in_sorted_order() {
        let c = compiled("module m(input b, input a, output y);\nassign y = a & b;\nendmodule");
        assert_eq!(c.names(), &["a", "b", "y"]);
        assert_eq!(c.sig("a"), Some(SigId(0)));
        assert_eq!(c.sig("y"), Some(SigId(2)));
        assert_eq!(c.sig("ghost"), None);
    }

    #[test]
    fn acyclic_designs_levelize() {
        let c = compiled(
            "module m(input a, output y);\nwire t;\nassign y = t;\nassign t = ~a;\nendmodule",
        );
        assert!(c.is_levelized());
        // `t`'s driver must be scheduled before `y`'s reader.
        assert_eq!(c.order, vec![1, 0]);
    }

    #[test]
    fn cyclic_designs_fall_back() {
        let c = compiled(
            "module osc(input a, output y);\nwire n;\nassign n = ~n | a;\nassign y = n;\nendmodule",
        );
        assert!(!c.is_levelized());
    }

    #[test]
    fn latch_style_blocks_fall_back() {
        let c = compiled(
            "module l(input en, input d, output reg q);\n\
             always @(*) begin if (en) q = d; end\nendmodule",
        );
        assert!(!c.is_levelized());
    }

    #[test]
    fn complete_mux_blocks_levelize() {
        let c = compiled(
            "module m(input [1:0] s, input [3:0] a, input [3:0] b, output reg [3:0] y);\n\
             always @(*) begin\n\
               case (s) 2'd0: y = a; 2'd1: y = b; default: y = 4'd0; endcase\n\
             end\nendmodule",
        );
        assert!(c.is_levelized());
    }

    #[test]
    fn dynamic_bit_writes_fall_back() {
        let c = compiled(
            "module d(input [1:0] i, input v, output [3:0] y);\n\
             assign y[i] = v;\nendmodule",
        );
        assert!(!c.is_levelized());
    }

    #[test]
    fn ternary_only_evaluates_taken_branch() {
        // Division by zero in the untaken branch must not error — at
        // either opt level.
        for opt in [OptLevel::None, OptLevel::Full] {
            let c = compiled_at(
                "module t(input s, input [3:0] a, input [3:0] b, output [3:0] y);\n\
                 assign y = s ? a / b : a;\nendmodule",
                opt,
            );
            let mut state = c.init_state();
            let mut stack = Vec::new();
            state[c.sig("s").unwrap().idx()] = Value::bit(false);
            state[c.sig("b").unwrap().idx()] = Value::zero(4);
            state[c.sig("a").unwrap().idx()] = Value::new(5, 4);
            c.settle(&mut state, &mut stack).expect("no div-by-zero");
            assert_eq!(state[c.sig("y").unwrap().idx()].bits(), 5);
            state[c.sig("s").unwrap().idx()] = Value::bit(true);
            assert_eq!(
                c.settle(&mut state, &mut stack),
                Err(SimError::Eval(EvalError::DivideByZero)),
                "at {opt}"
            );
        }
    }

    #[test]
    fn params_fold_to_32_bit_constants() {
        let c = compiled(
            "module p #(parameter W = 5)(input [7:0] a, output [7:0] y);\n\
             assign y = a + W;\nendmodule",
        );
        let mut state = c.init_state();
        let mut stack = Vec::new();
        state[c.sig("a").unwrap().idx()] = Value::new(2, 8);
        c.settle(&mut state, &mut stack).expect("settle");
        assert_eq!(state[c.sig("y").unwrap().idx()].bits(), 7);
        assert_eq!(param_value(5).width(), 32);
        assert_eq!(param_value(u64::MAX).width(), 64);
    }

    #[test]
    fn optimization_shortens_bytecode_without_changing_results() {
        let src = "module m #(parameter W = 2)(input [7:0] a, input [7:0] b, output [7:0] x,\n\
             output [7:0] y);\n\
             wire [7:0] t;\n\
             assign t = a;\n\
             assign x = (t ^ b) & (t ^ b);\n\
             assign y = (a * 8'd4) + (W * 8'd3 + 8'd0);\nendmodule";
        let none = compiled_at(src, OptLevel::None);
        let full = compiled_at(src, OptLevel::Full);
        assert_eq!(none.opt_level(), OptLevel::None);
        assert_eq!(full.opt_level(), OptLevel::Full);
        assert!(
            full.bytecode_len() < none.bytecode_len(),
            "opt: {} vs raw: {}",
            full.bytecode_len(),
            none.bytecode_len()
        );
        assert_eq!(none.branch_sites(), full.branch_sites());
        assert_eq!(none.dict_consts(), full.dict_consts());
        for (av, bv) in [(3u64, 5u64), (0, 255), (170, 85)] {
            let mut sn = none.init_state();
            let mut sf = full.init_state();
            let mut stack = Vec::new();
            for c in [&none, &full] {
                let s = if std::ptr::eq(c, &none) {
                    &mut sn
                } else {
                    &mut sf
                };
                s[c.sig("a").unwrap().idx()] = Value::new(av, 8);
                s[c.sig("b").unwrap().idx()] = Value::new(bv, 8);
                c.settle(s, &mut stack).expect("settle");
            }
            assert_eq!(sn, sf, "state diverged for a={av} b={bv}");
        }
    }

    #[test]
    fn sym_live_masks_keep_the_assertion_cone() {
        let src = "module m(input clk, input [3:0] a, output reg [3:0] q, output [3:0] dead);\n\
             wire [3:0] t;\n\
             assign t = a + 4'd1;\n\
             assign dead = a ^ 4'hF;\n\
             always @(posedge clk) q <= t;\nendmodule";
        let c = compiled(src);
        let roots = [c.sig("q").unwrap()];
        let (comb_live, seq_live) = c.sym_live(&roots);
        assert_eq!(comb_live, vec![true, false], "dead cone must drop");
        assert_eq!(seq_live, vec![true]);
        // With `dead` as a root everything is live.
        let (all, _) = c.sym_live(&[c.sig("q").unwrap(), c.sig("dead").unwrap()]);
        assert_eq!(all, vec![true, true]);
    }

    #[test]
    fn sym_live_keeps_unclean_steps_alive() {
        // The division can't bit-blast: the step must stay live even
        // though nothing observes it, so the symbolic engine rejects the
        // design identically at every opt level.
        let src = "module m(input clk, input [3:0] a, input [3:0] b, output reg [3:0] q,\n\
             output [3:0] dead);\n\
             assign dead = a / b;\n\
             always @(posedge clk) q <= a;\nendmodule";
        let c = compiled(src);
        let (comb_live, _) = c.sym_live(&[c.sig("q").unwrap()]);
        assert_eq!(comb_live, vec![true], "unclean step is pinned live");
    }

    #[test]
    fn levelization_verdict_is_opt_invariant() {
        // `n & 1'b0` folds the self-cycle away at Full, but the design
        // must stay on the fixpoint discipline (and outside the symbolic
        // subset) at both levels.
        let src = "module m(input a, output y);\nwire n;\n\
             assign n = (n & 1'b0) | a;\nassign y = n;\nendmodule";
        let none = compiled_at(src, OptLevel::None);
        let full = compiled_at(src, OptLevel::Full);
        assert!(!none.is_levelized());
        assert!(
            !full.is_levelized(),
            "verdict must come from the raw structure"
        );
    }
}
