//! IR → bytecode emission.
//!
//! [`emit_design`] lowers an [`IrDesign`] (optimized or raw) into the
//! executable [`CombStep`]/[`CStmt`]/[`ExprProg`] form. Raw emission is
//! byte-identical to the historical direct AST lowering — the
//! `OptLevel::None` reference form — while optimized emission adds two
//! purely-mechanical program transforms:
//!
//! * **CSE materialisation** — the IR is a hash-consed DAG, so a shared
//!   subexpression is one node used twice. A node whose every use in a
//!   program sits at an *unconditional* position (never inside a ternary
//!   arm) is evaluated at its first textual use, copied to an
//!   expression-local temporary slot, and replayed from the slot at later
//!   uses. First-use ordering is what makes this error-exact: a failing
//!   shared node raises at exactly the point the tree-expanded program
//!   would have raised.
//! * **Superinstruction fusion** — the windows `[Load, Load, Binary]`,
//!   `[Load, Const, Binary]` and `[…, Const, Binary]` collapse into one
//!   fused op each, cutting dispatch and stack traffic on the settle hot
//!   path. Jump targets are relocated; windows spanning a jump target are
//!   never fused.

use super::{CCaseArm, CLValue, CStmt, CombStep};
use crate::compile::bytecode::{ExprProg, Op};
use asv_ir::ir::{IrCaseArm, IrCombStep, IrDesign, IrExpr, IrLValue, IrStmt, NodeId};
use std::collections::HashMap;

/// Which program transforms emission applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmitMode {
    /// Plain tree expansion — byte-identical to the pre-IR lowering.
    Raw,
    /// CSE temporaries + superinstruction fusion.
    Optimized,
}

/// The emitted executable design body.
pub struct EmittedDesign {
    /// Combinational steps in declaration order.
    pub comb: Vec<CombStep>,
    /// Clocked always bodies in declaration order.
    pub seq: Vec<CStmt>,
}

/// Emits every program of the design in the given mode.
pub fn emit_design(ir: &IrDesign, mode: EmitMode) -> EmittedDesign {
    let mut e = Emitter { ir, mode };
    let comb = ir
        .comb
        .iter()
        .map(|step| match step {
            IrCombStep::Assign { lhs, rhs } => CombStep::Assign {
                lhs: e.lvalue(lhs),
                rhs: e.program(*rhs),
            },
            IrCombStep::Block(body) => CombStep::Block(e.stmt(body)),
        })
        .collect();
    let seq = ir.seq.iter().map(|b| e.stmt(b)).collect();
    EmittedDesign { comb, seq }
}

/// Total `Op` count across a set of programs — the "bytecode length"
/// metric reported by `table_engines` and the README.
pub fn bytecode_len(comb: &[CombStep], seq: &[CStmt]) -> usize {
    fn prog_len(p: &ExprProg) -> usize {
        p.ops.len() + p.subs.iter().map(prog_len).sum::<usize>()
    }
    fn lv_len(lv: &CLValue) -> usize {
        match lv {
            CLValue::Bit { index, .. } => prog_len(index),
            CLValue::Concat(parts) => parts.iter().map(lv_len).sum(),
            _ => 0,
        }
    }
    fn stmt_len(s: &CStmt) -> usize {
        match s {
            CStmt::Block(stmts) => stmts.iter().map(stmt_len).sum(),
            CStmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                prog_len(cond)
                    + stmt_len(then_branch)
                    + else_branch.as_ref().map_or(0, |e| stmt_len(e))
            }
            CStmt::Case {
                scrutinee,
                arms,
                default,
                ..
            } => {
                prog_len(scrutinee)
                    + arms
                        .iter()
                        .map(|a| a.labels.iter().map(prog_len).sum::<usize>() + stmt_len(&a.body))
                        .sum::<usize>()
                    + default.as_ref().map_or(0, |d| stmt_len(d))
            }
            CStmt::Assign { lhs, rhs, .. } => lv_len(lhs) + prog_len(rhs),
            CStmt::Empty => 0,
        }
    }
    comb.iter()
        .map(|s| match s {
            CombStep::Assign { lhs, rhs } => lv_len(lhs) + prog_len(rhs),
            CombStep::Block(b) => stmt_len(b),
        })
        .sum::<usize>()
        + seq.iter().map(stmt_len).sum::<usize>()
}

/// Every constant value appearing in a set of emitted programs — the
/// fuzzer's dictionary source. Harvested from the *raw* emission so the
/// dictionary (and therefore every fuzzing campaign) is identical at all
/// opt levels.
pub fn harvest_consts(comb: &[CombStep], seq: &[CStmt]) -> Vec<u64> {
    fn prog(p: &ExprProg, out: &mut Vec<u64>) {
        for op in &p.ops {
            match op {
                Op::Const(v) => out.push(v.bits()),
                Op::BinConst { rhs, .. } | Op::LoadBinConst { rhs, .. } => out.push(rhs.bits()),
                _ => {}
            }
        }
        for sub in &p.subs {
            prog(sub, out);
        }
    }
    fn lv(l: &CLValue, out: &mut Vec<u64>) {
        match l {
            CLValue::Bit { index, .. } => prog(index, out),
            CLValue::Concat(parts) => parts.iter().for_each(|p| lv(p, out)),
            _ => {}
        }
    }
    fn stmt(s: &CStmt, out: &mut Vec<u64>) {
        match s {
            CStmt::Block(stmts) => stmts.iter().for_each(|st| stmt(st, out)),
            CStmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                prog(cond, out);
                stmt(then_branch, out);
                if let Some(e) = else_branch {
                    stmt(e, out);
                }
            }
            CStmt::Case {
                scrutinee,
                arms,
                default,
                ..
            } => {
                prog(scrutinee, out);
                for a in arms {
                    a.labels.iter().for_each(|l| prog(l, out));
                    stmt(&a.body, out);
                }
                if let Some(d) = default {
                    stmt(d, out);
                }
            }
            CStmt::Assign { lhs, rhs, .. } => {
                lv(lhs, out);
                prog(rhs, out);
            }
            CStmt::Empty => {}
        }
    }
    let mut out = Vec::new();
    for s in comb {
        match s {
            CombStep::Assign { lhs, rhs } => {
                lv(lhs, &mut out);
                prog(rhs, &mut out);
            }
            CombStep::Block(b) => stmt(b, &mut out),
        }
    }
    for b in seq {
        stmt(b, &mut out);
    }
    out.sort_unstable();
    out.dedup();
    out
}

struct Emitter<'a> {
    ir: &'a IrDesign,
    mode: EmitMode,
}

impl Emitter<'_> {
    fn lvalue(&mut self, lv: &IrLValue) -> CLValue {
        match lv {
            IrLValue::Whole(sig) => CLValue::Whole(*sig),
            IrLValue::Bit { sig, index } => CLValue::Bit {
                sig: *sig,
                index: self.program(*index),
            },
            IrLValue::Part { sig, msb, lsb } => CLValue::Part {
                sig: *sig,
                msb: *msb,
                lsb: *lsb,
            },
            IrLValue::Concat(parts) => {
                CLValue::Concat(parts.iter().map(|p| self.lvalue(p)).collect())
            }
            IrLValue::Unknown(name) => CLValue::Unknown(name.clone()),
        }
    }

    fn stmt(&mut self, s: &IrStmt) -> CStmt {
        match s {
            IrStmt::Block(stmts) => CStmt::Block(stmts.iter().map(|st| self.stmt(st)).collect()),
            IrStmt::If {
                cond,
                then_branch,
                else_branch,
                site,
            } => CStmt::If {
                cond: self.program(*cond),
                then_branch: Box::new(self.stmt(then_branch)),
                else_branch: else_branch.as_ref().map(|e| Box::new(self.stmt(e))),
                site: *site,
            },
            IrStmt::Case {
                scrutinee,
                arms,
                default,
                site,
            } => CStmt::Case {
                scrutinee: self.program(*scrutinee),
                arms: arms
                    .iter()
                    .map(|IrCaseArm { labels, body }| CCaseArm {
                        labels: labels.iter().map(|l| self.program(*l)).collect(),
                        body: self.stmt(body),
                    })
                    .collect(),
                default: default.as_ref().map(|d| Box::new(self.stmt(d))),
                site: *site,
            },
            IrStmt::Assign {
                lhs,
                rhs,
                nonblocking,
            } => CStmt::Assign {
                lhs: self.lvalue(lhs),
                rhs: self.program(*rhs),
                nonblocking: *nonblocking,
            },
            IrStmt::Empty => CStmt::Empty,
        }
    }

    /// Emits one root expression as a self-contained program.
    fn program(&mut self, root: NodeId) -> ExprProg {
        let mut prog = ExprProg::default();
        match self.mode {
            EmitMode::Raw => {
                emit_node(self.ir, root, &mut prog);
            }
            EmitMode::Optimized => {
                let shared = shared_unconditional(self.ir, root);
                let mut cse = CseState {
                    slot_of: shared,
                    stored: HashMap::new(),
                };
                emit_node_cse(self.ir, root, &mut prog, &mut cse);
                prog.n_tmps = cse.slot_of.len() as u32;
                fuse(&mut prog);
            }
        }
        prog
    }
}

// ---------------------------------------------------------------------------
// Plain tree-expansion emission (the OptLevel::None reference form)
// ---------------------------------------------------------------------------

fn emit_node(ir: &IrDesign, id: NodeId, prog: &mut ExprProg) {
    match ir.arena.node(id) {
        IrExpr::Const(v) => prog.ops.push(Op::Const(*v)),
        IrExpr::Load(sig) => prog.ops.push(Op::Load(*sig)),
        IrExpr::Fail(e) => prog.ops.push(Op::Fail(e.clone())),
        IrExpr::Unary(op, a) => {
            emit_node(ir, *a, prog);
            prog.ops.push(Op::Unary(*op));
        }
        IrExpr::Binary(op, a, b) => {
            emit_node(ir, *a, prog);
            emit_node(ir, *b, prog);
            prog.ops.push(Op::Binary(*op));
        }
        IrExpr::Select {
            cond,
            then_n,
            else_n,
        } => {
            emit_node(ir, *cond, prog);
            let jif = prog.ops.len();
            prog.ops.push(Op::JumpIfFalse(0));
            emit_node(ir, *then_n, prog);
            let jend = prog.ops.len();
            prog.ops.push(Op::Jump(0));
            let else_start = prog.ops.len() as u32;
            emit_node(ir, *else_n, prog);
            let end = prog.ops.len() as u32;
            prog.ops[jif] = Op::JumpIfFalse(else_start);
            prog.ops[jend] = Op::Jump(end);
        }
        IrExpr::Concat(parts) => {
            for p in parts {
                emit_node(ir, *p, prog);
            }
            prog.ops
                .push(Op::ConcatN(u16::try_from(parts.len()).unwrap_or(u16::MAX)));
        }
        IrExpr::Repeat { count, value } => {
            emit_node(ir, *count, prog);
            prog.ops.push(Op::RepeatGuard);
            emit_node(ir, *value, prog);
            prog.ops.push(Op::Repeat);
        }
        IrExpr::BitIndex { base, index } => {
            emit_node(ir, *base, prog);
            emit_node(ir, *index, prog);
            prog.ops.push(Op::BitIndex);
        }
        IrExpr::Slice { base, msb, lsb } => {
            emit_node(ir, *base, prog);
            prog.ops.push(Op::Slice(*msb, *lsb));
        }
        IrExpr::SysCall { name, args } => {
            for a in args {
                emit_node(ir, *a, prog);
            }
            prog.ops.push(Op::SysCall {
                name: name.as_str().into(),
                argc: u8::try_from(args.len()).unwrap_or(u8::MAX),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// CSE-materialising emission (OptLevel::Full)
// ---------------------------------------------------------------------------

/// Finds compound nodes used ≥ 2 times under plain tree expansion of
/// `root`, with every use at an unconditional position, and assigns each
/// a temporary slot (in first-use order, so slot ids are deterministic).
fn shared_unconditional(ir: &IrDesign, root: NodeId) -> HashMap<NodeId, u32> {
    #[derive(Default)]
    struct Scan {
        count: HashMap<NodeId, usize>,
        conditional: HashMap<NodeId, bool>,
        first_use: Vec<NodeId>,
    }
    fn walk(ir: &IrDesign, id: NodeId, in_branch: bool, s: &mut Scan) {
        let c = s.count.entry(id).or_insert(0);
        *c += 1;
        if *c == 1 {
            s.first_use.push(id);
        }
        *s.conditional.entry(id).or_insert(false) |= in_branch;
        match ir.arena.node(id) {
            IrExpr::Const(_) | IrExpr::Load(_) | IrExpr::Fail(_) => {}
            IrExpr::Unary(_, a) | IrExpr::Slice { base: a, .. } => walk(ir, *a, in_branch, s),
            IrExpr::Binary(_, a, b)
            | IrExpr::Repeat { count: a, value: b }
            | IrExpr::BitIndex { base: a, index: b } => {
                walk(ir, *a, in_branch, s);
                walk(ir, *b, in_branch, s);
            }
            IrExpr::Select {
                cond,
                then_n,
                else_n,
            } => {
                walk(ir, *cond, in_branch, s);
                walk(ir, *then_n, true, s);
                walk(ir, *else_n, true, s);
            }
            IrExpr::Concat(parts) => {
                for p in parts {
                    walk(ir, *p, in_branch, s);
                }
            }
            IrExpr::SysCall { args, .. } => {
                for a in args {
                    walk(ir, *a, in_branch, s);
                }
            }
        }
    }
    let mut s = Scan::default();
    walk(ir, root, false, &mut s);
    let mut slots = HashMap::new();
    for id in &s.first_use {
        let compound = !matches!(
            ir.arena.node(*id),
            IrExpr::Const(_) | IrExpr::Load(_) | IrExpr::Fail(_)
        );
        if compound && s.count[id] >= 2 && !s.conditional[id] {
            let slot = slots.len() as u32;
            slots.insert(*id, slot);
        }
    }
    slots
}

struct CseState {
    /// Slot assignment for cacheable shared nodes.
    slot_of: HashMap<NodeId, u32>,
    /// Slots already populated during this emission.
    stored: HashMap<NodeId, u32>,
}

fn emit_node_cse(ir: &IrDesign, id: NodeId, prog: &mut ExprProg, cse: &mut CseState) {
    if let Some(&slot) = cse.slot_of.get(&id) {
        if let Some(&s) = cse.stored.get(&id) {
            prog.ops.push(Op::LoadTmp(s));
            return;
        }
        emit_node_cse_inner(ir, id, prog, cse);
        prog.ops.push(Op::StoreTmp(slot));
        cse.stored.insert(id, slot);
        return;
    }
    emit_node_cse_inner(ir, id, prog, cse);
}

fn emit_node_cse_inner(ir: &IrDesign, id: NodeId, prog: &mut ExprProg, cse: &mut CseState) {
    match ir.arena.node(id) {
        IrExpr::Const(v) => prog.ops.push(Op::Const(*v)),
        IrExpr::Load(sig) => prog.ops.push(Op::Load(*sig)),
        IrExpr::Fail(e) => prog.ops.push(Op::Fail(e.clone())),
        IrExpr::Unary(op, a) => {
            emit_node_cse(ir, *a, prog, cse);
            prog.ops.push(Op::Unary(*op));
        }
        IrExpr::Binary(op, a, b) => {
            emit_node_cse(ir, *a, prog, cse);
            emit_node_cse(ir, *b, prog, cse);
            prog.ops.push(Op::Binary(*op));
        }
        IrExpr::Select {
            cond,
            then_n,
            else_n,
        } => {
            emit_node_cse(ir, *cond, prog, cse);
            let jif = prog.ops.len();
            prog.ops.push(Op::JumpIfFalse(0));
            emit_node_cse(ir, *then_n, prog, cse);
            let jend = prog.ops.len();
            prog.ops.push(Op::Jump(0));
            let else_start = prog.ops.len() as u32;
            emit_node_cse(ir, *else_n, prog, cse);
            let end = prog.ops.len() as u32;
            prog.ops[jif] = Op::JumpIfFalse(else_start);
            prog.ops[jend] = Op::Jump(end);
        }
        IrExpr::Concat(parts) => {
            for p in parts {
                emit_node_cse(ir, *p, prog, cse);
            }
            prog.ops
                .push(Op::ConcatN(u16::try_from(parts.len()).unwrap_or(u16::MAX)));
        }
        IrExpr::Repeat { count, value } => {
            emit_node_cse(ir, *count, prog, cse);
            prog.ops.push(Op::RepeatGuard);
            emit_node_cse(ir, *value, prog, cse);
            prog.ops.push(Op::Repeat);
        }
        IrExpr::BitIndex { base, index } => {
            emit_node_cse(ir, *base, prog, cse);
            emit_node_cse(ir, *index, prog, cse);
            prog.ops.push(Op::BitIndex);
        }
        IrExpr::Slice { base, msb, lsb } => {
            emit_node_cse(ir, *base, prog, cse);
            prog.ops.push(Op::Slice(*msb, *lsb));
        }
        IrExpr::SysCall { name, args } => {
            for a in args {
                emit_node_cse(ir, *a, prog, cse);
            }
            prog.ops.push(Op::SysCall {
                name: name.as_str().into(),
                argc: u8::try_from(args.len()).unwrap_or(u8::MAX),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Superinstruction fusion
// ---------------------------------------------------------------------------

/// Fuses dispatch-heavy windows into single ops, relocating jump targets.
/// Purely mechanical: each fused op computes exactly what its window
/// computed, including error behaviour and evaluation order.
fn fuse(prog: &mut ExprProg) {
    for sub in &mut prog.subs {
        fuse(sub);
    }
    let old = std::mem::take(&mut prog.ops);
    // An op index is a fusion *barrier* when some jump lands on it: a
    // fused window must not swallow a landing site.
    let mut is_target = vec![false; old.len() + 1];
    for op in &old {
        match op {
            Op::Jump(t) | Op::JumpIfFalse(t) => is_target[*t as usize] = true,
            _ => {}
        }
    }
    let mut map = vec![0u32; old.len() + 1];
    let mut new: Vec<Op> = Vec::with_capacity(old.len());
    let mut i = 0usize;
    while i < old.len() {
        map[i] = new.len() as u32;
        let w3 = (!is_target[i + 1] && i + 2 < old.len() && !is_target[i + 2])
            .then(|| (&old[i], &old[i + 1], &old[i + 2]));
        if let Some((Op::Load(a), Op::Load(b), Op::Binary(op))) = w3 {
            new.push(Op::LoadBin {
                op: *op,
                a: *a,
                b: *b,
            });
            map[i + 1] = new.len() as u32 - 1;
            map[i + 2] = new.len() as u32 - 1;
            i += 3;
            continue;
        }
        if let Some((Op::Load(sig), Op::Const(c), Op::Binary(op))) = w3 {
            new.push(Op::LoadBinConst {
                op: *op,
                sig: *sig,
                rhs: *c,
            });
            map[i + 1] = new.len() as u32 - 1;
            map[i + 2] = new.len() as u32 - 1;
            i += 3;
            continue;
        }
        if i + 1 < old.len() && !is_target[i + 1] {
            if let (Op::Const(c), Op::Binary(op)) = (&old[i], &old[i + 1]) {
                new.push(Op::BinConst { op: *op, rhs: *c });
                map[i + 1] = new.len() as u32 - 1;
                i += 2;
                continue;
            }
            if let (Op::Load(sig), Op::Unary(op)) = (&old[i], &old[i + 1]) {
                new.push(Op::LoadUnary { op: *op, sig: *sig });
                map[i + 1] = new.len() as u32 - 1;
                i += 2;
                continue;
            }
        }
        new.push(old[i].clone());
        i += 1;
    }
    map[old.len()] = new.len() as u32;
    for op in &mut new {
        match op {
            Op::Jump(t) | Op::JumpIfFalse(t) => *t = map[*t as usize],
            _ => {}
        }
    }
    prog.ops = new;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::bytecode::{run, ExecEnv};
    use crate::value::Value;
    use asv_ir::SigId;
    use asv_verilog::compile as velab;

    struct CountingEnv;
    impl ExecEnv for CountingEnv {
        fn load(&self, sig: SigId) -> Value {
            Value::new(u64::from(sig.0) + 1, 8)
        }
    }

    fn programs(src: &str, mode: EmitMode) -> Vec<ExprProg> {
        let ir = IrDesign::from_design(&velab(src).expect("compile"));
        let emitted = emit_design(&ir, mode);
        emitted
            .comb
            .iter()
            .filter_map(|s| match s {
                CombStep::Assign { rhs, .. } => Some(rhs.clone()),
                CombStep::Block(_) => None,
            })
            .collect()
    }

    #[test]
    fn raw_emission_matches_the_legacy_shape() {
        let progs = programs(
            "module m #(parameter W = 5)(input s, input [7:0] a, output [7:0] y);\n\
             assign y = s ? a + W : a;\nendmodule",
            EmitMode::Raw,
        );
        // Exactly the historical stream: Load s, JumpIfFalse, Load a,
        // Const 5, Binary Add, Jump, Load a.
        let ops = &progs[0].ops;
        assert!(matches!(ops[0], Op::Load(_)));
        assert!(matches!(ops[1], Op::JumpIfFalse(6)));
        assert!(matches!(ops[2], Op::Load(_)));
        assert!(matches!(ops[3], Op::Const(v) if v == Value::new(5, 32)));
        assert!(matches!(
            ops[4],
            Op::Binary(asv_verilog::ast::BinaryOp::Add)
        ));
        assert!(matches!(ops[5], Op::Jump(7)));
        assert!(matches!(ops[6], Op::Load(_)));
        assert_eq!(progs[0].n_tmps, 0);
    }

    #[test]
    fn optimized_emission_fuses_windows_and_relocates_jumps() {
        let progs = programs(
            "module m(input s, input [7:0] a, input [7:0] b, output [7:0] y);\n\
             assign y = s ? a + b : a + 8'd1;\nendmodule",
            EmitMode::Optimized,
        );
        let ops = &progs[0].ops;
        // Load s, JumpIfFalse(else), LoadBin(a+b), Jump(end), LoadBinConst(a+1)
        assert!(matches!(ops[2], Op::LoadBin { .. }), "ops: {ops:?}");
        assert!(matches!(ops[4], Op::LoadBinConst { .. }), "ops: {ops:?}");
        let Op::JumpIfFalse(else_t) = ops[1] else {
            panic!("jump expected");
        };
        assert_eq!(else_t, 4, "relocated else target");
        // Equivalence against raw emission under a concrete env.
        let raws = programs(
            "module m(input s, input [7:0] a, input [7:0] b, output [7:0] y);\n\
             assign y = s ? a + b : a + 8'd1;\nendmodule",
            EmitMode::Raw,
        );
        let mut stack = Vec::new();
        assert_eq!(
            run(&progs[0], &CountingEnv, &mut stack),
            run(&raws[0], &CountingEnv, &mut stack)
        );
    }

    #[test]
    fn shared_subexpressions_get_tmp_slots() {
        let src = "module m(input [7:0] a, input [7:0] b, output [7:0] y);\n\
             assign y = ((a ^ b) + 8'd1) & ((a ^ b) + 8'd1);\nendmodule";
        let opt = programs(src, EmitMode::Optimized);
        assert!(opt[0].n_tmps >= 1, "shared (a^b)+1 must be materialised");
        assert!(
            opt[0].ops.iter().any(|o| matches!(o, Op::LoadTmp(_))),
            "second use replays from the slot: {:?}",
            opt[0].ops
        );
        let raw = programs(src, EmitMode::Raw);
        assert!(opt[0].ops.len() < raw[0].ops.len());
        let mut stack = Vec::new();
        assert_eq!(
            run(&opt[0], &CountingEnv, &mut stack),
            run(&raw[0], &CountingEnv, &mut stack)
        );
    }

    #[test]
    fn nodes_under_branches_are_not_cached() {
        // `a + b` appears once unconditionally and once inside a ternary
        // arm: caching would change which uses evaluate, so it must not
        // get a slot.
        let progs = programs(
            "module m(input s, input [7:0] a, input [7:0] b, output [7:0] y);\n\
             assign y = (s ? (a + b) : 8'd0) ^ (a + b);\nendmodule",
            EmitMode::Optimized,
        );
        assert_eq!(progs[0].n_tmps, 0, "{:?}", progs[0].ops);
    }

    #[test]
    fn harvested_constants_are_mode_invariant() {
        let src = "module m(input [7:0] a, output [7:0] y, output z);\n\
             assign y = (a & 8'hF0) | 8'h0A;\nassign z = a == 8'hA5;\nendmodule";
        let ir = IrDesign::from_design(&velab(src).expect("compile"));
        let raw = emit_design(&ir, EmitMode::Raw);
        let opt = emit_design(&ir, EmitMode::Optimized);
        assert_eq!(
            harvest_consts(&raw.comb, &raw.seq),
            harvest_consts(&opt.comb, &opt.seq)
        );
        assert!(harvest_consts(&raw.comb, &raw.seq).contains(&0xA5));
    }
}
