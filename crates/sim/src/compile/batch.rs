//! Lane-batched (structure-of-arrays) execution: run `K` independent
//! simulation states through every bytecode op in one pass.
//!
//! The scalar executor pays the stack machine's dispatch/decode cost per
//! stimulus. [`LaneBatch`] amortises it: the value store holds `K` lanes
//! per signal (`state[sig * K + lane]`, lane-minor so one op touches one
//! contiguous block), the operand stack holds slots of `K` values, and
//! each op applies the *exact* scalar semantics from [`crate::eval`] to
//! every active lane in a tight constant-operator loop the optimizer can
//! autovectorize.
//!
//! ## Masking and divergence rules (bit-identity contract)
//!
//! Lanes are tracked by two `u64` masks:
//!
//! - **`alive`** — lanes that have not raised a [`SimError`]. A lane's
//!   first error is recorded and the lane is masked out of *all*
//!   subsequent evaluation, exactly like the scalar machine aborting that
//!   stimulus (first-use error order is preserved because a masked-out
//!   lane can never evaluate — and therefore never error — again).
//! - **`exec`** — lanes executing the current straight-line region.
//!   Ternaries compile to `JumpIfFalse`/`Jump`; when lanes disagree on
//!   the condition the executor pushes a divergence frame, runs the THEN
//!   region with the truthy lanes, re-runs the ELSE region with the
//!   falsy lanes, and merges per-lane results at the join. Lazy-error
//!   semantics hold: a lane only evaluates (and can only fault on) the
//!   ops of its own path, so `1/0` in an untaken branch stays silent.
//!
//! Data-dependent-cost ops (`Repeat`, `SysCall`, lvalue concat writes)
//! and error sources are always lane-masked; errorless constant-cost ops
//! (unary/binary arithmetic, slices, concats) may compute garbage in
//! inactive lanes — any [`Value`] is a valid operand, and inactive
//! results are never observed.
//!
//! Statement execution (`if`/`case`) re-applies the same discipline at
//! statement granularity, charging coverage probes and op counts per
//! lane so instrumented results are bit-identical to `K` scalar runs.
//! When a target lane count is not one of the supported widths,
//! [`run_stimulus_group`] falls back to the scalar [`Simulator`] —
//! semantics never depend on which executor ran.

use super::bytecode::{run, ExecEnv, ExprProg, Op};
use super::{CLValue, CStmt, CombStep, CompiledDesign, SigId, StateEnv, MAX_SETTLE_ITERS};
use crate::cover::{CovMap, CovSink};
use crate::eval::EvalError;
use crate::exec::{SimError, Simulator};
use crate::stimulus::Stimulus;
use crate::trace::Trace;
use crate::value::Value;
use asv_verilog::ast::{BinaryOp, UnaryOp};
use std::sync::Arc;

/// Lane counts the batched executor is instantiated at; any other group
/// size handed to [`run_stimulus_group`] drains through the scalar
/// executor instead.
pub const LANE_WIDTHS: [usize; 3] = [8, 16, 32];

/// Mask with the low `K` lane bits set.
#[inline(always)]
fn full<const K: usize>() -> u64 {
    if K >= 64 {
        u64::MAX
    } else {
        (1u64 << K) - 1
    }
}

#[inline(always)]
fn lane_bit(l: usize) -> u64 {
    1u64 << l
}

/// Calls `f` for every set lane in `mask`, with a dense fast path when
/// all `K` lanes are active.
#[inline(always)]
fn for_lanes<const K: usize>(mask: u64, mut f: impl FnMut(usize)) {
    if mask == full::<K>() {
        for l in 0..K {
            f(l);
        }
    } else {
        let mut m = mask;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            f(l);
        }
    }
}

/// Records a lane's first error and masks it out of execution.
#[cold]
fn kill(errors: &mut [Option<SimError>], alive: &mut u64, exec: &mut u64, l: usize, e: SimError) {
    if errors[l].is_none() {
        errors[l] = Some(e);
    }
    *alive &= !lane_bit(l);
    *exec &= !lane_bit(l);
}

/// One open ternary divergence region during expression evaluation.
///
/// Pushed at a `JumpIfFalse` whose condition splits the active lanes.
/// The THEN region then runs with the truthy lanes; its closing `Jump`
/// (recognised by sitting immediately before the frame's else target,
/// where the structured emitter always places it) records the THEN
/// result slot, reveals the join point, and switches execution to the
/// falsy lanes. When the program counter reaches the join, the THEN
/// lanes' results are merged back into the top slot.
struct Frame<const K: usize> {
    /// First op of the ELSE region (the `JumpIfFalse` target).
    else_start: u32,
    /// Join point; `u32::MAX` until the THEN-exit `Jump` reveals it.
    end: u32,
    /// `exec` at the divergence point.
    save: u64,
    /// Lanes that took the THEN region.
    then_mask: u64,
    /// Their results, captured at the THEN exit.
    then_vals: [Value; K],
}

/// Per-block blocking-write journal for the clock edge: the first write
/// to a signal inside a clocked block records its pre-block lane values,
/// so the edge commit can diff and restore exactly the touched signals
/// instead of cloning and scanning the whole state per block.
#[derive(Debug)]
struct EdgeLog<const K: usize> {
    /// Journaling enabled (only while a clocked block executes).
    on: bool,
    /// Current block generation (`touched` entries from other
    /// generations are stale).
    gen: u64,
    /// Per-signal generation stamp of the last journal entry.
    touched: Vec<u64>,
    /// `(signal, pre-block lane values)`, in first-write order.
    entries: Vec<(SigId, [Value; K])>,
}

/// Journals `sig`'s pre-write lane values if the edge log is on and the
/// signal has not been written yet in this block.
#[inline]
fn log_write<const K: usize>(ctx: &mut Ctx<'_, K>, sig: SigId) {
    let i = sig.idx();
    if ctx.edge_log.touched[i] != ctx.edge_log.gen {
        ctx.edge_log.touched[i] = ctx.edge_log.gen;
        let b = i * K;
        let mut old = [Value::zero(1); K];
        old.copy_from_slice(&ctx.state[b..b + K]);
        ctx.edge_log.entries.push((sig, old));
    }
}

/// Journals every signal `lv` can write (concats recurse into parts).
fn log_lvalue<const K: usize>(ctx: &mut Ctx<'_, K>, lv: &CLValue) {
    match lv {
        CLValue::Whole(sig) | CLValue::Bit { sig, .. } | CLValue::Part { sig, .. } => {
            log_write(ctx, *sig);
        }
        CLValue::Concat(parts) => {
            for p in parts {
                log_lvalue(ctx, p);
            }
        }
        CLValue::Unknown(_) => {}
    }
}

/// The mutable lane-state threaded through the batched executor:
/// disjoint borrows of a [`LaneBatch`]'s buffers, so `CompiledDesign`
/// methods can hold bytecode borrows (`&'a CLValue` pending writes)
/// without aliasing the batch.
struct Ctx<'a, const K: usize> {
    /// SoA value store: `state[sig * K + lane]`.
    state: &'a mut Vec<Value>,
    /// Operand stack in slots of `K` values.
    stack: &'a mut Vec<Value>,
    /// Divergence frames (cleared per program).
    frames: &'a mut Vec<Frame<K>>,
    /// Lanes that have not errored.
    alive: &'a mut u64,
    /// First error per lane.
    errors: &'a mut [Option<SimError>],
    /// Scalar scratch stack for the per-lane fallback paths.
    scalar_stack: &'a mut Vec<Value>,
    /// Per-lane extracted state column (concat-lvalue fallback).
    lane_state: &'a mut Vec<Value>,
    /// Pre-write snapshot of the same (concat-lvalue semantics).
    lane_snapshot: &'a mut Vec<Value>,
    /// Clock-edge blocking-write journal.
    edge_log: &'a mut EdgeLog<K>,
}

/// Per-lane instrumentation: the batched analogue of
/// [`CovSink`] — branch probes and op tallies carry the lane index, and
/// preponed row samples are routed to the lane's coverage map. Four
/// monomorphised implementations mirror the scalar executor's four-way
/// dispatch, so the uninstrumented path compiles to nothing.
trait LaneSink {
    /// Whether [`row`](LaneSink::row) observes sample rows. When false
    /// (the uninstrumented paths) the tick loop skips the per-lane row
    /// transpose entirely and only appends to the batch's flat sample
    /// log.
    const NEEDS_ROWS: bool = false;
    /// A branch site was taken by `lane`.
    fn branch(&mut self, lane: usize, site: u32);
    /// `n` bytecode ops were dispatched for every lane in `mask`.
    fn ops(&mut self, mask: u64, n: u64);
    /// The preponed sample row of `lane` (coverage toggle axis).
    fn row(&mut self, lane: usize, row: &[Value]);
}

/// No instrumentation (the default hot path).
struct NoLaneSink;

impl LaneSink for NoLaneSink {
    #[inline(always)]
    fn branch(&mut self, _lane: usize, _site: u32) {}
    #[inline(always)]
    fn ops(&mut self, _mask: u64, _n: u64) {}
    #[inline(always)]
    fn row(&mut self, _lane: usize, _row: &[Value]) {}
}

/// Per-lane op tallies only (the scalar `OpsTally` over `NoCov`).
struct OpsLanes<'a> {
    ops: &'a mut [u64],
}

impl LaneSink for OpsLanes<'_> {
    #[inline(always)]
    fn branch(&mut self, _lane: usize, _site: u32) {}
    #[inline]
    fn ops(&mut self, mask: u64, n: u64) {
        let mut m = mask;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            self.ops[l] = self.ops[l].saturating_add(n);
        }
    }
    #[inline(always)]
    fn row(&mut self, _lane: usize, _row: &[Value]) {}
}

/// Per-lane coverage maps (branch + toggle axes; no op tallies, exactly
/// like [`CovMap`]'s scalar `CovSink` implementation).
struct CovLanes<'a> {
    covs: &'a mut [CovMap],
}

impl LaneSink for CovLanes<'_> {
    const NEEDS_ROWS: bool = true;
    #[inline]
    fn branch(&mut self, lane: usize, site: u32) {
        CovSink::branch(&mut self.covs[lane], site);
    }
    #[inline(always)]
    fn ops(&mut self, _mask: u64, _n: u64) {}
    #[inline]
    fn row(&mut self, lane: usize, row: &[Value]) {
        self.covs[lane].record_row(row);
    }
}

/// Coverage and op tallies together (the scalar `OpsTally` over a
/// `CovMap`).
struct CovOpsLanes<'a> {
    covs: &'a mut [CovMap],
    ops: &'a mut [u64],
}

impl LaneSink for CovOpsLanes<'_> {
    const NEEDS_ROWS: bool = true;
    #[inline]
    fn branch(&mut self, lane: usize, site: u32) {
        CovSink::branch(&mut self.covs[lane], site);
    }
    #[inline]
    fn ops(&mut self, mask: u64, n: u64) {
        let mut m = mask;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            self.ops[l] = self.ops[l].saturating_add(n);
        }
    }
    #[inline]
    fn row(&mut self, lane: usize, row: &[Value]) {
        self.covs[lane].record_row(row);
    }
}

/// Scalar [`ExecEnv`] view of one lane's column of the SoA store, for
/// the rare per-lane fallback (history sub-programs).
struct LaneView<'a, const K: usize> {
    state: &'a [Value],
    lane: usize,
}

impl<const K: usize> ExecEnv for LaneView<'_, K> {
    #[inline]
    fn load(&self, sig: SigId) -> Value {
        self.state[sig.idx() * K + self.lane]
    }
}

/// Applies `op` to the top slot in place. Unary operators are errorless
/// and constant-cost, so all `K` lanes are computed unconditionally
/// (inactive lanes hold valid-but-unobserved values).
#[inline(always)]
fn unary_slot<const K: usize>(op: UnaryOp, a: &mut [Value]) {
    let a: &mut [Value; K] = a.try_into().expect("slot width");
    macro_rules! arm {
        ($o:expr) => {{
            for v in a.iter_mut() {
                *v = crate::eval::unary($o, *v);
            }
        }};
    }
    use UnaryOp as U;
    match op {
        U::Neg => arm!(U::Neg),
        U::LogicNot => arm!(U::LogicNot),
        U::BitNot => arm!(U::BitNot),
        U::RedAnd => arm!(U::RedAnd),
        U::RedOr => arm!(U::RedOr),
        U::RedXor => arm!(U::RedXor),
        U::RedNand => arm!(U::RedNand),
        U::RedNor => arm!(U::RedNor),
        U::RedXnor => arm!(U::RedXnor),
        U::Plus => {}
    }
}

/// Applies `op` lane-wise, `a[l] = a[l] op b[l]`, delegating every lane
/// to the scalar [`crate::eval::binary`] with a constant operator — the
/// match unswitches the loop so each arm is a tight single-operator
/// kernel. Only active lanes are computed (division can fault);
/// failures are reported through `on_err`.
#[inline(always)]
fn binary_slot<const K: usize>(
    op: BinaryOp,
    a: &mut [Value],
    b: &[Value],
    exec: u64,
    mut on_err: impl FnMut(usize, EvalError),
) {
    let a: &mut [Value; K] = a.try_into().expect("slot width");
    let b: &[Value; K] = b.try_into().expect("slot width");
    macro_rules! arm {
        ($o:expr) => {{
            if exec == full::<K>() {
                for l in 0..K {
                    match crate::eval::binary($o, a[l], b[l]) {
                        Ok(v) => a[l] = v,
                        Err(e) => on_err(l, e),
                    }
                }
            } else {
                let mut m = exec;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    match crate::eval::binary($o, a[l], b[l]) {
                        Ok(v) => a[l] = v,
                        Err(e) => on_err(l, e),
                    }
                }
            }
        }};
    }
    use BinaryOp as B;
    match op {
        B::Add => arm!(B::Add),
        B::Sub => arm!(B::Sub),
        B::Mul => arm!(B::Mul),
        B::Div => arm!(B::Div),
        B::Mod => arm!(B::Mod),
        B::Pow => arm!(B::Pow),
        B::BitAnd => arm!(B::BitAnd),
        B::BitOr => arm!(B::BitOr),
        B::BitXor => arm!(B::BitXor),
        B::BitXnor => arm!(B::BitXnor),
        B::LogicAnd => arm!(B::LogicAnd),
        B::LogicOr => arm!(B::LogicOr),
        B::Eq => arm!(B::Eq),
        B::Ne => arm!(B::Ne),
        B::CaseEq => arm!(B::CaseEq),
        B::CaseNe => arm!(B::CaseNe),
        B::Lt => arm!(B::Lt),
        B::Le => arm!(B::Le),
        B::Gt => arm!(B::Gt),
        B::Ge => arm!(B::Ge),
        B::Shl => arm!(B::Shl),
        B::Shr => arm!(B::Shr),
        B::AShl => arm!(B::AShl),
        B::AShr => arm!(B::AShr),
    }
}

/// A pending nonblocking write of a lane group.
struct LaneNba<'a, const K: usize> {
    lhs: &'a CLValue,
    mask: u64,
    vals: [Value; K],
}

/// A pending clock-edge commit (the batched `NbaUpdate`).
enum EdgeUpdate<'a, const K: usize> {
    /// Whole-signal commit of a blocking-write diff, for the masked lanes.
    Whole(SigId, u64, [Value; K]),
    /// Deferred `<=` write through a compiled lvalue.
    Lv(LaneNba<'a, K>),
}

impl CompiledDesign {
    /// Evaluates `prog` for every lane in `mask` (callers guarantee
    /// `mask ⊆ alive`), writing per-lane results into `out` and
    /// returning the survivor mask. Erroring lanes are recorded and
    /// masked out; their `out` entries are unspecified.
    fn eval_lanes<const K: usize>(
        &self,
        ctx: &mut Ctx<'_, K>,
        prog: &ExprProg,
        mask: u64,
        out: &mut [Value; K],
    ) -> u64 {
        let state: &[Value] = ctx.state;
        let stack: &mut Vec<Value> = ctx.stack;
        let frames: &mut Vec<Frame<K>> = ctx.frames;
        let alive: &mut u64 = ctx.alive;
        let errors: &mut [Option<SimError>] = ctx.errors;

        let base = stack.len();
        for _ in 0..prog.n_tmps {
            let n = stack.len();
            stack.resize(n + K, Value::zero(1));
        }
        frames.clear();
        let ops = &prog.ops;
        let mut exec = mask;
        let mut pc = 0usize;
        loop {
            // Merge every frame whose join point is here: THEN lanes get
            // their captured results, execution widens back to the lanes
            // that entered the ternary (minus any that died inside it).
            while let Some(f) = frames.last() {
                if f.end != u32::MAX && f.end as usize == pc {
                    let f = frames.pop().expect("frame");
                    let top = stack.len() - K;
                    for_lanes::<K>(f.then_mask, |l| stack[top + l] = f.then_vals[l]);
                    exec = f.save & *alive;
                } else {
                    break;
                }
            }
            if pc >= ops.len() {
                break;
            }
            match &ops[pc] {
                Op::Const(v) => {
                    let n = stack.len();
                    stack.resize(n + K, *v);
                }
                Op::Load(sig) => {
                    let b = sig.idx() * K;
                    stack.extend_from_slice(&state[b..b + K]);
                }
                Op::Unary(op) => {
                    let n = stack.len();
                    unary_slot::<K>(*op, &mut stack[n - K..]);
                }
                Op::Binary(op) => {
                    let n = stack.len();
                    let (head, b) = stack.split_at_mut(n - K);
                    let hl = head.len();
                    binary_slot::<K>(*op, &mut head[hl - K..], b, exec, |l, e| {
                        kill(errors, alive, &mut exec, l, SimError::Eval(e));
                    });
                    stack.truncate(n - K);
                }
                Op::BinConst { op, rhs } => {
                    let n = stack.len();
                    let b = [*rhs; K];
                    binary_slot::<K>(*op, &mut stack[n - K..], &b, exec, |l, e| {
                        kill(errors, alive, &mut exec, l, SimError::Eval(e));
                    });
                }
                Op::LoadBin { op, a, b } => {
                    let pa = a.idx() * K;
                    let pb = b.idx() * K;
                    stack.extend_from_slice(&state[pa..pa + K]);
                    let n = stack.len();
                    binary_slot::<K>(
                        *op,
                        &mut stack[n - K..],
                        &state[pb..pb + K],
                        exec,
                        |l, e| {
                            kill(errors, alive, &mut exec, l, SimError::Eval(e));
                        },
                    );
                }
                Op::LoadBinConst { op, sig, rhs } => {
                    let p = sig.idx() * K;
                    stack.extend_from_slice(&state[p..p + K]);
                    let n = stack.len();
                    let b = [*rhs; K];
                    binary_slot::<K>(*op, &mut stack[n - K..], &b, exec, |l, e| {
                        kill(errors, alive, &mut exec, l, SimError::Eval(e));
                    });
                }
                Op::LoadUnary { op, sig } => {
                    let p = sig.idx() * K;
                    stack.extend_from_slice(&state[p..p + K]);
                    let n = stack.len();
                    unary_slot::<K>(*op, &mut stack[n - K..]);
                }
                Op::StoreTmp(i) => {
                    // Only emitted at unconditional positions, so the
                    // whole slot (every lane) is current.
                    let n = stack.len();
                    let (head, top) = stack.split_at_mut(n - K);
                    let t = base + *i as usize * K;
                    head[t..t + K].copy_from_slice(top);
                }
                Op::LoadTmp(i) => {
                    let t = base + *i as usize * K;
                    stack.extend_from_within(t..t + K);
                }
                Op::JumpIfFalse(target) => {
                    let n = stack.len();
                    let mut t = 0u64;
                    {
                        let c = &stack[n - K..];
                        for_lanes::<K>(exec, |l| {
                            if c[l].is_truthy() {
                                t |= lane_bit(l);
                            }
                        });
                    }
                    stack.truncate(n - K);
                    if t == exec {
                        // Uniformly true (or no lanes running): fall
                        // through into the THEN region.
                    } else if t == 0 {
                        pc = *target as usize;
                        continue;
                    } else {
                        frames.push(Frame {
                            else_start: *target,
                            end: u32::MAX,
                            save: exec,
                            then_mask: t,
                            then_vals: [Value::zero(1); K],
                        });
                        exec = t;
                    }
                }
                Op::Jump(target) => {
                    // A jump sitting immediately before the innermost open
                    // frame's ELSE start is that ternary's THEN exit (the
                    // structured emitter places it there and nowhere
                    // else): capture the THEN results, reveal the join,
                    // and switch to the falsy lanes.
                    let matched = frames
                        .last()
                        .is_some_and(|f| f.end == u32::MAX && pc + 1 == f.else_start as usize);
                    if matched {
                        let f = frames.last_mut().expect("frame");
                        f.end = *target;
                        let top = stack.len() - K;
                        f.then_vals.copy_from_slice(&stack[top..]);
                        stack.truncate(top);
                        exec = f.save & !f.then_mask & *alive;
                        pc = f.else_start as usize;
                    } else {
                        pc = *target as usize;
                    }
                    continue;
                }
                Op::ConcatN(n) => {
                    let n = *n as usize;
                    let first = stack.len() - n * K;
                    for l in 0..K {
                        let mut acc = stack[first + l];
                        for j in 1..n {
                            acc = acc.concat(stack[first + j * K + l]);
                        }
                        stack[first + l] = acc;
                    }
                    stack.truncate(first + K);
                }
                Op::RepeatGuard => {
                    let top = stack.len() - K;
                    let mut bad = 0u64;
                    for_lanes::<K>(exec, |l| {
                        let n = stack[top + l].bits();
                        if n == 0 || n > 64 {
                            bad |= lane_bit(l);
                        }
                    });
                    for_lanes::<K>(bad, |l| {
                        let n = stack[top + l].bits();
                        kill(
                            errors,
                            alive,
                            &mut exec,
                            l,
                            SimError::Eval(EvalError::Malformed(format!(
                                "replication count {n} outside 1..=64"
                            ))),
                        );
                    });
                }
                Op::Repeat => {
                    // Data-dependent cost: only active lanes (whose counts
                    // RepeatGuard just validated) are expanded.
                    let n = stack.len();
                    let vtop = n - K;
                    let ctop = n - 2 * K;
                    for_lanes::<K>(exec, |l| {
                        let v = stack[vtop + l];
                        let cnt = stack[ctop + l].bits();
                        let mut acc = v;
                        for _ in 1..cnt {
                            acc = acc.concat(v);
                        }
                        stack[ctop + l] = acc;
                    });
                    stack.truncate(n - K);
                }
                Op::BitIndex => {
                    let n = stack.len();
                    let itop = n - K;
                    let btop = n - 2 * K;
                    for l in 0..K {
                        let i = stack[itop + l].bits();
                        let bse = stack[btop + l];
                        stack[btop + l] =
                            Value::bit(u32::try_from(i).map(|i| bse.get_bit(i)).unwrap_or(false));
                    }
                    stack.truncate(n - K);
                }
                Op::Slice(msb, lsb) => {
                    let n = stack.len();
                    for v in &mut stack[n - K..] {
                        *v = v.slice(*msb, *lsb);
                    }
                }
                Op::SysCall { name, argc } => {
                    let argc = *argc as usize;
                    let first = stack.len() - argc * K;
                    let mut args = Vec::with_capacity(argc);
                    let mut m = exec;
                    while m != 0 {
                        let l = m.trailing_zeros() as usize;
                        m &= m - 1;
                        args.clear();
                        args.extend((0..argc).map(|j| stack[first + j * K + l]));
                        match crate::eval::default_sys_call(name, &args) {
                            // Lane l's arg columns are consumed before its
                            // result lands in the slot that remains.
                            Ok(v) => stack[first + l] = v,
                            Err(e) => kill(errors, alive, &mut exec, l, SimError::Eval(e)),
                        }
                    }
                    stack.truncate(first + K);
                }
                Op::History { kind, arg, n } => {
                    // Design programs never contain history ops (they are
                    // only emitted for property compilation); this mirrors
                    // the scalar env's rejection exactly, per lane, should
                    // one ever appear: evaluate `n` first (its errors win),
                    // then raise the env's unsupported-history error.
                    let mut m = exec;
                    while m != 0 {
                        let l = m.trailing_zeros() as usize;
                        m &= m - 1;
                        let env = LaneView::<K> { state, lane: l };
                        let nv = match n {
                            Some(id) => {
                                match run(&prog.subs[*id as usize], &env, ctx.scalar_stack) {
                                    Ok(v) => usize::try_from(v.bits()).unwrap_or(usize::MAX),
                                    Err(e) => {
                                        kill(errors, alive, &mut exec, l, SimError::Eval(e));
                                        continue;
                                    }
                                }
                            }
                            None => 1,
                        };
                        match env.history(*kind, &prog.subs[*arg as usize], nv) {
                            Ok(v) => {
                                // Unreachable today (the default env always
                                // rejects), kept for trait fidelity.
                                let top = stack.len();
                                if top == base + prog.n_tmps as usize * K {
                                    let n = stack.len();
                                    stack.resize(n + K, Value::zero(1));
                                }
                                let top = stack.len() - K;
                                stack[top + l] = v;
                            }
                            Err(e) => kill(errors, alive, &mut exec, l, SimError::Eval(e)),
                        }
                    }
                    // Keep the stack shape coherent for whatever follows.
                    if exec == 0 {
                        let n = stack.len();
                        stack.resize(n + K, Value::zero(1));
                    }
                }
                Op::Fail(e) => {
                    let mut m = exec;
                    while m != 0 {
                        let l = m.trailing_zeros() as usize;
                        m &= m - 1;
                        kill(errors, alive, &mut exec, l, SimError::Eval(e.clone()));
                    }
                    let n = stack.len();
                    stack.resize(n + K, Value::zero(1));
                }
            }
            pc += 1;
        }
        debug_assert!(frames.is_empty(), "unbalanced divergence frames");
        if exec != 0 {
            let top = stack.len() - K;
            out.copy_from_slice(&stack[top..]);
        }
        stack.truncate(base);
        exec
    }

    /// Batched [`CompiledDesign::settle`]: levelized designs settle in
    /// one ordered pass; otherwise each lane runs the declaration-order
    /// fixpoint until *its own* column stabilises, preserving per-lane
    /// iteration counts (and thus coverage/op tallies) exactly.
    fn settle_lanes<const K: usize, S: LaneSink>(
        &self,
        ctx: &mut Ctx<'_, K>,
        mask: u64,
        sink: &mut S,
        before: &mut Vec<Value>,
    ) {
        let mask = mask & *ctx.alive;
        if mask == 0 {
            return;
        }
        if self.levelized {
            for &i in &self.order {
                let m = mask & *ctx.alive;
                if m == 0 {
                    return;
                }
                self.run_comb_step_lanes(ctx, &self.comb[i], m, sink);
            }
            return;
        }
        let n_sigs = self.names.len();
        let mut pending = mask;
        for _ in 0..MAX_SETTLE_ITERS {
            pending &= *ctx.alive;
            if pending == 0 {
                return;
            }
            before.clone_from(ctx.state);
            for step in &self.comb {
                let m = pending & *ctx.alive;
                if m == 0 {
                    break;
                }
                self.run_comb_step_lanes(ctx, step, m, sink);
            }
            let mut still = 0u64;
            for_lanes::<K>(pending & *ctx.alive, |l| {
                for s in 0..n_sigs {
                    if ctx.state[s * K + l] != before[s * K + l] {
                        still |= lane_bit(l);
                        break;
                    }
                }
            });
            pending = still;
        }
        let diverged = pending & *ctx.alive;
        let mut m = diverged;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            let mut dummy = 0u64;
            kill(
                ctx.errors,
                ctx.alive,
                &mut dummy,
                l,
                SimError::CombDivergence,
            );
        }
    }

    fn run_comb_step_lanes<'a, const K: usize, S: LaneSink>(
        &'a self,
        ctx: &mut Ctx<'_, K>,
        step: &'a CombStep,
        mask: u64,
        sink: &mut S,
    ) {
        match step {
            CombStep::Assign { lhs, rhs } => {
                let mut out = [Value::zero(1); K];
                let sur = self.eval_lanes(ctx, rhs, mask, &mut out);
                sink.ops(sur, rhs.ops.len() as u64);
                if sur != 0 {
                    self.write_lvalue_lanes(ctx, lhs, &out, sur);
                }
            }
            CombStep::Block(body) => {
                let mut nba: Vec<LaneNba<'a, K>> = Vec::new();
                self.exec_stmt_lanes(ctx, body, mask, &mut nba, sink);
                for up in nba {
                    self.write_lvalue_lanes(ctx, up.lhs, &up.vals, up.mask);
                }
            }
        }
    }

    /// Batched [`CompiledDesign::clock_edge`]: every block runs against
    /// the pre-edge state; per block, blocking diffs commit in signal
    /// order and then that block's nonblocking writes in execution
    /// order — chronologically across blocks, each update masked to the
    /// lanes it belongs to (and to whatever is still alive when it
    /// applies, matching the scalar abort-on-error commit).
    ///
    /// Blocks execute in place under the [`EdgeLog`] journal: the first
    /// write to a signal saves its pre-block lane values, and after the
    /// block only the journaled signals are diffed (ascending signal id,
    /// the scalar commit order) and restored to their pre-edge values —
    /// no whole-state clone or scan per block.
    fn clock_edge_lanes<const K: usize, S: LaneSink>(
        &self,
        ctx: &mut Ctx<'_, K>,
        mask: u64,
        sink: &mut S,
    ) {
        let mask = mask & *ctx.alive;
        if mask == 0 {
            return;
        }
        let mut updates: Vec<EdgeUpdate<'_, K>> = Vec::new();
        for block in &self.seq {
            let m = mask & *ctx.alive;
            if m == 0 {
                break;
            }
            ctx.edge_log.gen += 1;
            ctx.edge_log.entries.clear();
            ctx.edge_log.on = true;
            let mut nba: Vec<LaneNba<'_, K>> = Vec::new();
            self.exec_stmt_lanes(ctx, block, m, &mut nba, sink);
            ctx.edge_log.on = false;
            let m = m & *ctx.alive;
            let mut entries = std::mem::take(&mut ctx.edge_log.entries);
            entries.sort_unstable_by_key(|(sig, _)| sig.idx());
            for (sig, old) in &entries {
                let b = sig.idx() * K;
                let mut dm = 0u64;
                for_lanes::<K>(m, |l| {
                    if ctx.state[b + l] != old[l] {
                        dm |= lane_bit(l);
                    }
                });
                if dm != 0 {
                    let mut vals = [Value::zero(1); K];
                    for_lanes::<K>(dm, |l| vals[l] = ctx.state[b + l]);
                    updates.push(EdgeUpdate::Whole(*sig, dm, vals));
                }
                // Later blocks and the final commit all observe the same
                // pre-edge snapshot.
                ctx.state[b..b + K].copy_from_slice(old);
            }
            entries.clear();
            ctx.edge_log.entries = entries;
            updates.extend(nba.into_iter().map(EdgeUpdate::Lv));
        }
        for up in updates {
            match up {
                EdgeUpdate::Whole(sig, dm, vals) => {
                    let m = dm & *ctx.alive;
                    let w = self.widths[sig.idx()];
                    let b = sig.idx() * K;
                    for_lanes::<K>(m, |l| ctx.state[b + l] = vals[l].resize(w));
                }
                EdgeUpdate::Lv(u) => self.write_lvalue_lanes(ctx, u.lhs, &u.vals, u.mask),
            }
        }
    }

    fn exec_stmt_lanes<'a, const K: usize, S: LaneSink>(
        &'a self,
        ctx: &mut Ctx<'_, K>,
        s: &'a CStmt,
        mask: u64,
        nba: &mut Vec<LaneNba<'a, K>>,
        sink: &mut S,
    ) {
        match s {
            CStmt::Block(stmts) => {
                for st in stmts {
                    let m = mask & *ctx.alive;
                    if m == 0 {
                        return;
                    }
                    self.exec_stmt_lanes(ctx, st, m, nba, sink);
                }
            }
            CStmt::If {
                cond,
                then_branch,
                else_branch,
                site,
            } => {
                let mut out = [Value::zero(1); K];
                let sur = self.eval_lanes(ctx, cond, mask, &mut out);
                sink.ops(sur, cond.ops.len() as u64);
                let mut t = 0u64;
                for_lanes::<K>(sur, |l| {
                    if out[l].is_truthy() {
                        t |= lane_bit(l);
                    }
                });
                let f = sur & !t;
                for_lanes::<K>(t, |l| sink.branch(l, *site));
                for_lanes::<K>(f, |l| sink.branch(l, *site + 1));
                if t != 0 {
                    self.exec_stmt_lanes(ctx, then_branch, t, nba, sink);
                }
                if f != 0 {
                    if let Some(e) = else_branch {
                        self.exec_stmt_lanes(ctx, e, f, nba, sink);
                    }
                }
            }
            CStmt::Case {
                scrutinee,
                arms,
                default,
                site,
            } => {
                let mut sv = [Value::zero(1); K];
                let mut remaining = self.eval_lanes(ctx, scrutinee, mask, &mut sv);
                sink.ops(remaining, scrutinee.ops.len() as u64);
                let mut lv = [Value::zero(1); K];
                for (i, arm) in arms.iter().enumerate() {
                    if remaining == 0 {
                        break;
                    }
                    for label in &arm.labels {
                        if remaining == 0 {
                            break;
                        }
                        let lsur = self.eval_lanes(ctx, label, remaining, &mut lv);
                        sink.ops(lsur, label.ops.len() as u64);
                        let mut matched = 0u64;
                        for_lanes::<K>(lsur, |l| {
                            if lv[l].bits() == sv[l].bits() {
                                matched |= lane_bit(l);
                            }
                        });
                        if matched != 0 {
                            for_lanes::<K>(matched, |l| sink.branch(l, *site + i as u32));
                            self.exec_stmt_lanes(ctx, &arm.body, matched, nba, sink);
                        }
                        remaining = lsur & !matched & *ctx.alive;
                    }
                }
                if remaining != 0 {
                    for_lanes::<K>(remaining, |l| sink.branch(l, *site + arms.len() as u32));
                    if let Some(d) = default {
                        self.exec_stmt_lanes(ctx, d, remaining, nba, sink);
                    }
                }
            }
            CStmt::Assign {
                lhs,
                rhs,
                nonblocking,
            } => {
                let mut out = [Value::zero(1); K];
                let sur = self.eval_lanes(ctx, rhs, mask, &mut out);
                sink.ops(sur, rhs.ops.len() as u64);
                if sur == 0 {
                    return;
                }
                if *nonblocking {
                    nba.push(LaneNba {
                        lhs,
                        mask: sur,
                        vals: out,
                    });
                } else {
                    self.write_lvalue_lanes(ctx, lhs, &out, sur);
                }
            }
            CStmt::Empty => {}
        }
    }

    fn write_lvalue_lanes<const K: usize>(
        &self,
        ctx: &mut Ctx<'_, K>,
        lv: &CLValue,
        vals: &[Value; K],
        mask: u64,
    ) {
        let mask = mask & *ctx.alive;
        if mask == 0 {
            return;
        }
        if ctx.edge_log.on {
            log_lvalue(ctx, lv);
        }
        match lv {
            CLValue::Whole(sig) => {
                let w = self.widths[sig.idx()];
                let b = sig.idx() * K;
                for_lanes::<K>(mask, |l| ctx.state[b + l] = vals[l].resize(w));
            }
            CLValue::Bit { sig, index } => {
                // Index programs are not charged to op tallies (the scalar
                // write path doesn't either).
                let mut iv = [Value::zero(1); K];
                let sur = self.eval_lanes(ctx, index, mask, &mut iv);
                let b = sig.idx() * K;
                for_lanes::<K>(sur, |l| {
                    let i = u32::try_from(iv[l].bits()).unwrap_or(u32::MAX);
                    let cur = ctx.state[b + l];
                    ctx.state[b + l] = cur.set_bit(i, vals[l].is_truthy() && vals[l].get_bit(0));
                });
            }
            CLValue::Part { sig, msb, lsb } => {
                let b = sig.idx() * K;
                for_lanes::<K>(mask, |l| {
                    let cur = ctx.state[b + l];
                    ctx.state[b + l] = cur.set_slice(*msb, *lsb, vals[l]);
                });
            }
            CLValue::Concat(_) => {
                // Concat targets take the scalar path per lane: extract
                // the lane's column, snapshot it (nested reads observe
                // pre-write values throughout, exactly like the
                // interpreter), run the scalar writer, and copy back only
                // on success — a failed write kills the lane, whose state
                // is never observed again.
                let n_sigs = self.names.len();
                let mut m = mask;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    ctx.lane_state.clear();
                    ctx.lane_state
                        .extend((0..n_sigs).map(|s| ctx.state[s * K + l]));
                    ctx.lane_snapshot.clone_from(ctx.lane_state);
                    match self.write_concat_part(
                        lv,
                        vals[l],
                        ctx.lane_snapshot,
                        ctx.lane_state,
                        ctx.scalar_stack,
                    ) {
                        Ok(()) => {
                            for s in 0..n_sigs {
                                ctx.state[s * K + l] = ctx.lane_state[s];
                            }
                        }
                        Err(e) => {
                            let mut dummy = 0u64;
                            kill(ctx.errors, ctx.alive, &mut dummy, l, e);
                        }
                    }
                }
            }
            CLValue::Unknown(name) => {
                let mut m = mask;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let mut dummy = 0u64;
                    kill(
                        ctx.errors,
                        ctx.alive,
                        &mut dummy,
                        l,
                        SimError::Eval(EvalError::UnknownSignal(name.clone())),
                    );
                }
            }
        }
    }
}

/// The completed run of one lane: what the scalar executor would have
/// produced for the same stimulus.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneRun {
    /// The recorded waveform (preponed samples, like [`Simulator`]).
    pub trace: Trace,
    /// The lane's coverage map, when coverage was enabled.
    pub coverage: Option<CovMap>,
    /// Bytecode ops dispatched for this lane, when op counting was
    /// enabled (0 otherwise).
    pub ops: u64,
}

/// Per-lane result: a completed run, or the first error the lane raised
/// — exactly the `Result` the scalar driver would have returned.
pub type LaneOutcome = Result<LaneRun, SimError>;

/// A lane-batched simulation of up to `K` independent stimuli over one
/// compiled design. See the module docs for the execution model.
#[derive(Debug)]
pub struct LaneBatch<const K: usize> {
    compiled: Arc<CompiledDesign>,
    n_sigs: usize,
    lanes: usize,
    /// SoA store: `state[sig * K + lane]`.
    state: Vec<Value>,
    stack: Vec<Value>,
    frames: Vec<Frame<K>>,
    alive: u64,
    errors: Vec<Option<SimError>>,
    /// Tick-major sample log: each recorded tick appends the full
    /// lane-minor state (`n_sigs * K` values). Per-lane traces are
    /// transposed out once in [`LaneBatch::into_outcomes`] — recording a
    /// tick during the run is a single bulk append instead of `K`
    /// per-lane row pushes.
    flat_samples: Vec<Value>,
    /// Which lanes actually sampled each recorded tick (errored and
    /// finished lanes drop out, exactly like the scalar step returning
    /// before its trace push).
    live_rows: Vec<u64>,
    covs: Vec<CovMap>,
    ops: Vec<u64>,
    count_ops: bool,
    // Reused tick buffers.
    settle_before: Vec<Value>,
    row_scratch: Vec<Value>,
    edge_log: EdgeLog<K>,
    scalar_stack: Vec<Value>,
    lane_state: Vec<Value>,
    lane_snapshot: Vec<Value>,
}

impl<const K: usize> std::fmt::Debug for Frame<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Frame")
            .field("else_start", &self.else_start)
            .field("end", &self.end)
            .field("save", &self.save)
            .field("then_mask", &self.then_mask)
            .finish()
    }
}

impl<const K: usize> LaneBatch<K> {
    /// Creates a batch of `lanes` (`1..=K`) zero-initialised simulation
    /// states over a compiled design.
    ///
    /// # Panics
    ///
    /// Panics when `lanes` is 0 or exceeds `K`, or `K` is outside
    /// `1..=64`.
    pub fn new(compiled: Arc<CompiledDesign>, lanes: usize) -> Self {
        assert!(K >= 1 && K <= 64, "lane width {K} outside 1..=64");
        assert!(lanes >= 1 && lanes <= K, "{lanes} lanes outside 1..={K}");
        let n_sigs = compiled.names().len();
        let init = compiled.init_slice();
        let mut state = Vec::with_capacity(n_sigs * K);
        for v in init {
            for _ in 0..K {
                state.push(*v);
            }
        }
        let alive = if lanes >= 64 {
            u64::MAX
        } else {
            (1u64 << lanes) - 1
        };
        LaneBatch {
            compiled,
            n_sigs,
            lanes,
            state,
            stack: Vec::with_capacity(16 * K),
            frames: Vec::new(),
            alive,
            errors: vec![None; lanes],
            flat_samples: Vec::new(),
            live_rows: Vec::new(),
            covs: Vec::new(),
            ops: vec![0; lanes],
            count_ops: false,
            settle_before: Vec::new(),
            row_scratch: Vec::new(),
            edge_log: EdgeLog {
                on: false,
                gen: 0,
                touched: vec![0; n_sigs],
                entries: Vec::new(),
            },
            scalar_stack: Vec::new(),
            lane_state: Vec::new(),
            lane_snapshot: Vec::new(),
        }
    }

    /// Number of occupied lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Mask of lanes that have not errored.
    pub fn alive(&self) -> u64 {
        self.alive
    }

    /// Enables per-lane coverage recording (see
    /// [`Simulator::enable_coverage`]).
    pub fn enable_coverage(&mut self, assertions: usize) {
        self.covs = (0..self.lanes)
            .map(|_| CovMap::new(&self.compiled, assertions))
            .collect();
    }

    /// Enables per-lane bytecode op counting (see
    /// [`Simulator::enable_op_count`]).
    pub fn enable_op_count(&mut self) {
        self.count_ops = true;
    }

    /// Drives an input of one lane for subsequent ticks.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a known signal or `lane` is out of range.
    pub fn set_input(&mut self, lane: usize, name: &str, value: u64) {
        let sig = self
            .compiled
            .sig(name)
            .unwrap_or_else(|| panic!("unknown signal `{name}`"));
        self.set_input_sig(lane, sig, value);
    }

    /// [`LaneBatch::set_input`] with a pre-resolved [`SigId`]: the input
    /// names of a stimulus are identical every tick, so hot drivers
    /// resolve once and write by id ([`run_stimulus_group`] does this).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn set_input_sig(&mut self, lane: usize, sig: SigId, value: u64) {
        assert!(lane < self.lanes, "lane {lane} out of range");
        self.state[sig.idx() * K + lane] = Value::new(value, self.compiled.width(sig));
    }

    /// Current (post-settle) value of a signal in one lane.
    pub fn value(&self, lane: usize, name: &str) -> Option<Value> {
        self.compiled
            .sig(name)
            .map(|s| self.state[s.idx() * K + lane])
    }

    /// Runs one clock tick for every lane in `active` (errored and
    /// out-of-range lanes are ignored), applying the same
    /// settle → sample → clock-edge → settle sequence as
    /// [`Simulator::step`]. Ragged batches simply leave finished lanes
    /// out of `active`.
    pub fn step_active(&mut self, active: u64) {
        let occupied = if self.lanes >= 64 {
            u64::MAX
        } else {
            (1u64 << self.lanes) - 1
        };
        let active = active & occupied & self.alive;
        if active == 0 {
            return;
        }
        let mut covs = std::mem::take(&mut self.covs);
        let mut ops = std::mem::take(&mut self.ops);
        match (covs.is_empty(), self.count_ops) {
            (true, false) => self.tick(active, &mut NoLaneSink),
            (true, true) => self.tick(active, &mut OpsLanes { ops: &mut ops }),
            (false, false) => self.tick(active, &mut CovLanes { covs: &mut covs }),
            (false, true) => self.tick(
                active,
                &mut CovOpsLanes {
                    covs: &mut covs,
                    ops: &mut ops,
                },
            ),
        }
        self.covs = covs;
        self.ops = ops;
    }

    fn tick<S: LaneSink>(&mut self, active: u64, sink: &mut S) {
        let cd = Arc::clone(&self.compiled);
        let n_sigs = self.n_sigs;
        let mut ctx = Ctx {
            state: &mut self.state,
            stack: &mut self.stack,
            frames: &mut self.frames,
            alive: &mut self.alive,
            errors: &mut self.errors,
            scalar_stack: &mut self.scalar_stack,
            lane_state: &mut self.lane_state,
            lane_snapshot: &mut self.lane_snapshot,
            edge_log: &mut self.edge_log,
        };
        cd.settle_lanes(&mut ctx, active, sink, &mut self.settle_before);
        // Preponed sample: lanes that errored while settling record no
        // row, exactly like the scalar step returning before the push.
        // The whole lane-minor state is appended to the flat log in one
        // bulk copy; per-lane rows are transposed out in
        // `into_outcomes`. Only coverage sinks need rows right now (the
        // toggle axis is per tick), so only they pay for a transpose.
        let live = active & *ctx.alive;
        if live != 0 {
            if S::NEEDS_ROWS {
                self.row_scratch.resize(K * n_sigs, Value::zero(1));
                for_lanes::<K>(live, |l| {
                    let base = l * n_sigs;
                    for (d, lanes) in self.row_scratch[base..base + n_sigs]
                        .iter_mut()
                        .zip(ctx.state.chunks_exact(K))
                    {
                        *d = lanes[l];
                    }
                    sink.row(l, &self.row_scratch[base..base + n_sigs]);
                });
            }
            self.flat_samples.extend_from_slice(ctx.state);
            self.live_rows.push(live);
        }
        let live = active & *ctx.alive;
        cd.clock_edge_lanes(&mut ctx, live, sink);
        let live = active & *ctx.alive;
        cd.settle_lanes(&mut ctx, live, sink, &mut self.settle_before);
    }

    /// Consumes the batch, returning each lane's outcome in lane order.
    /// This is where per-lane traces materialise: each surviving lane's
    /// ticks are transposed out of the flat lane-minor sample log in one
    /// sequential pass.
    pub fn into_outcomes(self) -> Vec<LaneOutcome> {
        let LaneBatch {
            compiled,
            n_sigs,
            lanes,
            errors,
            flat_samples,
            live_rows,
            covs,
            ops,
            ..
        } = self;
        let has_cov = !covs.is_empty();
        let mut covs = covs.into_iter();
        let header = compiled.trace_header();
        let stride = n_sigs * K;
        let mut out = Vec::with_capacity(lanes);
        for l in 0..lanes {
            let coverage = if has_cov { covs.next() } else { None };
            out.push(match &errors[l] {
                Some(e) => Err(e.clone()),
                None => {
                    let bit = 1u64 << l;
                    let mut samples = Vec::with_capacity(live_rows.len() * n_sigs);
                    for (t, &live) in live_rows.iter().enumerate() {
                        if live & bit != 0 {
                            let base = t * stride + l;
                            samples.extend((0..n_sigs).map(|s| flat_samples[base + s * K]));
                        }
                    }
                    Ok(LaneRun {
                        trace: Trace::from_parts(Arc::clone(header), samples),
                        coverage,
                        ops: ops[l],
                    })
                }
            });
        }
        out
    }

    /// Runs a group of stimuli (`1..=K` of them) to completion, one
    /// stimulus per lane: per cycle, each lane still inside its stimulus
    /// applies that cycle's inputs and steps; lanes whose stimulus ended
    /// (ragged groups) or that errored sit the cycle out. Returns one
    /// outcome per stimulus, in order.
    ///
    /// # Panics
    ///
    /// Panics when `group` is empty or longer than `K`.
    pub fn run_group(
        compiled: &Arc<CompiledDesign>,
        group: &[Stimulus],
        assertions: Option<usize>,
        count_ops: bool,
    ) -> Vec<LaneOutcome> {
        assert!(
            !group.is_empty() && group.len() <= K,
            "group of {} outside 1..={K}",
            group.len()
        );
        let mut batch = LaneBatch::<K>::new(Arc::clone(compiled), group.len());
        if let Some(a) = assertions {
            batch.enable_coverage(a);
        }
        if count_ops {
            batch.enable_op_count();
        }
        let max_len = group.iter().map(Stimulus::len).max().unwrap_or(0);
        // Stimulus vectors normally name the same inputs every tick and
        // every lane (the generators emit one fixed sequence). Verify
        // that once up front per lane; uniform lanes then drive inputs
        // through a shared name → signal-id table with zero per-tick
        // allocation or comparison, and only hand-built irregular
        // stimuli take the per-tick resolution path.
        let resolve = |names: &[(String, u64)]| -> Vec<SigId> {
            names
                .iter()
                .map(|(name, _)| {
                    compiled
                        .sig(name)
                        .unwrap_or_else(|| panic!("unknown signal `{name}`"))
                })
                .collect()
        };
        let first = group
            .iter()
            .find(|s| !s.is_empty())
            .map(|s| s.vector(0))
            .unwrap_or(&[]);
        let shared_ids: Vec<SigId> = resolve(first);
        let names_match = |v: &[(String, u64)]| {
            v.len() == first.len() && v.iter().zip(first.iter()).all(|((n, _), (f, _))| n == f)
        };
        let uniform: Vec<bool> = group
            .iter()
            .map(|s| s.vectors.iter().all(|v| names_match(v)))
            .collect();
        for t in 0..max_len {
            let mut active = 0u64;
            for (l, stim) in group.iter().enumerate() {
                if t < stim.len() && batch.alive & lane_bit(l) != 0 {
                    active |= lane_bit(l);
                    let cycle = stim.vector(t);
                    if uniform[l] {
                        for ((_, v), sig) in cycle.iter().zip(&shared_ids) {
                            batch.set_input_sig(l, *sig, *v);
                        }
                    } else {
                        for ((_, v), sig) in cycle.iter().zip(resolve(cycle)) {
                            batch.set_input_sig(l, sig, *v);
                        }
                    }
                }
            }
            if active == 0 {
                break;
            }
            batch.step_active(active);
        }
        batch.into_outcomes()
    }
}

/// Runs a group of stimuli with `lanes` lanes per bytecode pass,
/// dispatching to the const-generic executor for the supported widths
/// ([`LANE_WIDTHS`]) and draining through the scalar [`Simulator`] for
/// any other width (including `lanes == 1`, the scalar-differential
/// configuration). Outcomes are bit-identical either way.
pub fn run_stimulus_group(
    compiled: &Arc<CompiledDesign>,
    group: &[Stimulus],
    lanes: usize,
    assertions: Option<usize>,
    count_ops: bool,
) -> Vec<LaneOutcome> {
    if group.is_empty() {
        return Vec::new();
    }
    match lanes {
        8 if group.len() <= 8 => LaneBatch::<8>::run_group(compiled, group, assertions, count_ops),
        16 if group.len() <= 16 => {
            LaneBatch::<16>::run_group(compiled, group, assertions, count_ops)
        }
        32 if group.len() <= 32 => {
            LaneBatch::<32>::run_group(compiled, group, assertions, count_ops)
        }
        _ => {
            // One simulator, restarted in place between stimuli: the
            // O(#signals), zero-allocation scalar hot loop.
            let mut sim = Simulator::from_compiled(Arc::clone(compiled));
            if let Some(a) = assertions {
                sim.enable_coverage(a);
            }
            if count_ops {
                sim.enable_op_count();
            }
            group
                .iter()
                .map(|stim| {
                    sim.restart();
                    for t in 0..stim.len() {
                        sim.step(&stim.cycle(t))?;
                    }
                    Ok(LaneRun {
                        trace: sim.take_trace(),
                        coverage: sim.coverage().cloned(),
                        ops: sim.ops_executed(),
                    })
                })
                .collect()
        }
    }
}

/// The scalar fallback of [`run_stimulus_group`]: one [`Simulator`] run,
/// packaged as a [`LaneOutcome`].
pub fn run_stimulus_scalar(
    compiled: &Arc<CompiledDesign>,
    stim: &Stimulus,
    assertions: Option<usize>,
    count_ops: bool,
) -> LaneOutcome {
    let mut sim = Simulator::from_compiled(Arc::clone(compiled));
    if let Some(a) = assertions {
        sim.enable_coverage(a);
    }
    if count_ops {
        sim.enable_op_count();
    }
    for t in 0..stim.len() {
        sim.step(&stim.cycle(t))?;
    }
    let ops = sim.ops_executed();
    let (trace, coverage) = sim.into_trace_and_coverage();
    Ok(LaneRun {
        trace,
        coverage,
        ops,
    })
}

// A compile-time guard that the StateEnv import stays shared with the
// scalar machine (the per-lane fallbacks must use the same env type).
#[allow(dead_code)]
fn _env_parity(state: &[Value]) -> StateEnv<'_> {
    StateEnv { state }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stimulus::StimulusGen;
    use asv_verilog::compile as velab;

    fn compiled(src: &str) -> Arc<CompiledDesign> {
        Arc::new(CompiledDesign::compile(&velab(src).expect("compile")))
    }

    /// Differential harness: runs `n` seeded stimuli through the scalar
    /// executor and through `LaneBatch::<K>` groups, and requires
    /// bit-identical outcomes (traces, errors, coverage, op tallies).
    fn assert_differential<const K: usize>(src: &str, n: usize, cycles: usize) {
        let cd = compiled(src);
        let gen = StimulusGen::new(cd.design());
        let stimuli: Vec<Stimulus> = (0..n)
            .map(|i| gen.random_seeded(cycles, 2, 0xBA7C_4000 + i as u64))
            .collect();
        let scalar: Vec<LaneOutcome> = stimuli
            .iter()
            .map(|s| run_stimulus_scalar(&cd, s, Some(3), true))
            .collect();
        let mut batched = Vec::new();
        for group in stimuli.chunks(K) {
            batched.extend(LaneBatch::<K>::run_group(&cd, group, Some(3), true));
        }
        assert_eq!(scalar.len(), batched.len());
        for (i, (s, b)) in scalar.iter().zip(&batched).enumerate() {
            match (s, b) {
                (Ok(sr), Ok(br)) => {
                    assert_eq!(sr.trace, br.trace, "trace diverged at stimulus {i}");
                    assert_eq!(sr.coverage, br.coverage, "coverage diverged at {i}");
                    assert_eq!(sr.ops, br.ops, "op tally diverged at {i}");
                }
                (Err(se), Err(be)) => assert_eq!(se, be, "error diverged at stimulus {i}"),
                _ => panic!("outcome kind diverged at stimulus {i}: {s:?} vs {b:?}"),
            }
        }
    }

    const COUNTER: &str = "module c(input clk, input rst_n, input en, output reg [3:0] q);\n\
        always @(posedge clk or negedge rst_n) begin\n\
          if (!rst_n) q <= 4'd0; else if (en) q <= q + 4'd1;\n\
        end\nendmodule";

    #[test]
    fn counter_matches_scalar_ragged() {
        // 13 stimuli at K=8: one full group and a ragged 5-lane tail.
        assert_differential::<8>(COUNTER, 13, 10);
    }

    #[test]
    fn divergent_ternary_is_lazy_per_lane() {
        // The untaken branch divides by zero: lanes taking `s = 0` must
        // not fault even while sibling lanes take `s = 1` and do.
        let src = "module t(input clk, input s, input [3:0] a, input [3:0] b,\n\
             output reg [3:0] y);\n\
             always @(posedge clk) y <= s ? a / b : a;\nendmodule";
        assert_differential::<8>(src, 16, 8);
    }

    #[test]
    fn case_and_concat_lvalues_match_scalar() {
        let src = "module m(input clk, input [1:0] sel, input [3:0] a, input [3:0] b,\n\
             output reg [3:0] hi, output reg [3:0] lo, output reg [3:0] y);\n\
             always @(posedge clk) begin\n\
               case (sel)\n\
                 2'd0: y <= a;\n\
                 2'd1: y <= b;\n\
                 2'd2: y <= a ^ b;\n\
                 default: y <= 4'd0;\n\
               endcase\n\
               {hi, lo} <= {a, b};\n\
             end\nendmodule";
        assert_differential::<8>(src, 12, 8);
    }

    #[test]
    fn mid_batch_lane_errors_match_scalar() {
        // Division faults whenever b == 0 — lanes die at different ticks
        // mid-batch while survivors keep stepping.
        let src = "module d(input clk, input [3:0] a, input [3:0] b, output reg [3:0] q);\n\
             always @(posedge clk) q <= a / b;\nendmodule";
        assert_differential::<8>(src, 16, 6);
        assert_differential::<16>(src, 16, 6);
    }

    #[test]
    fn nonlevelized_fixpoint_matches_scalar() {
        // Latch-style block: falls back to the fixpoint discipline.
        let src = "module l(input clk, input en, input [3:0] d, output reg [3:0] q,\n\
             output reg [3:0] r);\n\
             always @(*) begin if (en) q = d; end\n\
             always @(posedge clk) r <= q;\nendmodule";
        assert_differential::<8>(src, 12, 8);
    }

    #[test]
    fn all_lane_widths_match_scalar() {
        assert_differential::<8>(COUNTER, 11, 6);
        assert_differential::<16>(COUNTER, 19, 6);
        assert_differential::<32>(COUNTER, 35, 6);
    }

    #[test]
    fn per_lane_comb_divergence() {
        // `n = ~n | a` oscillates exactly when a == 0: lanes with a == 1
        // settle, lanes with a == 0 must report CombDivergence.
        let cd = compiled(
            "module osc(input clk, input a, output y);\nwire n;\n\
             assign n = ~n | a;\nassign y = n;\nendmodule",
        );
        let mk = |a: u64| Stimulus {
            vectors: vec![vec![("a".to_string(), a)]; 3],
            reset_cycles: 0,
        };
        let group = [mk(1), mk(0), mk(1), mk(0)];
        let out = LaneBatch::<8>::run_group(&cd, &group, None, false);
        assert!(out[0].is_ok(), "a=1 settles");
        assert_eq!(out[1], Err(SimError::CombDivergence));
        assert!(out[2].is_ok());
        assert_eq!(out[3], Err(SimError::CombDivergence));
    }

    #[test]
    fn scalar_fallback_dispatch() {
        let cd = compiled(COUNTER);
        let gen = StimulusGen::new(cd.design());
        let stimuli: Vec<Stimulus> = (0..5).map(|i| gen.random_seeded(6, 2, i)).collect();
        // lanes = 1 (and any unsupported width) drains scalar; lanes = 8
        // uses the batch. Results must agree regardless.
        let scalar = run_stimulus_group(&cd, &stimuli, 1, Some(0), true);
        let batch = run_stimulus_group(&cd, &stimuli, 8, Some(0), true);
        for (s, b) in scalar.iter().zip(&batch) {
            let (s, b) = (s.as_ref().expect("scalar"), b.as_ref().expect("batch"));
            assert_eq!(s.trace, b.trace);
            assert_eq!(s.coverage, b.coverage);
            assert_eq!(s.ops, b.ops);
        }
        assert!(run_stimulus_group(&cd, &[], 8, None, false).is_empty());
    }

    #[test]
    fn ragged_groups_leave_finished_lanes_untouched() {
        let cd = compiled(COUNTER);
        let gen = StimulusGen::new(cd.design());
        // Lane 0 runs 9 cycles, lane 1 only 3: lane 1's trace must stop
        // at 3 rows and match its scalar run exactly.
        let long = gen.random_seeded(7, 2, 1);
        let short = gen.random_seeded(1, 2, 2);
        let out = LaneBatch::<8>::run_group(&cd, &[long.clone(), short.clone()], None, false);
        let s_long = run_stimulus_scalar(&cd, &long, None, false).expect("scalar");
        let s_short = run_stimulus_scalar(&cd, &short, None, false).expect("scalar");
        assert_eq!(out[0].as_ref().expect("lane 0").trace, s_long.trace);
        assert_eq!(out[1].as_ref().expect("lane 1").trace, s_short.trace);
        assert_eq!(out[1].as_ref().expect("lane 1").trace.len(), 3);
    }

    #[test]
    fn traces_share_the_compiled_header() {
        let cd = compiled(COUNTER);
        let gen = StimulusGen::new(cd.design());
        let stim = gen.random_seeded(3, 1, 9);
        let out = LaneBatch::<8>::run_group(&cd, &[stim], None, false);
        let run = out[0].as_ref().expect("lane 0");
        assert!(Arc::ptr_eq(run.trace.header(), cd.trace_header()));
    }
}
