//! Postfix expression bytecode and its stack machine.
//!
//! [`ExprProg`] is the executable form of one expression: a flat postfix
//! [`Op`] stream run by the non-recursive [`run`] interpreter, generic
//! over an [`ExecEnv`] so the same programs evaluate design expressions
//! against live simulator state and (via `asv-sva`) property expressions
//! against sampled traces.
//!
//! Programs come from two lowerings:
//!
//! * **Design expressions** are emitted from the optimized `asv-ir` form
//!   (see [`super::lower`]); at `OptLevel::Full` the emitter additionally
//!   materialises shared subexpressions into expression-local temporary
//!   slots ([`Op::StoreTmp`]/[`Op::LoadTmp`]) and fuses common
//!   load/constant/operator windows into superinstructions
//!   ([`Op::LoadBin`], [`Op::LoadBinConst`], [`Op::BinConst`]).
//! * **Property expressions** are compiled directly from the AST by
//!   [`compile_expr`] (they run against traces, whose contents are
//!   already optimization-invariant).

use crate::eval::{default_sys_call, EvalError};
use crate::value::Value;
use asv_ir::SigId;
use asv_verilog::ast::{BinaryOp, Expr, UnaryOp};

/// How a name resolves during expression compilation.
#[derive(Debug, Clone)]
pub enum NameRef {
    /// A live signal, read from the environment at execution time.
    Sig(SigId),
    /// A compile-time constant (parameter).
    Const(Value),
    /// Not resolvable; evaluating the reference raises
    /// [`EvalError::UnknownSignal`] *at execution time*, preserving the
    /// interpreter's lazy error behaviour (an unknown name in an untaken
    /// ternary branch never errors).
    Unknown,
}

/// History system function kinds resolved by the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistoryKind {
    /// `$past(e [, n])`
    Past,
    /// `$rose(e)`
    Rose,
    /// `$fell(e)`
    Fell,
    /// `$stable(e)`
    Stable,
}

/// One postfix instruction of an expression program.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Push a constant.
    Const(Value),
    /// Push the environment's value of a signal.
    Load(SigId),
    /// Apply a unary operator to the top of stack.
    Unary(UnaryOp),
    /// Apply a binary operator to the top two values.
    Binary(BinaryOp),
    /// Pop the condition; jump to the absolute op index when it is falsy.
    JumpIfFalse(u32),
    /// Unconditional jump to the absolute op index.
    Jump(u32),
    /// Fold the top `n` values into one concatenation (deepest = msb
    /// part, matching source order).
    ConcatN(u16),
    /// Validate the replication count on top of stack (kept there).
    RepeatGuard,
    /// Pop the value, pop the count, push the replication.
    Repeat,
    /// Pop the index, pop the base, push the selected bit.
    BitIndex,
    /// Replace the top of stack with its `[msb:lsb]` slice.
    Slice(u32, u32),
    /// Pop `argc` arguments and apply a system function.
    SysCall {
        /// Function name without the `$`.
        name: Box<str>,
        /// Argument count.
        argc: u8,
    },
    /// Resolve a history call via [`ExecEnv::history`]. `arg` and `n`
    /// index [`ExprProg::subs`].
    History {
        /// Which history function.
        kind: HistoryKind,
        /// Sub-program for the sampled expression.
        arg: u32,
        /// Sub-program for `$past`'s cycle count (evaluated at the current
        /// tick), if present.
        n: Option<u32>,
    },
    /// Raise a compile-time-known error lazily, when (and only when) this
    /// operand would actually be evaluated.
    Fail(EvalError),
    /// Copy the top of stack into temporary slot `i` (value stays on the
    /// stack). Emitted by the CSE materialiser; only ever appears at
    /// unconditional positions of a program.
    StoreTmp(u32),
    /// Push the value of temporary slot `i`.
    LoadTmp(u32),
    /// Fused `[…lhs…, Const, Binary]`: apply `op` with a constant rhs to
    /// the top of stack.
    BinConst {
        /// Operator.
        op: BinaryOp,
        /// Constant right-hand operand.
        rhs: Value,
    },
    /// Fused `[Load a, Load b, Binary]`.
    LoadBin {
        /// Operator.
        op: BinaryOp,
        /// Left signal.
        a: SigId,
        /// Right signal.
        b: SigId,
    },
    /// Fused `[Load sig, Const, Binary]`.
    LoadBinConst {
        /// Operator.
        op: BinaryOp,
        /// Left signal.
        sig: SigId,
        /// Constant right-hand operand.
        rhs: Value,
    },
    /// Fused `[Load sig, Unary]`.
    LoadUnary {
        /// Operator.
        op: UnaryOp,
        /// Operand signal.
        sig: SigId,
    },
}

/// A compiled expression: a postfix program plus nested sub-programs for
/// history calls.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExprProg {
    /// Postfix instruction stream.
    pub ops: Vec<Op>,
    /// Sub-programs referenced by [`Op::History`].
    pub subs: Vec<ExprProg>,
    /// Number of temporary slots used by [`Op::StoreTmp`]/[`Op::LoadTmp`]
    /// (0 for unoptimized programs).
    pub n_tmps: u32,
}

impl ExprProg {
    /// True when the program is a lone constant (used to classify static
    /// bit-select indices during levelization).
    pub(crate) fn is_const(&self) -> bool {
        matches!(self.ops.as_slice(), [Op::Const(_)])
    }

    /// Appends every signal the program (including sub-programs) reads to
    /// `out`, deduplicated against its current contents.
    pub fn collect_sigs(&self, out: &mut Vec<SigId>) {
        let push = |s: SigId, out: &mut Vec<SigId>| {
            if !out.contains(&s) {
                out.push(s);
            }
        };
        for op in &self.ops {
            match op {
                Op::Load(s) | Op::LoadBinConst { sig: s, .. } | Op::LoadUnary { sig: s, .. } => {
                    push(*s, out)
                }
                Op::LoadBin { a, b, .. } => {
                    push(*a, out);
                    push(*b, out);
                }
                _ => {}
            }
        }
        for sub in &self.subs {
            sub.collect_sigs(out);
        }
    }
}

/// Value environment of the stack machine.
pub trait ExecEnv {
    /// Current value of an interned signal.
    fn load(&self, sig: SigId) -> Value;

    /// Resolves a non-history system call (same default as
    /// [`crate::eval::Env::sys_call`]).
    fn sys_call(&self, name: &str, args: &[Value]) -> Result<Value, EvalError> {
        default_sys_call(name, args)
    }

    /// Resolves a history call (`$past` and friends). Environments without
    /// sampled history reject it, matching the interpreter reaching
    /// [`crate::eval::Env::sys_call`] with an unsupported name.
    fn history(&self, kind: HistoryKind, _arg: &ExprProg, _n: usize) -> Result<Value, EvalError> {
        let name = match kind {
            HistoryKind::Past => "past",
            HistoryKind::Rose => "rose",
            HistoryKind::Fell => "fell",
            HistoryKind::Stable => "stable",
        };
        Err(EvalError::UnsupportedSysCall(name.to_string()))
    }
}

/// Executes a compiled expression program.
///
/// `stack` is caller-provided scratch so hot loops don't allocate; it may
/// be non-empty (nested evaluation) and is restored to its entry length on
/// both success and error. Temporary slots live in the same scratch
/// vector, below the program's operand area.
///
/// # Errors
///
/// Returns the same [`EvalError`]s the AST interpreter raises for the
/// source expression.
pub fn run<E: ExecEnv + ?Sized>(
    prog: &ExprProg,
    env: &E,
    stack: &mut Vec<Value>,
) -> Result<Value, EvalError> {
    let base = stack.len();
    for _ in 0..prog.n_tmps {
        stack.push(Value::zero(1));
    }
    match run_inner(prog, env, stack, base) {
        Ok(v) => {
            stack.truncate(base);
            Ok(v)
        }
        Err(e) => {
            stack.truncate(base);
            Err(e)
        }
    }
}

fn run_inner<E: ExecEnv + ?Sized>(
    prog: &ExprProg,
    env: &E,
    stack: &mut Vec<Value>,
    base: usize,
) -> Result<Value, EvalError> {
    let ops = &prog.ops;
    let mut pc = 0usize;
    while pc < ops.len() {
        match &ops[pc] {
            Op::Const(v) => stack.push(*v),
            Op::Load(sig) => stack.push(env.load(*sig)),
            Op::Unary(op) => {
                let v = stack.pop().expect("unary operand");
                stack.push(crate::eval::unary(*op, v));
            }
            Op::Binary(op) => {
                let b = stack.pop().expect("binary rhs");
                let a = stack.pop().expect("binary lhs");
                stack.push(crate::eval::binary(*op, a, b)?);
            }
            Op::BinConst { op, rhs } => {
                let a = stack.pop().expect("binary lhs");
                stack.push(crate::eval::binary(*op, a, *rhs)?);
            }
            Op::LoadBin { op, a, b } => {
                stack.push(crate::eval::binary(*op, env.load(*a), env.load(*b))?);
            }
            Op::LoadBinConst { op, sig, rhs } => {
                stack.push(crate::eval::binary(*op, env.load(*sig), *rhs)?);
            }
            Op::LoadUnary { op, sig } => {
                stack.push(crate::eval::unary(*op, env.load(*sig)));
            }
            Op::StoreTmp(i) => {
                let v = *stack.last().expect("tmp source");
                stack[base + *i as usize] = v;
            }
            Op::LoadTmp(i) => {
                let v = stack[base + *i as usize];
                stack.push(v);
            }
            Op::JumpIfFalse(target) => {
                let c = stack.pop().expect("jump condition");
                if !c.is_truthy() {
                    pc = *target as usize;
                    continue;
                }
            }
            Op::Jump(target) => {
                pc = *target as usize;
                continue;
            }
            Op::ConcatN(n) => {
                let n = *n as usize;
                debug_assert!(n >= 1 && stack.len() >= base + n);
                let first = stack.len() - n;
                let mut acc = stack[first];
                for v in &stack[first + 1..] {
                    acc = acc.concat(*v);
                }
                stack.truncate(first);
                stack.push(acc);
            }
            Op::RepeatGuard => {
                let n = stack.last().expect("repeat count").bits();
                if n == 0 || n > 64 {
                    return Err(EvalError::Malformed(format!(
                        "replication count {n} outside 1..=64"
                    )));
                }
            }
            Op::Repeat => {
                let v = stack.pop().expect("repeat value");
                let n = stack.pop().expect("repeat count").bits();
                let mut acc = v;
                for _ in 1..n {
                    acc = acc.concat(v);
                }
                stack.push(acc);
            }
            Op::BitIndex => {
                let i = stack.pop().expect("bit index").bits();
                let bse = stack.pop().expect("bit base");
                stack.push(Value::bit(
                    u32::try_from(i).map(|i| bse.get_bit(i)).unwrap_or(false),
                ));
            }
            Op::Slice(msb, lsb) => {
                let bse = stack.pop().expect("slice base");
                stack.push(bse.slice(*msb, *lsb));
            }
            Op::SysCall { name, argc } => {
                let argc = *argc as usize;
                debug_assert!(stack.len() >= base + argc);
                let first = stack.len() - argc;
                let r = env.sys_call(name, &stack[first..])?;
                stack.truncate(first);
                stack.push(r);
            }
            Op::History { kind, arg, n } => {
                let n = match n {
                    Some(id) => {
                        let v = run(&prog.subs[*id as usize], env, stack)?;
                        usize::try_from(v.bits()).unwrap_or(usize::MAX)
                    }
                    None => 1,
                };
                let v = env.history(*kind, &prog.subs[*arg as usize], n)?;
                stack.push(v);
            }
            Op::Fail(e) => return Err(e.clone()),
        }
        pc += 1;
    }
    Ok(stack.pop().expect("program result"))
}

// ---------------------------------------------------------------------------
// Direct AST → bytecode compilation (property programs)
// ---------------------------------------------------------------------------

/// Compiles `expr` into a postfix program.
///
/// `resolve` maps identifiers to signals/constants; `history` enables
/// [`Op::History`] lowering of `$past`/`$rose`/`$fell`/`$stable` (trace
/// environments). With `history` disabled those calls compile to plain
/// [`Op::SysCall`]s, which the default environment rejects at execution
/// time exactly like the interpreter.
pub fn compile_expr<R>(expr: &Expr, resolve: &R, history: bool) -> ExprProg
where
    R: Fn(&str) -> NameRef,
{
    let mut prog = ExprProg::default();
    emit(expr, resolve, history, &mut prog);
    prog
}

fn emit<R>(expr: &Expr, resolve: &R, history: bool, prog: &mut ExprProg)
where
    R: Fn(&str) -> NameRef,
{
    match expr {
        Expr::Number { value, width, .. } => {
            prog.ops
                .push(Op::Const(Value::new(*value, width.unwrap_or(32).min(64))));
        }
        Expr::Ident { name, .. } => emit_name(name, resolve, prog),
        Expr::Unary { op, operand, .. } => {
            emit(operand, resolve, history, prog);
            prog.ops.push(Op::Unary(*op));
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            emit(lhs, resolve, history, prog);
            emit(rhs, resolve, history, prog);
            prog.ops.push(Op::Binary(*op));
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
            ..
        } => {
            emit(cond, resolve, history, prog);
            let jif = prog.ops.len();
            prog.ops.push(Op::JumpIfFalse(0));
            emit(then_expr, resolve, history, prog);
            let jend = prog.ops.len();
            prog.ops.push(Op::Jump(0));
            let else_start = prog.ops.len() as u32;
            emit(else_expr, resolve, history, prog);
            let end = prog.ops.len() as u32;
            prog.ops[jif] = Op::JumpIfFalse(else_start);
            prog.ops[jend] = Op::Jump(end);
        }
        Expr::Concat { parts, .. } => {
            if parts.is_empty() {
                prog.ops
                    .push(Op::Fail(EvalError::Malformed("empty concatenation".into())));
                return;
            }
            for p in parts {
                emit(p, resolve, history, prog);
            }
            prog.ops
                .push(Op::ConcatN(u16::try_from(parts.len()).unwrap_or(u16::MAX)));
        }
        Expr::Repeat { count, value, .. } => {
            emit(count, resolve, history, prog);
            prog.ops.push(Op::RepeatGuard);
            emit(value, resolve, history, prog);
            prog.ops.push(Op::Repeat);
        }
        Expr::Bit { name, index, .. } => {
            emit_name(name, resolve, prog);
            emit(index, resolve, history, prog);
            prog.ops.push(Op::BitIndex);
        }
        Expr::Part { name, range, .. } => {
            emit_name(name, resolve, prog);
            prog.ops.push(Op::Slice(range.msb, range.lsb));
        }
        Expr::SysCall { name, args, .. } => {
            let kind = match name.as_str() {
                "past" => Some(HistoryKind::Past),
                "rose" => Some(HistoryKind::Rose),
                "fell" => Some(HistoryKind::Fell),
                "stable" => Some(HistoryKind::Stable),
                _ => None,
            };
            match kind {
                Some(kind) if history => {
                    let Some(arg0) = args.first() else {
                        prog.ops.push(Op::Fail(EvalError::Malformed(format!(
                            "${name} requires an argument"
                        ))));
                        return;
                    };
                    let mut sub = ExprProg::default();
                    emit(arg0, resolve, history, &mut sub);
                    let arg = prog.subs.len() as u32;
                    prog.subs.push(sub);
                    let n = (kind == HistoryKind::Past)
                        .then(|| args.get(1))
                        .flatten()
                        .map(|e| {
                            let mut sub = ExprProg::default();
                            emit(e, resolve, history, &mut sub);
                            let id = prog.subs.len() as u32;
                            prog.subs.push(sub);
                            id
                        });
                    prog.ops.push(Op::History { kind, arg, n });
                }
                _ => {
                    for a in args {
                        emit(a, resolve, history, prog);
                    }
                    prog.ops.push(Op::SysCall {
                        name: name.as_str().into(),
                        argc: u8::try_from(args.len()).unwrap_or(u8::MAX),
                    });
                }
            }
        }
    }
}

fn emit_name<R>(name: &str, resolve: &R, prog: &mut ExprProg)
where
    R: Fn(&str) -> NameRef,
{
    match resolve(name) {
        NameRef::Sig(s) => prog.ops.push(Op::Load(s)),
        NameRef::Const(v) => prog.ops.push(Op::Const(v)),
        NameRef::Unknown => prog
            .ops
            .push(Op::Fail(EvalError::UnknownSignal(name.to_string()))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NoEnv;
    impl ExecEnv for NoEnv {
        fn load(&self, _: SigId) -> Value {
            unreachable!()
        }
    }

    #[test]
    fn stack_is_restored_after_errors() {
        let prog = ExprProg {
            ops: vec![
                Op::Const(Value::new(1, 4)),
                Op::Fail(EvalError::DivideByZero),
            ],
            ..ExprProg::default()
        };
        let mut stack = vec![Value::bit(true)];
        assert!(run(&prog, &NoEnv, &mut stack).is_err());
        assert_eq!(stack.len(), 1, "scratch stack must be restored");
    }

    #[test]
    fn tmp_slots_cache_and_replay_values() {
        // (5 + 1) stored to tmp0, then tmp0 * tmp0.
        let prog = ExprProg {
            ops: vec![
                Op::Const(Value::new(5, 8)),
                Op::BinConst {
                    op: BinaryOp::Add,
                    rhs: Value::new(1, 8),
                },
                Op::StoreTmp(0),
                Op::LoadTmp(0),
                Op::Binary(BinaryOp::Mul),
            ],
            subs: Vec::new(),
            n_tmps: 1,
        };
        let mut stack = Vec::new();
        let v = run(&prog, &NoEnv, &mut stack).expect("run");
        assert_eq!(v.bits(), 36);
        assert!(stack.is_empty(), "tmp area is reclaimed");
    }

    #[test]
    fn fused_ops_match_their_expanded_forms() {
        struct TwoSigs;
        impl ExecEnv for TwoSigs {
            fn load(&self, sig: SigId) -> Value {
                Value::new(u64::from(sig.0) + 3, 8)
            }
        }
        let fused = ExprProg {
            ops: vec![Op::LoadBin {
                op: BinaryOp::Mul,
                a: SigId(0),
                b: SigId(1),
            }],
            ..ExprProg::default()
        };
        let plain = ExprProg {
            ops: vec![
                Op::Load(SigId(0)),
                Op::Load(SigId(1)),
                Op::Binary(BinaryOp::Mul),
            ],
            ..ExprProg::default()
        };
        let mut stack = Vec::new();
        assert_eq!(
            run(&fused, &TwoSigs, &mut stack),
            run(&plain, &TwoSigs, &mut stack)
        );
        let mut sigs = Vec::new();
        fused.collect_sigs(&mut sigs);
        assert_eq!(sigs, vec![SigId(0), SigId(1)]);
    }
}
