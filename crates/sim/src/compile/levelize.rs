//! Levelization: topological scheduling of combinational steps.
//!
//! Orders continuous assigns and combinational always blocks by their
//! signal dependencies so one ordered pass settles the logic. Designs the
//! sort cannot prove order-independent (dependency cycles, latch-style
//! incomplete blocks, dynamically indexed bit writes) keep the
//! interpreter's declaration-order fixpoint loop, preserving its
//! semantics — including `SimError::CombDivergence` — exactly.
//!
//! The *verdict* (levelizable or not) is always computed on the raw
//! (`OptLevel::None`) emission: optimization only ever removes
//! dependencies, so a raw-levelizable design stays levelizable, but the
//! reverse rewrite (e.g. `x & 0 → 0` breaking a false cycle) must not
//! change which execution discipline — or which verification engine —
//! a design gets at different opt levels.

use super::{CLValue, CStmt, CombStep};
use crate::compile::bytecode::ExprProg;
use asv_ir::SigId;

/// Topologically orders combinational steps so one pass settles the logic.
///
/// Returns declaration order with `levelized = false` when exact
/// interpreter equivalence cannot be guaranteed by a single pass:
/// dependency cycles, latch-style blocks whose targets are not assigned on
/// every path, or dynamically indexed bit writes (whose stale-index
/// residues are iteration artefacts the fixpoint loop reproduces).
pub(crate) fn levelize(comb: &[CombStep], n_signals: usize) -> (Vec<usize>, bool) {
    let decl_order: Vec<usize> = (0..comb.len()).collect();
    let mut reads: Vec<Vec<SigId>> = Vec::with_capacity(comb.len());
    let mut writes: Vec<Vec<SigId>> = Vec::with_capacity(comb.len());
    for step in comb {
        let mut fx = StepFx::default();
        match step {
            CombStep::Assign { lhs, rhs } => {
                fx.read_prog(rhs);
                if !fx.write_lvalue(lhs) {
                    return (decl_order, false);
                }
            }
            CombStep::Block(body) => {
                if !fx.walk(body) {
                    return (decl_order, false);
                }
                // For branching blocks every written signal must be fully
                // assigned (whole-signal write) on every path — otherwise
                // the block is a latch, whose settled value depends on the
                // fixpoint iteration the interpreter performs.
                let latch_free = !fx.branching
                    || fx.writes.iter().all(|sig| {
                        fx.whole_targets.contains(sig) && assigns_on_all_paths(body, *sig)
                    });
                if !latch_free {
                    return (decl_order, false);
                }
            }
        }
        reads.push(fx.reads);
        writes.push(fx.writes);
    }

    // writer → reader and (declaration-ordered) writer → writer edges.
    let n = comb.len();
    let mut writers_of: Vec<Vec<usize>> = vec![Vec::new(); n_signals];
    for (i, ws) in writes.iter().enumerate() {
        for w in ws {
            writers_of[w.idx()].push(i);
        }
    }
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    let add_edge = |succs: &mut Vec<Vec<usize>>, indeg: &mut Vec<usize>, a: usize, b: usize| {
        if a != b && !succs[a].contains(&b) {
            succs[a].push(b);
            indeg[b] += 1;
        }
    };
    for (j, rs) in reads.iter().enumerate() {
        for r in rs {
            for &i in &writers_of[r.idx()] {
                if i == j {
                    // A step reading its own output is a combinational
                    // cycle; keep the fixpoint loop.
                    return (decl_order, false);
                }
                add_edge(&mut succs, &mut indeg, i, j);
            }
        }
    }
    for writers in &writers_of {
        for pair in writers.windows(2) {
            add_edge(&mut succs, &mut indeg, pair[0], pair[1]);
        }
    }

    // Kahn's algorithm, smallest declaration index first for determinism.
    let mut ready: std::collections::BTreeSet<usize> = indeg
        .iter()
        .enumerate()
        .filter(|(_, &d)| d == 0)
        .map(|(i, _)| i)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(&i) = ready.iter().next() {
        ready.remove(&i);
        order.push(i);
        for &j in &succs[i] {
            indeg[j] -= 1;
            if indeg[j] == 0 {
                ready.insert(j);
            }
        }
    }
    if order.len() == n {
        (order, true)
    } else {
        (decl_order, false)
    }
}

/// Read/write effects of one combinational step, plus the structural
/// properties levelization depends on.
#[derive(Default)]
pub(crate) struct StepFx {
    pub(crate) reads: Vec<SigId>,
    pub(crate) writes: Vec<SigId>,
    /// True when the step contains `if`/`case` control flow.
    branching: bool,
    /// Signals assigned via whole-signal writes (for the latch check).
    whole_targets: Vec<SigId>,
}

impl StepFx {
    /// Effects of one whole step (used by the observability analysis in
    /// [`super::CompiledDesign::sym_live`]).
    pub(crate) fn of_step(step: &CombStep) -> StepFx {
        let mut fx = StepFx::default();
        match step {
            CombStep::Assign { lhs, rhs } => {
                fx.read_prog(rhs);
                let _ = fx.write_lvalue(lhs);
            }
            CombStep::Block(body) => {
                let _ = fx.walk(body);
            }
        }
        fx
    }

    /// Effects of one clocked block.
    pub(crate) fn of_stmt(s: &CStmt) -> StepFx {
        let mut fx = StepFx::default();
        let _ = fx.walk(s);
        fx
    }

    fn read_prog(&mut self, prog: &ExprProg) {
        // `collect_sigs` descends into sub-programs and fused ops, so
        // every op kind with signal reads feeds the dependency graph.
        prog.collect_sigs(&mut self.reads);
    }

    /// Records a write; returns `false` when the target shape rules out
    /// levelization (dynamic bit index).
    fn write_lvalue(&mut self, lv: &CLValue) -> bool {
        match lv {
            CLValue::Whole(s) => {
                if !self.writes.contains(s) {
                    self.writes.push(*s);
                }
                if !self.whole_targets.contains(s) {
                    self.whole_targets.push(*s);
                }
                true
            }
            CLValue::Bit { sig, index } => {
                if !self.writes.contains(sig) {
                    self.writes.push(*sig);
                }
                self.read_prog(index);
                index.is_const()
            }
            CLValue::Part { sig, .. } => {
                if !self.writes.contains(sig) {
                    self.writes.push(*sig);
                }
                true
            }
            CLValue::Concat(parts) => parts.iter().all(|p| self.write_lvalue(p)),
            CLValue::Unknown(_) => true,
        }
    }

    /// Walks a block body collecting effects; returns `false` on shapes
    /// that rule out levelization.
    fn walk(&mut self, s: &CStmt) -> bool {
        match s {
            CStmt::Block(stmts) => stmts.iter().all(|st| self.walk(st)),
            CStmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                self.branching = true;
                self.read_prog(cond);
                self.walk(then_branch) && else_branch.as_ref().is_none_or(|e| self.walk(e))
            }
            CStmt::Case {
                scrutinee,
                arms,
                default,
                ..
            } => {
                self.branching = true;
                self.read_prog(scrutinee);
                for arm in arms {
                    for l in &arm.labels {
                        self.read_prog(l);
                    }
                }
                arms.iter().all(|a| self.walk(&a.body))
                    && default.as_ref().is_none_or(|d| self.walk(d))
            }
            CStmt::Assign { lhs, rhs, .. } => {
                self.read_prog(rhs);
                self.write_lvalue(lhs)
            }
            CStmt::Empty => true,
        }
    }
}

/// True when every control path through `s` performs a whole-signal
/// assignment to `sig`.
fn assigns_on_all_paths(s: &CStmt, sig: SigId) -> bool {
    match s {
        CStmt::Block(stmts) => stmts.iter().any(|st| assigns_on_all_paths(st, sig)),
        CStmt::If {
            then_branch,
            else_branch,
            ..
        } => else_branch.as_ref().is_some_and(|e| {
            assigns_on_all_paths(then_branch, sig) && assigns_on_all_paths(e, sig)
        }),
        CStmt::Case { arms, default, .. } => default.as_ref().is_some_and(|d| {
            arms.iter().all(|a| assigns_on_all_paths(&a.body, sig)) && assigns_on_all_paths(d, sig)
        }),
        CStmt::Assign { lhs, .. } => matches!(lhs, CLValue::Whole(s) if *s == sig),
        CStmt::Empty => false,
    }
}
