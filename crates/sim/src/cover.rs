//! Execution coverage instrumentation for the compiled backend.
//!
//! The coverage-guided fuzzer (`asv-fuzz`) needs a feedback signal from
//! each simulation run. Three point classes are tracked in a [`CovMap`]:
//!
//! * **Branch arms** — every `if` arm (taken/not-taken) and every `case`
//!   arm (including the implicit default) of a compiled statement carries
//!   a *branch site* id assigned at lowering time; executing the arm marks
//!   the site.
//! * **Signal toggles** — for every bit of every signal, whether the bit
//!   has been observed at both 0 and 1 across the sampled states of the
//!   run (2-state toggle coverage).
//! * **Assertion antecedents** — whether each assertion directive
//!   completed at least one non-vacuous attempt (recorded by the SVA
//!   checker in `asv-sva`, which owns property semantics).
//!
//! Instrumentation is **zero-cost when disabled**: the executor is generic
//! over a [`CovSink`] and the default [`NoCov`] sink monomorphises every
//! probe away, so the uninstrumented hot path compiles to exactly the
//! PR-1 code (see the `simulate_64_cycles_compiled` bench).

use crate::compile::CompiledDesign;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Receiver of branch-arm execution events.
///
/// The compiled executor calls [`CovSink::branch`] once per taken branch
/// arm. [`NoCov`] is the zero-cost disabled sink; [`CovMap`] records.
pub trait CovSink {
    /// Marks branch site `site` as executed.
    fn branch(&mut self, site: u32);

    /// Credits `n` executed bytecode operations (called once per
    /// dispatched statement-expression program with that program's op
    /// count). Default no-op — and deliberately **not** implemented by
    /// [`CovMap`]: coverage maps must stay bit-identical across opt
    /// levels while optimized programs are shorter, so op counts never
    /// land in a coverage map. [`OpsTally`] is the counting sink.
    #[inline(always)]
    fn ops(&mut self, n: u64) {
        let _ = n;
    }
}

/// The disabled sink: every probe is an inlined no-op, so instrumented
/// and uninstrumented executors compile to identical code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoCov;

impl CovSink for NoCov {
    #[inline(always)]
    fn branch(&mut self, _site: u32) {}
}

/// Wraps any sink, additionally tallying dispatched bytecode ops into a
/// borrowed counter. This is how `Simulator` counts work without
/// perturbing the wrapped sink's coverage map (see [`CovSink::ops`]);
/// the count is a pure function of bytecode and stimulus, so it is
/// deterministic across thread counts and reruns.
#[derive(Debug)]
pub struct OpsTally<'a, C: CovSink> {
    /// The sink branch probes are forwarded to.
    pub inner: &'a mut C,
    /// Accumulates executed op counts (saturating).
    pub ops: &'a mut u64,
}

impl<C: CovSink> CovSink for OpsTally<'_, C> {
    #[inline(always)]
    fn branch(&mut self, site: u32) {
        self.inner.branch(site);
    }

    #[inline(always)]
    fn ops(&mut self, n: u64) {
        *self.ops = self.ops.saturating_add(n);
    }
}

fn width_mask(w: u32) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

#[inline]
fn set_bit(words: &mut [u64], i: u32) {
    let (w, b) = ((i / 64) as usize, i % 64);
    if w < words.len() {
        words[w] |= 1u64 << b;
    }
}

#[inline]
fn get_bit(words: &[u64], i: u32) -> bool {
    let (w, b) = ((i / 64) as usize, i % 64);
    w < words.len() && (words[w] >> b) & 1 == 1
}

fn popcount(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// A coverage map for one design: branch-arm bits, per-signal toggle
/// masks and per-assertion antecedent-fired bits.
///
/// Maps for the same design are mergeable; [`CovMap::merge`] returns the
/// number of newly covered points, which is the fuzzer's novelty signal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CovMap {
    /// Bitset over branch sites (see [`CompiledDesign::branch_sites`]).
    branch: Vec<u64>,
    n_branch: u32,
    /// Per-signal mask of bits observed at 0.
    seen0: Vec<u64>,
    /// Per-signal mask of bits observed at 1.
    seen1: Vec<u64>,
    /// Declared signal widths (denominator of toggle coverage).
    widths: Vec<u32>,
    /// Bitset over assertion directives whose antecedent fired.
    antecedent: Vec<u64>,
    n_assert: u32,
}

impl CovMap {
    /// An empty map sized for `compiled`, with `assertions` antecedent
    /// slots (the assertion axis is owned by the SVA layer, which knows
    /// the directive count).
    pub fn new(compiled: &CompiledDesign, assertions: usize) -> Self {
        let n_branch = compiled.branch_sites();
        let widths: Vec<u32> = (0..compiled.names().len())
            .map(|i| compiled.width(crate::compile::SigId(i as u32)))
            .collect();
        let n_sig = widths.len();
        CovMap {
            branch: vec![0; n_branch.div_ceil(64) as usize],
            n_branch,
            seen0: vec![0; n_sig],
            seen1: vec![0; n_sig],
            widths,
            antecedent: vec![0; assertions.div_ceil(64)],
            n_assert: assertions as u32,
        }
    }

    /// Clears every recorded point in place, keeping the allocated
    /// bitsets — the restart path for executors that reuse one map
    /// across stimuli.
    pub fn reset(&mut self) {
        self.branch.fill(0);
        self.seen0.fill(0);
        self.seen1.fill(0);
        self.antecedent.fill(0);
    }

    /// Records one sampled state row (toggle coverage). `row` must follow
    /// the compiled design's signal order.
    pub fn record_row(&mut self, row: &[Value]) {
        debug_assert_eq!(row.len(), self.widths.len());
        for (i, v) in row.iter().enumerate() {
            let mask = width_mask(self.widths[i]);
            self.seen1[i] |= v.bits();
            self.seen0[i] |= !v.bits() & mask;
        }
    }

    /// Marks assertion directive `idx` as having completed a non-vacuous
    /// attempt.
    pub fn record_antecedent(&mut self, idx: usize) {
        if (idx as u32) < self.n_assert {
            set_bit(&mut self.antecedent, idx as u32);
        }
    }

    /// True when branch site `site` has been executed.
    pub fn branch_hit(&self, site: u32) -> bool {
        get_bit(&self.branch, site)
    }

    /// True when assertion directive `idx` completed non-vacuously.
    pub fn antecedent_hit(&self, idx: usize) -> bool {
        get_bit(&self.antecedent, idx as u32)
    }

    /// Number of points `other` would newly cover if merged into `self`
    /// (branch arms, fully toggled bits, antecedents), without mutating
    /// either map — the counting half of [`CovMap::merge`], for ranking
    /// loops that probe many candidates per accepted merge.
    ///
    /// # Panics
    ///
    /// Panics when the maps were built for different designs.
    pub fn new_points(&self, other: &CovMap) -> usize {
        assert_eq!(self.widths, other.widths, "coverage maps of one design");
        let mut new = 0usize;
        for (a, b) in self.branch.iter().zip(&other.branch) {
            new += (b & !*a).count_ones() as usize;
        }
        for i in 0..self.widths.len() {
            let before = self.seen0[i] & self.seen1[i];
            let after = (self.seen0[i] | other.seen0[i]) & (self.seen1[i] | other.seen1[i]);
            new += (after & !before).count_ones() as usize;
        }
        for (a, b) in self.antecedent.iter().zip(&other.antecedent) {
            new += (b & !*a).count_ones() as usize;
        }
        new
    }

    /// Merges `other` into `self`, returning how many coverage points
    /// (branch arms, fully toggled bits, antecedents) became newly
    /// covered — the fuzzer's novelty score for the run behind `other`.
    ///
    /// # Panics
    ///
    /// Panics when the maps were built for different designs.
    pub fn merge(&mut self, other: &CovMap) -> usize {
        assert_eq!(self.widths, other.widths, "coverage maps of one design");
        let mut new = 0usize;
        for (a, b) in self.branch.iter_mut().zip(&other.branch) {
            new += (b & !*a).count_ones() as usize;
            *a |= b;
        }
        for i in 0..self.widths.len() {
            let before = self.seen0[i] & self.seen1[i];
            self.seen0[i] |= other.seen0[i];
            self.seen1[i] |= other.seen1[i];
            let after = self.seen0[i] & self.seen1[i];
            new += (after & !before).count_ones() as usize;
        }
        for (a, b) in self.antecedent.iter_mut().zip(&other.antecedent) {
            new += (b & !*a).count_ones() as usize;
            *a |= b;
        }
        new
    }

    /// `(covered, total)` branch arms.
    pub fn branch_coverage(&self) -> (usize, usize) {
        (popcount(&self.branch), self.n_branch as usize)
    }

    /// `(covered, total)` toggle bits (a bit counts once observed at both
    /// 0 and 1).
    pub fn toggle_coverage(&self) -> (usize, usize) {
        let covered = self
            .seen0
            .iter()
            .zip(&self.seen1)
            .map(|(z, o)| (z & o).count_ones() as usize)
            .sum();
        let total = self.widths.iter().map(|&w| w as usize).sum();
        (covered, total)
    }

    /// `(covered, total)` assertion antecedents.
    pub fn antecedent_coverage(&self) -> (usize, usize) {
        (popcount(&self.antecedent), self.n_assert as usize)
    }

    /// Total covered points across all three classes.
    pub fn covered_points(&self) -> usize {
        self.branch_coverage().0 + self.toggle_coverage().0 + self.antecedent_coverage().0
    }

    /// Decomposes the map into its raw bitset planes, for serialisation
    /// (the `asv-store` codec persists coverage maps by value; the map
    /// itself stays encoding-agnostic). Inverse of [`CovMap::from_parts`].
    pub fn to_parts(&self) -> CovMapParts<'_> {
        CovMapParts {
            branch: &self.branch,
            n_branch: self.n_branch,
            seen0: &self.seen0,
            seen1: &self.seen1,
            widths: &self.widths,
            antecedent: &self.antecedent,
            n_assert: self.n_assert,
        }
    }

    /// Rebuilds a map from raw planes produced by [`CovMap::to_parts`].
    /// Returns `None` when the planes are structurally inconsistent
    /// (bitset lengths not matching their declared axis sizes), so a
    /// corrupted serialisation can never build a map that panics later.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        branch: Vec<u64>,
        n_branch: u32,
        seen0: Vec<u64>,
        seen1: Vec<u64>,
        widths: Vec<u32>,
        antecedent: Vec<u64>,
        n_assert: u32,
    ) -> Option<Self> {
        let ok = branch.len() == n_branch.div_ceil(64) as usize
            && antecedent.len() == n_assert.div_ceil(64) as usize
            && seen0.len() == widths.len()
            && seen1.len() == widths.len();
        ok.then_some(CovMap {
            branch,
            n_branch,
            seen0,
            seen1,
            widths,
            antecedent,
            n_assert,
        })
    }
}

/// Borrowed raw planes of a [`CovMap`] (see [`CovMap::to_parts`]).
#[derive(Debug, Clone, Copy)]
pub struct CovMapParts<'a> {
    /// Branch-arm bitset.
    pub branch: &'a [u64],
    /// Number of branch sites.
    pub n_branch: u32,
    /// Per-signal observed-at-0 masks.
    pub seen0: &'a [u64],
    /// Per-signal observed-at-1 masks.
    pub seen1: &'a [u64],
    /// Declared signal widths.
    pub widths: &'a [u32],
    /// Antecedent-fired bitset.
    pub antecedent: &'a [u64],
    /// Number of assertion directives.
    pub n_assert: u32,
}

impl CovSink for CovMap {
    #[inline]
    fn branch(&mut self, site: u32) {
        if site < self.n_branch {
            set_bit(&mut self.branch, site);
        }
    }
}

/// Human- and machine-readable summary of a [`CovMap`]: covered/total and
/// percentages per coverage class. Exported through `asv-eval` so the
/// datagen pipeline can rank stimuli by scenario novelty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageReport {
    /// Executed branch arms.
    pub branch_covered: usize,
    /// Total branch arms.
    pub branch_total: usize,
    /// Bits observed at both 0 and 1.
    pub toggle_covered: usize,
    /// Total signal bits.
    pub toggle_total: usize,
    /// Assertions that completed a non-vacuous attempt.
    pub antecedent_covered: usize,
    /// Total assertion directives.
    pub antecedent_total: usize,
}

impl CoverageReport {
    /// Summarises a coverage map.
    pub fn of(cov: &CovMap) -> Self {
        let (branch_covered, branch_total) = cov.branch_coverage();
        let (toggle_covered, toggle_total) = cov.toggle_coverage();
        let (antecedent_covered, antecedent_total) = cov.antecedent_coverage();
        CoverageReport {
            branch_covered,
            branch_total,
            toggle_covered,
            toggle_total,
            antecedent_covered,
            antecedent_total,
        }
    }

    fn pct(covered: usize, total: usize) -> f64 {
        if total == 0 {
            100.0
        } else {
            covered as f64 * 100.0 / total as f64
        }
    }

    /// Branch-arm coverage percentage (100 when there are no branches).
    pub fn branch_pct(&self) -> f64 {
        Self::pct(self.branch_covered, self.branch_total)
    }

    /// Toggle coverage percentage.
    pub fn toggle_pct(&self) -> f64 {
        Self::pct(self.toggle_covered, self.toggle_total)
    }

    /// Antecedent coverage percentage.
    pub fn antecedent_pct(&self) -> f64 {
        Self::pct(self.antecedent_covered, self.antecedent_total)
    }

    /// Covered points across all classes.
    pub fn covered(&self) -> usize {
        self.branch_covered + self.toggle_covered + self.antecedent_covered
    }

    /// Total points across all classes.
    pub fn total(&self) -> usize {
        self.branch_total + self.toggle_total + self.antecedent_total
    }
}

impl fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "branch {}/{} ({:.1}%), toggle {}/{} ({:.1}%), antecedent {}/{} ({:.1}%)",
            self.branch_covered,
            self.branch_total,
            self.branch_pct(),
            self.toggle_covered,
            self.toggle_total,
            self.toggle_pct(),
            self.antecedent_covered,
            self.antecedent_total,
            self.antecedent_pct(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_verilog::compile as velab;

    const MUX: &str = "module m(input s, input [3:0] a, input [3:0] b, output reg [3:0] y);\n\
         always @(*) begin if (s) y = a; else y = b; end\nendmodule";

    fn compiled(src: &str) -> CompiledDesign {
        CompiledDesign::compile(&velab(src).expect("compile"))
    }

    #[test]
    fn branch_sites_are_allocated() {
        let c = compiled(MUX);
        assert_eq!(c.branch_sites(), 2, "then + else arms");
    }

    #[test]
    fn branch_hits_are_recorded_per_arm() {
        let c = compiled(MUX);
        let mut cov = CovMap::new(&c, 0);
        let mut state = c.init_state();
        let mut stack = Vec::new();
        state[c.sig("s").unwrap().idx()] = Value::bit(true);
        c.settle_cov(&mut state, &mut stack, &mut cov).expect("ok");
        assert!(cov.branch_hit(0) && !cov.branch_hit(1));
        state[c.sig("s").unwrap().idx()] = Value::bit(false);
        c.settle_cov(&mut state, &mut stack, &mut cov).expect("ok");
        assert_eq!(cov.branch_coverage(), (2, 2));
    }

    #[test]
    fn toggle_coverage_needs_both_polarities() {
        let c = compiled(MUX);
        let mut cov = CovMap::new(&c, 0);
        let zeros = c.init_state();
        cov.record_row(&zeros);
        assert_eq!(cov.toggle_coverage().0, 0, "only zeros seen");
        let ones: Vec<Value> = zeros.iter().map(|v| Value::ones(v.width())).collect();
        cov.record_row(&ones);
        let (covered, total) = cov.toggle_coverage();
        assert_eq!(covered, total, "every bit saw both polarities");
    }

    #[test]
    fn merge_counts_only_new_points() {
        let c = compiled(MUX);
        let mut a = CovMap::new(&c, 2);
        let mut b = CovMap::new(&c, 2);
        CovSink::branch(&mut a, 0);
        CovSink::branch(&mut b, 0);
        CovSink::branch(&mut b, 1);
        b.record_antecedent(1);
        assert_eq!(a.new_points(&b), 2, "non-mutating count must agree");
        let new = a.merge(&b);
        assert_eq!(new, 2, "one new branch arm + one new antecedent");
        assert_eq!(a.new_points(&b), 0);
        assert_eq!(a.merge(&b), 0, "idempotent re-merge");
        assert!(a.antecedent_hit(1) && !a.antecedent_hit(0));
    }

    #[test]
    fn report_percentages_and_display() {
        let c = compiled(MUX);
        let mut cov = CovMap::new(&c, 1);
        CovSink::branch(&mut cov, 0);
        let r = CoverageReport::of(&cov);
        assert_eq!(r.branch_covered, 1);
        assert_eq!(r.branch_total, 2);
        assert!((r.branch_pct() - 50.0).abs() < 1e-9);
        assert_eq!(r.antecedent_pct(), 0.0);
        let s = r.to_string();
        assert!(s.contains("branch 1/2"), "got: {s}");
    }

    #[test]
    fn out_of_range_probes_are_ignored() {
        let c = compiled(MUX);
        let mut cov = CovMap::new(&c, 1);
        CovSink::branch(&mut cov, 999);
        cov.record_antecedent(999);
        assert_eq!(cov.covered_points(), 0);
    }
}
