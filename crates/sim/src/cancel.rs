//! Cooperative cancellation for long-running verification work.
//!
//! A [`CancelToken`] is a cheap, clonable flag shared between a
//! controller (the portfolio racer or job service in `asv-serve`) and the
//! hot loops of the verification engines: the CDCL search in `asv-sat`,
//! the campaign rounds in `asv-fuzz`, and the per-stimulus loops of the
//! enumeration/sampling oracle in `asv-sva`. Engines poll the token at a
//! bounded interval and unwind with an explicit `Cancelled` error — never
//! a panic — so a losing portfolio engine stops within one check
//! interval of the winner's verdict.
//!
//! The token lives in `asv-sim` (the lowest crate every engine already
//! depends on) so no new dependency edges are needed to thread it through
//! the stack.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared poison flag: once [`CancelToken::cancel`] is called, every
/// clone observes [`CancelToken::is_cancelled`] `== true` forever.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Poisons the token; idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True once any clone has been cancelled.
    ///
    /// A relaxed-acquire load of one `AtomicBool` — cheap enough to call
    /// from solver inner loops at a modest stride.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled());
        assert!(!u.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled());
        assert!(u.is_cancelled());
    }

    #[test]
    fn cancel_is_idempotent() {
        let t = CancelToken::new();
        t.cancel();
        t.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn default_is_fresh() {
        assert!(!CancelToken::default().is_cancelled());
    }
}
