//! Cooperative cancellation and resource budgets for long-running
//! verification work.
//!
//! A [`CancelToken`] is a cheap, clonable flag shared between a
//! controller (the portfolio racer or job service in `asv-serve`) and the
//! hot loops of the verification engines: the CDCL search in `asv-sat`,
//! the campaign rounds in `asv-fuzz`, and the per-stimulus loops of the
//! enumeration/sampling oracle in `asv-sva`. Engines poll the token at a
//! bounded interval and unwind with an explicit `Cancelled` error — never
//! a panic — so a losing portfolio engine stops within one check
//! interval of the winner's verdict.
//!
//! A [`Budget`] generalises the token into a full resource envelope: an
//! optional wall-clock (or injected-clock) [`Deadline`] plus caps on SAT
//! conflicts, fuzz campaign rounds and AIG nodes. Engines report overruns
//! as a structured [`Exhausted`] record instead of running unbounded, so
//! the serving layer can distinguish "the property fails" from "we ran
//! out of budget" and degrade honestly.
//!
//! Both live in `asv-sim` (the lowest crate every engine already depends
//! on) so no new dependency edges are needed to thread them through the
//! stack.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::fault::FaultSession;
use asv_trace::TraceHandle;

/// A shared poison flag: once [`CancelToken::cancel`] is called, every
/// clone observes [`CancelToken::is_cancelled`] `== true` forever.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Poisons the token; idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True once any clone has been cancelled.
    ///
    /// A relaxed-acquire load of one `AtomicBool` — cheap enough to call
    /// from solver inner loops at a modest stride.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// The bounded resource that ran out when an engine reports
/// [`Exhausted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// The wall-clock (or injected manual-clock) deadline expired.
    WallClock,
    /// The CDCL solver hit its conflict cap.
    SatConflicts,
    /// The fuzzer hit its campaign-round cap.
    FuzzRounds,
    /// Bit-blasting hit the AIG node cap.
    AigNodes,
    /// A [`crate::fault::FaultPlan`] injected a synthetic exhaustion at a
    /// probe point (only with the `fault-inject` feature).
    Injected,
}

impl std::fmt::Display for Resource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Resource::WallClock => "wall-clock deadline",
            Resource::SatConflicts => "SAT conflicts",
            Resource::FuzzRounds => "fuzz rounds",
            Resource::AigNodes => "AIG nodes",
            Resource::Injected => "injected exhaustion",
        };
        f.write_str(s)
    }
}

/// A structured budget-overrun record: which [`Resource`] ran out, how
/// much was spent, and what the cap was.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Exhausted {
    /// The resource that ran out.
    pub resource: Resource,
    /// Units spent when the overrun was detected (ms for wall clock,
    /// ticks for a manual clock, counts otherwise).
    pub spent: u64,
    /// The configured cap in the same units.
    pub limit: u64,
}

impl std::fmt::Display for Exhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "budget exhausted: {} ({} spent of {} allowed)",
            self.resource, self.spent, self.limit
        )
    }
}

/// Why a budgeted loop must stop: external cancellation or a spent
/// resource budget. Returned by the [`Budget`] polling helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stop {
    /// The [`CancelToken`] was poisoned (portfolio loser, service
    /// teardown, or an injected spurious cancellation).
    Cancelled,
    /// A resource cap was hit.
    Exhausted(Exhausted),
}

impl std::fmt::Display for Stop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stop::Cancelled => f.write_str("cancelled"),
            Stop::Exhausted(e) => e.fmt(f),
        }
    }
}

/// A deterministic, manually advanced clock for deadline tests: no
/// sleeps, no wall-clock reads — tests call [`ManualClock::advance`] and
/// the owning [`Deadline`] observes the new tick on its next poll.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    ticks: Arc<AtomicU64>,
}

impl ManualClock {
    /// A fresh clock at tick 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `ticks`; every [`Deadline`] holding a clone
    /// observes the new time on its next poll.
    pub fn advance(&self, ticks: u64) {
        self.ticks.fetch_add(ticks, Ordering::Release);
    }

    /// The current tick count.
    pub fn now(&self) -> u64 {
        self.ticks.load(Ordering::Acquire)
    }
}

/// A deadline: either a wall-clock duration from construction, or a
/// tick budget on an injected [`ManualClock`] (deterministic tests).
#[derive(Debug, Clone)]
pub enum Deadline {
    /// Expires `limit` after `start` on the real clock.
    Wall {
        /// When the budget was armed.
        start: Instant,
        /// Wall-clock allowance.
        limit: Duration,
    },
    /// Expires once the injected clock passes `limit` ticks.
    Manual {
        /// The injected clock, advanced explicitly by the test.
        clock: ManualClock,
        /// Tick allowance.
        limit: u64,
    },
}

impl Deadline {
    /// A wall-clock deadline `limit` from now.
    pub fn after(limit: Duration) -> Self {
        Deadline::Wall {
            start: Instant::now(),
            limit,
        }
    }

    /// `Err(Exhausted)` once the deadline has passed.
    pub fn check(&self) -> Result<(), Exhausted> {
        match self {
            Deadline::Wall { start, limit } => {
                let spent = start.elapsed();
                if spent > *limit {
                    Err(Exhausted {
                        resource: Resource::WallClock,
                        spent: spent.as_millis() as u64,
                        limit: limit.as_millis() as u64,
                    })
                } else {
                    Ok(())
                }
            }
            Deadline::Manual { clock, limit } => {
                let spent = clock.now();
                if spent > *limit {
                    Err(Exhausted {
                        resource: Resource::WallClock,
                        spent,
                        limit: *limit,
                    })
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// A resource envelope threaded through every verification engine:
/// cooperative cancellation, an optional [`Deadline`], and caps on SAT
/// conflicts, fuzz rounds and AIG nodes.
///
/// The default ([`Budget::unbounded`]) imposes nothing and adds no
/// allocation, so the plain `Verifier::check` path is unchanged. Each
/// limit is opt-in via a builder-style setter:
///
/// ```
/// use asv_sim::{Budget, CancelToken};
/// use std::time::Duration;
///
/// let budget = Budget::unbounded()
///     .with_cancel(CancelToken::new())
///     .with_deadline(Duration::from_secs(5))
///     .with_max_conflicts(100_000);
/// assert!(budget.check().is_ok());
/// ```
///
/// Engines poll [`Budget::check`] at loop heads and the `check_*` helpers
/// where a specific resource is spent; all report a structured
/// [`Stop`] instead of running unbounded. Under the `fault-inject`
/// feature a budget may also carry a [`FaultSession`] that fires
/// deterministic faults at named [`Budget::probe`] points.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    cancel: Option<CancelToken>,
    deadline: Option<Deadline>,
    max_conflicts: Option<u64>,
    max_fuzz_rounds: Option<u64>,
    max_aig_nodes: Option<u64>,
    fault: FaultSession,
    trace: TraceHandle,
}

impl Budget {
    /// A budget with no limits, no token and no faults: every poll is
    /// `Ok(())`.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Attaches a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Arms a wall-clock deadline `limit` from now.
    pub fn with_deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some(Deadline::after(limit));
        self
    }

    /// Arms a deterministic deadline of `ticks` on an injected clock.
    pub fn with_manual_deadline(mut self, clock: ManualClock, ticks: u64) -> Self {
        self.deadline = Some(Deadline::Manual {
            clock,
            limit: ticks,
        });
        self
    }

    /// Caps total CDCL conflicts per engine invocation.
    pub fn with_max_conflicts(mut self, n: u64) -> Self {
        self.max_conflicts = Some(n);
        self
    }

    /// Caps fuzz campaign rounds.
    pub fn with_max_fuzz_rounds(mut self, n: u64) -> Self {
        self.max_fuzz_rounds = Some(n);
        self
    }

    /// Caps AIG nodes built while bit-blasting.
    pub fn with_max_aig_nodes(mut self, n: u64) -> Self {
        self.max_aig_nodes = Some(n);
        self
    }

    /// Attaches a fault-injection session (inert unless the
    /// `fault-inject` feature is enabled).
    pub fn with_fault(mut self, fault: FaultSession) -> Self {
        self.fault = fault;
        self
    }

    /// Attaches a tracing handle: engines emit spans through
    /// [`Budget::trace`] wherever this budget travels. Purely
    /// observational — the handle never influences [`Budget::check`],
    /// [`Budget::is_plain`] or any engine decision, so verdicts are
    /// bit-identical with tracing on or off.
    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }

    /// The attached tracing handle (disabled by default).
    pub fn trace(&self) -> &TraceHandle {
        &self.trace
    }

    /// A sibling budget with tracing stripped. The portfolio debug
    /// cross-check re-runs `Engine::Auto` on the same budget; without
    /// stripping, the re-run would duplicate every rung span of the job.
    pub fn without_trace(&self) -> Self {
        let mut b = self.clone();
        b.trace = TraceHandle::disabled();
        b
    }

    /// A budget wrapping just a token (the pre-budget `*_cancellable`
    /// entry points build these).
    pub fn from_cancel(token: Option<&CancelToken>) -> Self {
        Budget {
            cancel: token.cloned(),
            ..Budget::default()
        }
    }

    /// A sibling budget with the same limits and fault session but a
    /// different token — portfolio racers each get their own token so
    /// the loser can be cancelled without touching the winner.
    pub fn derive_with_cancel(&self, token: CancelToken) -> Self {
        let mut b = self.clone();
        b.cancel = Some(token);
        b
    }

    /// The attached token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// The armed deadline, if any (the SAT engine clones this into the
    /// solver so the CDCL inner loop polls it directly).
    pub fn deadline(&self) -> Option<&Deadline> {
        self.deadline.as_ref()
    }

    /// The configured conflict cap, if any (the SAT engine folds this
    /// into the solver's per-call conflict budget).
    pub fn max_conflicts(&self) -> Option<u64> {
        self.max_conflicts
    }

    /// The configured AIG node cap, if any.
    pub fn max_aig_nodes(&self) -> Option<u64> {
        self.max_aig_nodes
    }

    /// The attached fault session (inert by default).
    pub fn fault_session(&self) -> &FaultSession {
        &self.fault
    }

    /// True once the *external* token is poisoned. Engines use this to
    /// distinguish a real cancellation (caller gave up — a hard stop)
    /// from an injected spurious one (recoverable by the degradation
    /// ladder).
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// True when the budget imposes nothing at all: no token, no
    /// deadline, no caps, no fault session. The portfolio debug
    /// cross-check (re-running sequential Auto after a portfolio
    /// verdict) only fires for plain budgets, since a limited or faulty
    /// run is not comparable to an unbounded one.
    ///
    /// A [`TraceHandle`] deliberately does **not** count: tracing is
    /// observational, and letting it flip `is_plain` would change
    /// ladder-backoff penalties — verdicts would differ between traced
    /// and untraced runs.
    pub fn is_plain(&self) -> bool {
        self.cancel.is_none()
            && self.deadline.is_none()
            && self.max_conflicts.is_none()
            && self.max_fuzz_rounds.is_none()
            && self.max_aig_nodes.is_none()
            && !self.fault.is_armed()
    }

    /// Polls the token and the deadline. Engines call this at loop
    /// heads (per depth, per round, per stimulus).
    #[inline]
    pub fn check(&self) -> Result<(), Stop> {
        if self.is_cancelled() {
            return Err(Stop::Cancelled);
        }
        if let Some(d) = &self.deadline {
            d.check().map_err(Stop::Exhausted)?;
        }
        Ok(())
    }

    /// [`Budget::check`] plus the conflict cap against `spent`.
    #[inline]
    pub fn check_conflicts(&self, spent: u64) -> Result<(), Stop> {
        self.check()?;
        Self::check_cap(Resource::SatConflicts, spent, self.max_conflicts)
    }

    /// [`Budget::check`] plus the fuzz-round cap against `spent`.
    #[inline]
    pub fn check_fuzz_rounds(&self, spent: u64) -> Result<(), Stop> {
        self.check()?;
        Self::check_cap(Resource::FuzzRounds, spent, self.max_fuzz_rounds)
    }

    /// [`Budget::check`] plus the AIG-node cap against `spent`.
    #[inline]
    pub fn check_aig_nodes(&self, spent: u64) -> Result<(), Stop> {
        self.check()?;
        Self::check_cap(Resource::AigNodes, spent, self.max_aig_nodes)
    }

    #[inline]
    fn check_cap(resource: Resource, spent: u64, cap: Option<u64>) -> Result<(), Stop> {
        match cap {
            Some(limit) if spent >= limit => Err(Stop::Exhausted(Exhausted {
                resource,
                spent,
                limit,
            })),
            _ => Ok(()),
        }
    }

    /// A named probe point: polls like [`Budget::check`], and — only
    /// with the `fault-inject` feature and an armed [`FaultSession`] —
    /// may deterministically fire an injected fault here: a panic, a
    /// bounded stall, a spurious cancellation, or a synthetic
    /// [`Exhausted`]. Without the feature this is exactly `check()`.
    #[inline]
    pub fn probe(&self, name: &'static str) -> Result<(), Stop> {
        self.check()?;
        self.fire_fault(name)
    }

    #[cfg(feature = "fault-inject")]
    fn fire_fault(&self, name: &'static str) -> Result<(), Stop> {
        use crate::fault::FaultKind;
        match self.fault.draw(name) {
            None => Ok(()),
            Some(FaultKind::Panic) => std::panic::panic_any(crate::fault::InjectedPanic(name)),
            Some(FaultKind::Stall) => {
                std::thread::sleep(Duration::from_millis(1));
                Ok(())
            }
            Some(FaultKind::SpuriousCancel) => Err(Stop::Cancelled),
            Some(FaultKind::Exhaust) => Err(Stop::Exhausted(Exhausted {
                resource: Resource::Injected,
                spent: 0,
                limit: 0,
            })),
        }
    }

    #[cfg(not(feature = "fault-inject"))]
    #[inline(always)]
    fn fire_fault(&self, _name: &'static str) -> Result<(), Stop> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled());
        assert!(!u.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled());
        assert!(u.is_cancelled());
    }

    #[test]
    fn cancel_is_idempotent() {
        let t = CancelToken::new();
        t.cancel();
        t.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn default_is_fresh() {
        assert!(!CancelToken::default().is_cancelled());
    }

    #[test]
    fn unbounded_budget_never_stops() {
        let b = Budget::unbounded();
        assert!(b.is_plain());
        assert!(b.check().is_ok());
        assert!(b.check_conflicts(u64::MAX).is_ok());
        assert!(b.check_fuzz_rounds(u64::MAX).is_ok());
        assert!(b.check_aig_nodes(u64::MAX).is_ok());
        assert!(b.probe("test.unbounded").is_ok());
    }

    #[test]
    fn trace_handle_keeps_the_budget_plain() {
        let tracer = asv_trace::Tracer::new();
        let b = Budget::unbounded().with_trace(tracer.handle());
        assert!(
            b.is_plain(),
            "tracing is observational; it must not affect ladder semantics"
        );
        assert!(b.trace().is_enabled());
        assert!(!b.without_trace().trace().is_enabled());
        // Limits and fault sessions survive the strip.
        let capped = Budget::unbounded()
            .with_max_conflicts(5)
            .with_trace(tracer.handle())
            .without_trace();
        assert!(capped.check_conflicts(5).is_err());
    }

    #[test]
    fn cancelled_token_stops_every_poll() {
        let token = CancelToken::new();
        let b = Budget::unbounded().with_cancel(token.clone());
        assert!(!b.is_plain());
        assert!(b.check().is_ok());
        token.cancel();
        assert_eq!(b.check(), Err(Stop::Cancelled));
        assert_eq!(b.check_conflicts(0), Err(Stop::Cancelled));
        assert!(b.is_cancelled());
    }

    #[test]
    fn manual_deadline_expires_on_tick_not_on_sleep() {
        let clock = ManualClock::new();
        let b = Budget::unbounded().with_manual_deadline(clock.clone(), 10);
        assert!(b.check().is_ok());
        clock.advance(10);
        assert!(b.check().is_ok(), "at the limit is still within budget");
        clock.advance(1);
        match b.check() {
            Err(Stop::Exhausted(e)) => {
                assert_eq!(e.resource, Resource::WallClock);
                assert_eq!(e.spent, 11);
                assert_eq!(e.limit, 10);
            }
            other => panic!("expected deadline exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn conflict_cap_reports_spent_and_limit() {
        let b = Budget::unbounded().with_max_conflicts(1000);
        assert!(b.check_conflicts(999).is_ok());
        match b.check_conflicts(1000) {
            Err(Stop::Exhausted(e)) => {
                assert_eq!(e.resource, Resource::SatConflicts);
                assert_eq!(e.spent, 1000);
                assert_eq!(e.limit, 1000);
            }
            other => panic!("expected conflict exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn fuzz_round_and_node_caps_are_independent() {
        let b = Budget::unbounded()
            .with_max_fuzz_rounds(4)
            .with_max_aig_nodes(100);
        assert!(b.check_fuzz_rounds(3).is_ok());
        assert!(matches!(
            b.check_fuzz_rounds(4),
            Err(Stop::Exhausted(Exhausted {
                resource: Resource::FuzzRounds,
                ..
            }))
        ));
        assert!(b.check_aig_nodes(99).is_ok());
        assert!(matches!(
            b.check_aig_nodes(100),
            Err(Stop::Exhausted(Exhausted {
                resource: Resource::AigNodes,
                ..
            }))
        ));
    }

    #[test]
    fn derive_with_cancel_keeps_limits_but_swaps_token() {
        let outer = CancelToken::new();
        let b = Budget::unbounded()
            .with_cancel(outer.clone())
            .with_max_conflicts(7);
        let racer_token = CancelToken::new();
        let racer = b.derive_with_cancel(racer_token.clone());
        outer.cancel();
        assert!(b.is_cancelled());
        assert!(!racer.is_cancelled(), "racer has its own token");
        assert!(
            matches!(racer.check_conflicts(7), Err(Stop::Exhausted(_))),
            "limits are inherited"
        );
        racer_token.cancel();
        assert_eq!(racer.check(), Err(Stop::Cancelled));
    }

    /// The satellite contract: a token poisoned mid-run stops the loop
    /// within one check interval, driven purely by injected clock ticks
    /// (no sleeps, no wall clock).
    #[test]
    fn poison_mid_loop_stops_within_one_check_interval() {
        const CHECK_INTERVAL: u64 = 256;
        let token = CancelToken::new();
        let clock = ManualClock::new();
        let b = Budget::unbounded().with_cancel(token.clone());
        let mut iterations = 0u64;
        let mut stopped_at = None;
        for step in 0..10 * CHECK_INTERVAL {
            // Poison exactly once, mid-loop, from "outside".
            if step == 3 * CHECK_INTERVAL + 17 {
                token.cancel();
            }
            clock.advance(1);
            iterations += 1;
            if step % CHECK_INTERVAL == 0 && b.check().is_err() {
                stopped_at = Some(step);
                break;
            }
        }
        let stopped_at = stopped_at.expect("loop must observe the poison");
        assert!(
            stopped_at <= 4 * CHECK_INTERVAL + 17,
            "stopped at {stopped_at}, more than one interval late"
        );
        assert!(
            iterations < 10 * CHECK_INTERVAL,
            "must not run to completion"
        );
    }
}
