//! Cycle-accurate executor for elaborated designs.
//!
//! The simulator advances in clock ticks. Each [`Simulator::step`]:
//!
//! 1. applies the caller's input assignments,
//! 2. settles combinational logic to a fixpoint,
//! 3. samples all signals into the [`Trace`] (the SVA *preponed* sample),
//! 4. executes every clocked `always` block against the sampled state,
//!    collecting nonblocking updates, then commits them atomically,
//! 5. settles combinational logic again.
//!
//! Asynchronous resets are handled at tick granularity: stimulus asserts
//! reset across whole cycles, so the reset branch executes at the next tick
//! — the documented 2-state/cycle-level substitution for event-driven
//! simulation.

use crate::eval::{assign_lvalue, eval, Env, EvalError};
use crate::trace::Trace;
use crate::value::Value;
use asv_verilog::ast::*;
use asv_verilog::sema::Design;
use std::collections::BTreeMap;
use std::fmt;

/// Errors raised while running a design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Expression evaluation failed.
    Eval(EvalError),
    /// Combinational logic did not reach a fixpoint (ring oscillator or
    /// delta-cycle explosion).
    CombDivergence,
    /// The design has no clock but a clocked step was requested.
    NoClock,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Eval(e) => write!(f, "evaluation error: {e}"),
            SimError::CombDivergence => write!(f, "combinational logic failed to settle"),
            SimError::NoClock => write!(f, "design has no recognisable clock"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<EvalError> for SimError {
    fn from(e: EvalError) -> Self {
        SimError::Eval(e)
    }
}

/// Maximum delta iterations while settling combinational logic.
const MAX_SETTLE_ITERS: usize = 64;

/// A running simulation of one elaborated [`Design`].
#[derive(Debug, Clone)]
pub struct Simulator {
    design: Design,
    state: BTreeMap<String, Value>,
    comb: Vec<CombProc>,
    seq: Vec<AlwaysBlock>,
    trace_names: Vec<String>,
    trace: Trace,
}

#[derive(Debug, Clone)]
enum CombProc {
    Assign(ContAssign),
    Block(AlwaysBlock),
}

struct StateEnv<'a> {
    state: &'a BTreeMap<String, Value>,
    params: &'a BTreeMap<String, u64>,
}

impl Env for StateEnv<'_> {
    fn value_of(&self, name: &str) -> Option<Value> {
        self.state
            .get(name)
            .copied()
            .or_else(|| self.params.get(name).map(|&v| Value::new(v, 64)))
    }
}

impl Simulator {
    /// Creates a simulator with all signals initialised to zero.
    pub fn new(design: &Design) -> Self {
        let mut state = BTreeMap::new();
        for (name, info) in &design.signals {
            state.insert(name.clone(), Value::zero(info.width));
        }
        let mut comb = Vec::new();
        let mut seq = Vec::new();
        for item in &design.module.items {
            match item {
                Item::Assign(a) => comb.push(CombProc::Assign(a.clone())),
                Item::Always(al) => {
                    if al.sensitivity.is_combinational() {
                        comb.push(CombProc::Block(al.clone()));
                    } else {
                        seq.push(al.clone());
                    }
                }
                _ => {}
            }
        }
        let trace_names: Vec<String> = design.signals.keys().cloned().collect();
        Simulator {
            design: design.clone(),
            state,
            comb,
            seq,
            trace: Trace::new(trace_names.clone()),
            trace_names,
        }
    }

    /// The design under simulation.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Current (post-settle) value of a signal.
    pub fn value(&self, name: &str) -> Option<Value> {
        self.state.get(name).copied()
    }

    /// Drives an input port for subsequent ticks.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a known signal (programming error in the
    /// harness, not recoverable data).
    pub fn set_input(&mut self, name: &str, value: u64) {
        let width = self
            .state
            .get(name)
            .unwrap_or_else(|| panic!("unknown signal `{name}`"))
            .width();
        self.state.insert(name.to_string(), Value::new(value, width));
    }

    /// The recorded waveform so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the simulator, returning the trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Runs one clock tick with the given input assignments.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on evaluation failure or non-settling
    /// combinational logic.
    pub fn step(&mut self, inputs: &[(&str, u64)]) -> Result<(), SimError> {
        for (name, v) in inputs {
            self.set_input(name, *v);
        }
        self.settle()?;
        self.sample();
        self.clock_edge()?;
        self.settle()?;
        Ok(())
    }

    /// Runs `n` ticks with constant inputs.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`].
    pub fn run(&mut self, n: usize, inputs: &[(&str, u64)]) -> Result<(), SimError> {
        for _ in 0..n {
            self.step(inputs)?;
        }
        Ok(())
    }

    /// Settles combinational logic to a fixpoint.
    fn settle(&mut self) -> Result<(), SimError> {
        for _ in 0..MAX_SETTLE_ITERS {
            let before = self.state.clone();
            let comb = self.comb.clone();
            for proc in &comb {
                match proc {
                    CombProc::Assign(a) => {
                        let env = StateEnv {
                            state: &self.state,
                            params: &self.design.params,
                        };
                        let v = eval(&a.rhs, &env)?;
                        self.write_lvalue(&a.lhs, v)?;
                    }
                    CombProc::Block(b) => {
                        // Combinational always blocks use blocking assigns:
                        // effects are visible immediately within the block.
                        let mut nba = Vec::new();
                        self.exec_stmt(&b.body, &mut nba)?;
                        // NBAs in comb blocks are committed immediately too
                        // (delta-cycle collapse).
                        for (lv, v) in nba {
                            self.write_lvalue(&lv, v)?;
                        }
                    }
                }
            }
            if self.state == before {
                return Ok(());
            }
        }
        Err(SimError::CombDivergence)
    }

    fn sample(&mut self) {
        let row: Vec<Value> = self
            .trace_names
            .iter()
            .map(|n| self.state[n])
            .collect();
        self.trace.push(row);
    }

    fn clock_edge(&mut self) -> Result<(), SimError> {
        // Evaluate every clocked block against the pre-edge state; commit
        // nonblocking updates atomically afterwards.
        let pre_edge = self.state.clone();
        let mut nba_all: Vec<(LValue, Value)> = Vec::new();
        let seq = self.seq.clone();
        for block in &seq {
            // Blocking assigns inside a clocked block take effect within
            // that block only; start each block from the pre-edge state.
            self.state = pre_edge.clone();
            let mut nba = Vec::new();
            self.exec_stmt(&block.body, &mut nba)?;
            // Blocking writes performed by this block also persist: record
            // them as updates relative to pre-edge.
            for (name, v) in &self.state {
                if pre_edge.get(name) != Some(v) {
                    nba_all.push((
                        LValue::Ident {
                            name: name.clone(),
                            span: asv_verilog::Span::default(),
                        },
                        *v,
                    ));
                }
            }
            nba_all.extend(nba);
        }
        self.state = pre_edge;
        for (lv, v) in nba_all {
            self.write_lvalue(&lv, v)?;
        }
        Ok(())
    }

    fn exec_stmt(
        &mut self,
        s: &Stmt,
        nba: &mut Vec<(LValue, Value)>,
    ) -> Result<(), SimError> {
        match s {
            Stmt::Block { stmts, .. } => {
                for st in stmts {
                    self.exec_stmt(st, nba)?;
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let env = StateEnv {
                    state: &self.state,
                    params: &self.design.params,
                };
                if eval(cond, &env)?.is_truthy() {
                    self.exec_stmt(then_branch, nba)
                } else if let Some(e) = else_branch {
                    self.exec_stmt(e, nba)
                } else {
                    Ok(())
                }
            }
            Stmt::Case {
                scrutinee,
                arms,
                default,
                ..
            } => {
                let env = StateEnv {
                    state: &self.state,
                    params: &self.design.params,
                };
                let sv = eval(scrutinee, &env)?;
                for arm in arms {
                    for label in &arm.labels {
                        let lv = eval(label, &env)?;
                        if lv.bits() == sv.bits() {
                            return self.exec_stmt(&arm.body, nba);
                        }
                    }
                }
                if let Some(d) = default {
                    self.exec_stmt(d, nba)
                } else {
                    Ok(())
                }
            }
            Stmt::Assign {
                lhs,
                rhs,
                nonblocking,
                ..
            } => {
                let env = StateEnv {
                    state: &self.state,
                    params: &self.design.params,
                };
                let v = eval(rhs, &env)?;
                if *nonblocking {
                    nba.push((lhs.clone(), v));
                } else {
                    self.write_lvalue(lhs, v)?;
                }
                Ok(())
            }
            Stmt::Empty { .. } => Ok(()),
        }
    }

    fn write_lvalue(&mut self, lv: &LValue, v: Value) -> Result<(), SimError> {
        let env_state = self.state.clone();
        let env = StateEnv {
            state: &env_state,
            params: &self.design.params,
        };
        let state = &mut self.state;
        assign_lvalue(
            lv,
            v,
            &env,
            &mut |n| env_state.get(n).copied(),
            &mut |n, val| {
                state.insert(n.to_string(), val);
            },
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_verilog::compile;

    fn sim(src: &str) -> Simulator {
        let d = compile(src).unwrap_or_else(|e| panic!("compile failed: {e}"));
        Simulator::new(&d)
    }

    #[test]
    fn combinational_gate_settles() {
        let mut s = sim("module g(input a, input b, output y); assign y = a & b; endmodule");
        s.step(&[("a", 1), ("b", 1)]).expect("step");
        assert_eq!(s.value("y").map(Value::bits), Some(1));
        s.step(&[("a", 1), ("b", 0)]).expect("step");
        assert_eq!(s.value("y").map(Value::bits), Some(0));
    }

    #[test]
    fn chained_assign_settles_in_order_independent_way() {
        // y depends on t which depends on a: must settle regardless of
        // declaration order.
        let mut s = sim(
            "module g(input a, output y);\n\
             wire t;\n assign y = t;\n assign t = ~a;\nendmodule",
        );
        s.step(&[("a", 0)]).expect("step");
        assert_eq!(s.value("y").map(Value::bits), Some(1));
    }

    const COUNTER: &str = "module c(input clk, input rst_n, input en, output reg [3:0] q);\n\
        always @(posedge clk or negedge rst_n) begin\n\
          if (!rst_n) q <= 4'd0;\n\
          else if (en) q <= q + 4'd1;\n\
        end\nendmodule";

    #[test]
    fn counter_counts() {
        let mut s = sim(COUNTER);
        s.step(&[("rst_n", 0), ("en", 0)]).expect("reset");
        assert_eq!(s.value("q").map(Value::bits), Some(0));
        for i in 1..=5u64 {
            s.step(&[("rst_n", 1), ("en", 1)]).expect("step");
            assert_eq!(s.value("q").map(Value::bits), Some(i));
        }
        s.step(&[("rst_n", 1), ("en", 0)]).expect("hold");
        assert_eq!(s.value("q").map(Value::bits), Some(5));
    }

    #[test]
    fn counter_wraps_at_width() {
        let mut s = sim(COUNTER);
        s.step(&[("rst_n", 0), ("en", 0)]).expect("reset");
        for _ in 0..16 {
            s.step(&[("rst_n", 1), ("en", 1)]).expect("step");
        }
        assert_eq!(s.value("q").map(Value::bits), Some(0), "wraps mod 16");
    }

    #[test]
    fn nba_reads_pre_edge_values() {
        // Classic swap: both registers must exchange values in one tick.
        let mut s = sim(
            "module swap(input clk, input ld, input [3:0] a0, input [3:0] b0,\n\
              output reg [3:0] x, output reg [3:0] y);\n\
             always @(posedge clk) begin\n\
               if (ld) begin x <= a0; y <= b0; end\n\
               else begin x <= y; y <= x; end\n\
             end\nendmodule",
        );
        s.step(&[("ld", 1), ("a0", 3), ("b0", 9)]).expect("load");
        assert_eq!(s.value("x").map(Value::bits), Some(3));
        s.step(&[("ld", 0)]).expect("swap");
        assert_eq!(s.value("x").map(Value::bits), Some(9));
        assert_eq!(s.value("y").map(Value::bits), Some(3));
    }

    #[test]
    fn trace_samples_preponed_values() {
        let mut s = sim(COUNTER);
        s.step(&[("rst_n", 0), ("en", 0)]).expect("reset");
        s.step(&[("rst_n", 1), ("en", 1)]).expect("step");
        s.step(&[("rst_n", 1), ("en", 1)]).expect("step");
        // At tick t the trace holds the value *before* that tick's edge.
        assert_eq!(s.trace().value(1, "q").map(Value::bits), Some(0));
        assert_eq!(s.trace().value(2, "q").map(Value::bits), Some(1));
        assert_eq!(s.value("q").map(Value::bits), Some(2));
    }

    #[test]
    fn comb_always_block_behaves_like_assign() {
        let mut s = sim(
            "module m(input [1:0] sel, input [3:0] a, input [3:0] b, output reg [3:0] y);\n\
             always @(*) begin\n\
               case (sel) 2'd0: y = a; 2'd1: y = b; default: y = 4'd0; endcase\n\
             end\nendmodule",
        );
        s.step(&[("sel", 0), ("a", 7), ("b", 2)]).expect("step");
        assert_eq!(s.value("y").map(Value::bits), Some(7));
        s.step(&[("sel", 1)]).expect("step");
        assert_eq!(s.value("y").map(Value::bits), Some(2));
        s.step(&[("sel", 2)]).expect("step");
        assert_eq!(s.value("y").map(Value::bits), Some(0));
    }

    #[test]
    fn blocking_assign_in_seq_block_is_sequential() {
        let mut s = sim(
            "module m(input clk, input [3:0] a, output reg [3:0] y);\n\
             reg [3:0] t;\n\
             always @(posedge clk) begin\n\
               t = a + 4'd1;\n\
               y <= t;\n\
             end\nendmodule",
        );
        s.step(&[("a", 4)]).expect("step");
        assert_eq!(s.value("y").map(Value::bits), Some(5));
    }

    #[test]
    fn divergent_comb_loop_is_reported() {
        let mut s = sim("module osc(input a, output y);\nwire n;\nassign n = ~n | a;\nassign y = n;\nendmodule");
        // `n = ~n | a` with a=0 oscillates.
        let r = s.step(&[("a", 0)]);
        assert_eq!(r, Err(SimError::CombDivergence));
    }

    #[test]
    fn set_input_masks_to_width() {
        let mut s = sim(COUNTER);
        s.set_input("en", 0xFF);
        assert_eq!(s.value("en").map(Value::bits), Some(1));
    }
}
