//! Cycle-accurate executor for elaborated designs, running on the
//! compiled backend ([`crate::compile`]).
//!
//! The simulator advances in clock ticks. Each [`Simulator::step`]:
//!
//! 1. applies the caller's input assignments,
//! 2. settles combinational logic (one levelized pass for acyclic
//!    designs; the interpreter's declaration-order fixpoint otherwise),
//! 3. samples all signals into the [`Trace`] (the SVA *preponed* sample),
//! 4. executes every clocked `always` block against the sampled state,
//!    collecting nonblocking updates, then commits them atomically,
//! 5. settles combinational logic again.
//!
//! Asynchronous resets are handled at tick granularity: stimulus asserts
//! reset across whole cycles, so the reset branch executes at the next tick
//! — the documented 2-state/cycle-level substitution for event-driven
//! simulation.
//!
//! `Simulator::new` compiles the design once; [`Simulator::from_compiled`]
//! shares an existing [`CompiledDesign`] so restarting a simulation (the
//! bounded verifier does this once per stimulus) is an O(#signals) state
//! reset instead of a `Design` clone. The original tree-walking executor
//! survives as [`crate::interp::AstSimulator`], the reference oracle the
//! differential tests compare against.

use crate::compile::CompiledDesign;
use crate::cover::{CovMap, NoCov, OpsTally};
use crate::eval::EvalError;
use crate::trace::Trace;
use crate::value::Value;
use asv_verilog::sema::Design;
use std::fmt;
use std::sync::Arc;

/// Errors raised while running a design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Expression evaluation failed.
    Eval(EvalError),
    /// Combinational logic did not reach a fixpoint (ring oscillator or
    /// delta-cycle explosion).
    CombDivergence,
    /// The design has no clock but a clocked step was requested.
    NoClock,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Eval(e) => write!(f, "evaluation error: {e}"),
            SimError::CombDivergence => write!(f, "combinational logic failed to settle"),
            SimError::NoClock => write!(f, "design has no recognisable clock"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<EvalError> for SimError {
    fn from(e: EvalError) -> Self {
        SimError::Eval(e)
    }
}

/// A running simulation of one elaborated [`Design`].
#[derive(Debug, Clone)]
pub struct Simulator {
    compiled: Arc<CompiledDesign>,
    state: Vec<Value>,
    stack: Vec<Value>,
    trace: Trace,
    cov: Option<Box<CovMap>>,
    count_ops: bool,
    ops: u64,
}

impl Simulator {
    /// Creates a simulator with all signals initialised to zero,
    /// compiling the design first. To run many simulations of one design,
    /// compile once and use [`Simulator::from_compiled`].
    pub fn new(design: &Design) -> Self {
        Simulator::from_compiled(Arc::new(CompiledDesign::compile(design)))
    }

    /// Creates a simulator over an already-compiled design. This is the
    /// cheap restart path: O(#signals) state initialisation, no AST work.
    pub fn from_compiled(compiled: Arc<CompiledDesign>) -> Self {
        let state = compiled.init_state();
        // Share the design's interned name table instead of cloning it:
        // starting (or restarting) a trace is O(1).
        let trace = Trace::with_header(Arc::clone(compiled.trace_header()));
        Simulator {
            compiled,
            state,
            stack: Vec::with_capacity(16),
            trace,
            cov: None,
            count_ops: false,
            ops: 0,
        }
    }

    /// Rewinds the simulator to its initial state *in place*: signals
    /// back to their reset values, trace/ops/coverage cleared — with
    /// every buffer (state vector, operand stack, trace steps, coverage
    /// bitsets) reused. This is the per-stimulus restart the
    /// stimulus-bound engines run in their hot loops: O(#signals) work
    /// and zero allocation, where constructing a fresh simulator
    /// reallocates the state vector and trace.
    pub fn restart(&mut self) {
        self.state.copy_from_slice(self.compiled.init_slice());
        self.trace.clear();
        self.ops = 0;
        if let Some(cov) = &mut self.cov {
            cov.reset();
        }
    }

    /// Takes the recorded trace, leaving an empty one sharing the same
    /// interned header (O(1)) — pair with [`Simulator::restart`] to
    /// drain results between stimuli without tearing the simulator down.
    pub fn take_trace(&mut self) -> Trace {
        std::mem::replace(
            &mut self.trace,
            Trace::with_header(Arc::clone(self.compiled.trace_header())),
        )
    }

    /// Enables coverage recording (branch arms + signal toggles) for
    /// subsequent steps. `assertions` sizes the antecedent axis the SVA
    /// checker fills in (pass 0 when no checker is attached). Without this
    /// call the hot path runs fully uninstrumented.
    pub fn enable_coverage(&mut self, assertions: usize) {
        self.cov = Some(Box::new(CovMap::new(&self.compiled, assertions)));
    }

    /// The coverage recorded so far, if enabled.
    pub fn coverage(&self) -> Option<&CovMap> {
        self.cov.as_deref()
    }

    /// Enables bytecode op counting for subsequent steps (see
    /// [`Simulator::ops_executed`]). Like coverage, this is opt-in so
    /// the default hot path stays fully uninstrumented; unlike
    /// coverage, the tally is a pure function of bytecode and stimulus
    /// — the deterministic work metric the perf harness records.
    pub fn enable_op_count(&mut self) {
        self.count_ops = true;
    }

    /// Bytecode operations dispatched so far (0 unless
    /// [`Simulator::enable_op_count`] was called), counted at
    /// statement-expression program granularity.
    pub fn ops_executed(&self) -> u64 {
        self.ops
    }

    /// Consumes the simulator, returning the trace and the coverage map
    /// (present only after [`Simulator::enable_coverage`]).
    pub fn into_trace_and_coverage(self) -> (Trace, Option<CovMap>) {
        (self.trace, self.cov.map(|c| *c))
    }

    /// The design under simulation.
    pub fn design(&self) -> &Design {
        self.compiled.design()
    }

    /// The shared compiled form of the design.
    pub fn compiled(&self) -> &Arc<CompiledDesign> {
        &self.compiled
    }

    /// Current (post-settle) value of a signal.
    pub fn value(&self, name: &str) -> Option<Value> {
        self.compiled.sig(name).map(|s| self.state[s.idx()])
    }

    /// Drives an input port for subsequent ticks.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a known signal (programming error in the
    /// harness, not recoverable data).
    pub fn set_input(&mut self, name: &str, value: u64) {
        let sig = self
            .compiled
            .sig(name)
            .unwrap_or_else(|| panic!("unknown signal `{name}`"));
        self.state[sig.idx()] = Value::new(value, self.compiled.width(sig));
    }

    /// The recorded waveform so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the simulator, returning the trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Runs one clock tick with the given input assignments.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on evaluation failure or non-settling
    /// combinational logic.
    pub fn step(&mut self, inputs: &[(&str, u64)]) -> Result<(), SimError> {
        for (name, v) in inputs {
            self.set_input(name, *v);
        }
        let cd = Arc::clone(&self.compiled);
        match (self.cov.as_deref_mut(), self.count_ops) {
            (None, false) => {
                cd.settle(&mut self.state, &mut self.stack)?;
                self.trace.push_row(&self.state);
                cd.clock_edge(&mut self.state, &mut self.stack)?;
                cd.settle(&mut self.state, &mut self.stack)?;
            }
            (None, true) => {
                let mut nocov = NoCov;
                let mut sink = OpsTally {
                    inner: &mut nocov,
                    ops: &mut self.ops,
                };
                cd.settle_cov(&mut self.state, &mut self.stack, &mut sink)?;
                self.trace.push_row(&self.state);
                cd.clock_edge_cov(&mut self.state, &mut self.stack, &mut sink)?;
                cd.settle_cov(&mut self.state, &mut self.stack, &mut sink)?;
            }
            (Some(cov), false) => {
                cd.settle_cov(&mut self.state, &mut self.stack, cov)?;
                // Toggle coverage observes the preponed samples — exactly
                // the values SVA properties see.
                cov.record_row(&self.state);
                self.trace.push_row(&self.state);
                cd.clock_edge_cov(&mut self.state, &mut self.stack, cov)?;
                cd.settle_cov(&mut self.state, &mut self.stack, cov)?;
            }
            (Some(cov), true) => {
                let mut sink = OpsTally {
                    inner: cov,
                    ops: &mut self.ops,
                };
                cd.settle_cov(&mut self.state, &mut self.stack, &mut sink)?;
                sink.inner.record_row(&self.state);
                self.trace.push_row(&self.state);
                cd.clock_edge_cov(&mut self.state, &mut self.stack, &mut sink)?;
                cd.settle_cov(&mut self.state, &mut self.stack, &mut sink)?;
            }
        }
        Ok(())
    }

    /// Runs `n` ticks with constant inputs.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`].
    pub fn run(&mut self, n: usize, inputs: &[(&str, u64)]) -> Result<(), SimError> {
        for _ in 0..n {
            self.step(inputs)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_verilog::compile;

    fn sim(src: &str) -> Simulator {
        let d = compile(src).unwrap_or_else(|e| panic!("compile failed: {e}"));
        Simulator::new(&d)
    }

    #[test]
    fn combinational_gate_settles() {
        let mut s = sim("module g(input a, input b, output y); assign y = a & b; endmodule");
        s.step(&[("a", 1), ("b", 1)]).expect("step");
        assert_eq!(s.value("y").map(Value::bits), Some(1));
        s.step(&[("a", 1), ("b", 0)]).expect("step");
        assert_eq!(s.value("y").map(Value::bits), Some(0));
    }

    #[test]
    fn chained_assign_settles_in_order_independent_way() {
        // y depends on t which depends on a: must settle regardless of
        // declaration order.
        let mut s = sim("module g(input a, output y);\n\
             wire t;\n assign y = t;\n assign t = ~a;\nendmodule");
        s.step(&[("a", 0)]).expect("step");
        assert_eq!(s.value("y").map(Value::bits), Some(1));
    }

    const COUNTER: &str = "module c(input clk, input rst_n, input en, output reg [3:0] q);\n\
        always @(posedge clk or negedge rst_n) begin\n\
          if (!rst_n) q <= 4'd0;\n\
          else if (en) q <= q + 4'd1;\n\
        end\nendmodule";

    #[test]
    fn counter_counts() {
        let mut s = sim(COUNTER);
        s.step(&[("rst_n", 0), ("en", 0)]).expect("reset");
        assert_eq!(s.value("q").map(Value::bits), Some(0));
        for i in 1..=5u64 {
            s.step(&[("rst_n", 1), ("en", 1)]).expect("step");
            assert_eq!(s.value("q").map(Value::bits), Some(i));
        }
        s.step(&[("rst_n", 1), ("en", 0)]).expect("hold");
        assert_eq!(s.value("q").map(Value::bits), Some(5));
    }

    #[test]
    fn counter_wraps_at_width() {
        let mut s = sim(COUNTER);
        s.step(&[("rst_n", 0), ("en", 0)]).expect("reset");
        for _ in 0..16 {
            s.step(&[("rst_n", 1), ("en", 1)]).expect("step");
        }
        assert_eq!(s.value("q").map(Value::bits), Some(0), "wraps mod 16");
    }

    #[test]
    fn nba_reads_pre_edge_values() {
        // Classic swap: both registers must exchange values in one tick.
        let mut s = sim(
            "module swap(input clk, input ld, input [3:0] a0, input [3:0] b0,\n\
              output reg [3:0] x, output reg [3:0] y);\n\
             always @(posedge clk) begin\n\
               if (ld) begin x <= a0; y <= b0; end\n\
               else begin x <= y; y <= x; end\n\
             end\nendmodule",
        );
        s.step(&[("ld", 1), ("a0", 3), ("b0", 9)]).expect("load");
        assert_eq!(s.value("x").map(Value::bits), Some(3));
        s.step(&[("ld", 0)]).expect("swap");
        assert_eq!(s.value("x").map(Value::bits), Some(9));
        assert_eq!(s.value("y").map(Value::bits), Some(3));
    }

    #[test]
    fn trace_samples_preponed_values() {
        let mut s = sim(COUNTER);
        s.step(&[("rst_n", 0), ("en", 0)]).expect("reset");
        s.step(&[("rst_n", 1), ("en", 1)]).expect("step");
        s.step(&[("rst_n", 1), ("en", 1)]).expect("step");
        // At tick t the trace holds the value *before* that tick's edge.
        assert_eq!(s.trace().value(1, "q").map(Value::bits), Some(0));
        assert_eq!(s.trace().value(2, "q").map(Value::bits), Some(1));
        assert_eq!(s.value("q").map(Value::bits), Some(2));
    }

    #[test]
    fn comb_always_block_behaves_like_assign() {
        let mut s = sim(
            "module m(input [1:0] sel, input [3:0] a, input [3:0] b, output reg [3:0] y);\n\
             always @(*) begin\n\
               case (sel) 2'd0: y = a; 2'd1: y = b; default: y = 4'd0; endcase\n\
             end\nendmodule",
        );
        s.step(&[("sel", 0), ("a", 7), ("b", 2)]).expect("step");
        assert_eq!(s.value("y").map(Value::bits), Some(7));
        s.step(&[("sel", 1)]).expect("step");
        assert_eq!(s.value("y").map(Value::bits), Some(2));
        s.step(&[("sel", 2)]).expect("step");
        assert_eq!(s.value("y").map(Value::bits), Some(0));
    }

    #[test]
    fn blocking_assign_in_seq_block_is_sequential() {
        let mut s = sim("module m(input clk, input [3:0] a, output reg [3:0] y);\n\
             reg [3:0] t;\n\
             always @(posedge clk) begin\n\
               t = a + 4'd1;\n\
               y <= t;\n\
             end\nendmodule");
        s.step(&[("a", 4)]).expect("step");
        assert_eq!(s.value("y").map(Value::bits), Some(5));
    }

    #[test]
    fn divergent_comb_loop_is_reported() {
        let mut s = sim(
            "module osc(input a, output y);\nwire n;\nassign n = ~n | a;\nassign y = n;\nendmodule",
        );
        // `n = ~n | a` with a=0 oscillates.
        let r = s.step(&[("a", 0)]);
        assert_eq!(r, Err(SimError::CombDivergence));
    }

    #[test]
    fn set_input_masks_to_width() {
        let mut s = sim(COUNTER);
        s.set_input("en", 0xFF);
        assert_eq!(s.value("en").map(Value::bits), Some(1));
    }

    #[test]
    fn op_counting_is_opt_in_deterministic_and_invisible() {
        let d = compile(COUNTER).expect("compile");
        let compiled = Arc::new(CompiledDesign::compile(&d));
        let run_counted = |n: usize| {
            let mut s = Simulator::from_compiled(Arc::clone(&compiled));
            s.enable_op_count();
            for _ in 0..n {
                s.step(&[("rst_n", 1), ("en", 1)]).expect("step");
            }
            (s.value("q").map(Value::bits), s.ops_executed())
        };
        let (q8a, ops8a) = run_counted(8);
        let (q8b, ops8b) = run_counted(8);
        assert!(ops8a > 0, "counting enabled must observe work");
        assert_eq!(ops8a, ops8b, "op count is a pure function of the run");
        assert_eq!(q8a, q8b);
        let (_, ops4) = run_counted(4);
        assert!(ops4 < ops8a, "more cycles, more ops");

        // Without opt-in the tally stays zero, and counting never
        // changes simulation results or coverage.
        let mut plain = Simulator::from_compiled(Arc::clone(&compiled));
        plain.enable_coverage(0);
        let mut counted = Simulator::from_compiled(Arc::clone(&compiled));
        counted.enable_coverage(0);
        counted.enable_op_count();
        for _ in 0..8 {
            plain.step(&[("rst_n", 1), ("en", 1)]).expect("step");
            counted.step(&[("rst_n", 1), ("en", 1)]).expect("step");
        }
        assert_eq!(plain.ops_executed(), 0);
        assert_eq!(plain.value("q"), counted.value("q"));
        assert_eq!(
            plain.coverage(),
            counted.coverage(),
            "op counting must not leak into coverage maps"
        );
    }

    #[test]
    fn restart_reuses_buffers_in_place() {
        let d = compile(COUNTER).expect("compile");
        let compiled = Arc::new(CompiledDesign::compile(&d));
        let mut s = Simulator::from_compiled(Arc::clone(&compiled));
        s.enable_coverage(0);
        s.enable_op_count();
        s.step(&[("rst_n", 0), ("en", 0)]).expect("reset");
        s.step(&[("rst_n", 1), ("en", 1)]).expect("step");
        assert_eq!(s.value("q").map(Value::bits), Some(1));
        assert!(s.ops_executed() > 0);

        // The trace never owned its own name table: it shares the
        // compiled design's interned header.
        assert!(Arc::ptr_eq(s.trace().header(), compiled.trace_header()));

        let state_ptr = s.state.as_ptr();
        let first_trace = s.take_trace();
        assert_eq!(first_trace.len(), 2);
        s.restart();
        // Same buffers, initial contents: no reallocation happened.
        assert_eq!(s.state.as_ptr(), state_ptr);
        assert_eq!(s.value("q").map(Value::bits), Some(0));
        assert!(s.trace().is_empty());
        assert_eq!(s.ops_executed(), 0);
        assert_eq!(
            s.coverage().map(CovMap::covered_points),
            Some(0),
            "coverage map cleared in place"
        );

        // And the restarted run is bit-identical to a fresh simulator's.
        let mut fresh = Simulator::from_compiled(Arc::clone(&compiled));
        for sim in [&mut s, &mut fresh] {
            sim.step(&[("rst_n", 0), ("en", 0)]).expect("reset");
            sim.step(&[("rst_n", 1), ("en", 1)]).expect("step");
        }
        assert_eq!(s.trace(), fresh.trace());
    }

    #[test]
    fn restart_from_compiled_resets_state() {
        let d = compile(COUNTER).expect("compile");
        let compiled = Arc::new(CompiledDesign::compile(&d));
        let mut s = Simulator::from_compiled(Arc::clone(&compiled));
        s.step(&[("rst_n", 0), ("en", 0)]).expect("reset");
        s.step(&[("rst_n", 1), ("en", 1)]).expect("step");
        assert_eq!(s.value("q").map(Value::bits), Some(1));
        // A fresh simulator over the same compiled design starts at zero
        // with an empty trace.
        let s2 = Simulator::from_compiled(compiled);
        assert_eq!(s2.value("q").map(Value::bits), Some(0));
        assert!(s2.trace().is_empty());
    }
}
