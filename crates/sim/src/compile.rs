//! Compile-once/run-many execution backend.
//!
//! [`CompiledDesign::compile`] lowers an elaborated [`Design`] into a form
//! the simulator can execute without touching the AST again:
//!
//! * **Signal interning** — every signal name becomes a dense [`SigId`]
//!   index into a flat `Vec<Value>` state store (no `String` hashing on
//!   the simulation hot path). Interning follows the name-sorted order of
//!   `Design::signals`, so state index *i* is also trace column *i*.
//! * **Bytecode expressions** — every expression is flattened into postfix
//!   [`Op`] programs run by a non-recursive stack machine ([`run`]).
//!   Parameters are folded to constants at compile time. Ternaries compile
//!   to jumps so only the taken branch is evaluated — matching the lazy
//!   error semantics of the AST interpreter in [`crate::eval`], which
//!   remains the reference oracle.
//! * **Levelized scheduling** — continuous assigns and combinational
//!   always blocks are topologically sorted by their signal dependencies,
//!   so settling combinational logic is a single ordered pass. Designs the
//!   sort cannot prove order-independent (dependency cycles, latch-style
//!   incomplete blocks, dynamically indexed bit writes) keep the
//!   interpreter's declaration-order fixpoint loop, preserving its
//!   semantics — including [`SimError::CombDivergence`] — exactly.
//!
//! The stack machine is generic over an [`ExecEnv`], so the same bytecode
//! infrastructure evaluates design expressions against live simulator
//! state and (via `asv-sva`) property expressions against sampled traces,
//! where `$past`/`$rose`/`$fell`/`$stable` are resolved by the
//! environment through [`Op::History`] sub-programs.

use crate::cover::{CovSink, NoCov};
use crate::eval::{default_sys_call, EvalError};
use crate::exec::SimError;
use crate::value::Value;
use asv_verilog::ast::*;
use asv_verilog::sema::Design;
use std::collections::HashMap;

/// Maximum delta iterations of the fallback fixpoint loop (mirrors the
/// AST interpreter).
const MAX_SETTLE_ITERS: usize = 64;

/// Dense index of an interned signal: position in the compiled state
/// vector and, equivalently, the trace column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SigId(pub u32);

impl SigId {
    /// The index as `usize`.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// The width a parameter value evaluates at: 32 bits (the numeric-literal
/// default) unless the value needs more.
///
/// The seed interpreter returned parameters as 64-bit values, skewing
/// width-sensitive operators (`~`, reductions, comparisons) against
/// declared widths; both backends now share this rule.
pub fn param_value(v: u64) -> Value {
    Value::new(v, if v >> 32 != 0 { 64 } else { 32 })
}

/// How a name resolves during expression compilation.
#[derive(Debug, Clone)]
pub enum NameRef {
    /// A live signal, read from the environment at execution time.
    Sig(SigId),
    /// A compile-time constant (parameter).
    Const(Value),
    /// Not resolvable; evaluating the reference raises
    /// [`EvalError::UnknownSignal`] *at execution time*, preserving the
    /// interpreter's lazy error behaviour (an unknown name in an untaken
    /// ternary branch never errors).
    Unknown,
}

/// History system function kinds resolved by the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistoryKind {
    /// `$past(e [, n])`
    Past,
    /// `$rose(e)`
    Rose,
    /// `$fell(e)`
    Fell,
    /// `$stable(e)`
    Stable,
}

/// One postfix instruction of an expression program.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Push a constant.
    Const(Value),
    /// Push the environment's value of a signal.
    Load(SigId),
    /// Apply a unary operator to the top of stack.
    Unary(UnaryOp),
    /// Apply a binary operator to the top two values.
    Binary(BinaryOp),
    /// Pop the condition; jump to the absolute op index when it is falsy.
    JumpIfFalse(u32),
    /// Unconditional jump to the absolute op index.
    Jump(u32),
    /// Fold the top `n` values into one concatenation (deepest = msb
    /// part, matching source order).
    ConcatN(u16),
    /// Validate the replication count on top of stack (kept there).
    RepeatGuard,
    /// Pop the value, pop the count, push the replication.
    Repeat,
    /// Pop the index, pop the base, push the selected bit.
    BitIndex,
    /// Replace the top of stack with its `[msb:lsb]` slice.
    Slice(u32, u32),
    /// Pop `argc` arguments and apply a system function.
    SysCall {
        /// Function name without the `$`.
        name: Box<str>,
        /// Argument count.
        argc: u8,
    },
    /// Resolve a history call via [`ExecEnv::history`]. `arg` and `n`
    /// index [`ExprProg::subs`].
    History {
        /// Which history function.
        kind: HistoryKind,
        /// Sub-program for the sampled expression.
        arg: u32,
        /// Sub-program for `$past`'s cycle count (evaluated at the current
        /// tick), if present.
        n: Option<u32>,
    },
    /// Raise a compile-time-known error lazily, when (and only when) this
    /// operand would actually be evaluated.
    Fail(EvalError),
}

/// A compiled expression: a postfix program plus nested sub-programs for
/// history calls.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExprProg {
    /// Postfix instruction stream.
    pub ops: Vec<Op>,
    /// Sub-programs referenced by [`Op::History`].
    pub subs: Vec<ExprProg>,
}

impl ExprProg {
    /// True when the program is a lone constant (used to classify static
    /// bit-select indices during levelization).
    fn is_const(&self) -> bool {
        matches!(self.ops.as_slice(), [Op::Const(_)])
    }
}

/// Value environment of the stack machine.
pub trait ExecEnv {
    /// Current value of an interned signal.
    fn load(&self, sig: SigId) -> Value;

    /// Resolves a non-history system call (same default as
    /// [`crate::eval::Env::sys_call`]).
    fn sys_call(&self, name: &str, args: &[Value]) -> Result<Value, EvalError> {
        default_sys_call(name, args)
    }

    /// Resolves a history call (`$past` and friends). Environments without
    /// sampled history reject it, matching the interpreter reaching
    /// [`crate::eval::Env::sys_call`] with an unsupported name.
    fn history(&self, kind: HistoryKind, _arg: &ExprProg, _n: usize) -> Result<Value, EvalError> {
        let name = match kind {
            HistoryKind::Past => "past",
            HistoryKind::Rose => "rose",
            HistoryKind::Fell => "fell",
            HistoryKind::Stable => "stable",
        };
        Err(EvalError::UnsupportedSysCall(name.to_string()))
    }
}

/// Executes a compiled expression program.
///
/// `stack` is caller-provided scratch so hot loops don't allocate; it may
/// be non-empty (nested evaluation) and is restored to its entry length on
/// both success and error.
///
/// # Errors
///
/// Returns the same [`EvalError`]s the AST interpreter raises for the
/// source expression.
pub fn run<E: ExecEnv + ?Sized>(
    prog: &ExprProg,
    env: &E,
    stack: &mut Vec<Value>,
) -> Result<Value, EvalError> {
    let base = stack.len();
    match run_inner(prog, env, stack, base) {
        Ok(v) => {
            stack.truncate(base);
            Ok(v)
        }
        Err(e) => {
            stack.truncate(base);
            Err(e)
        }
    }
}

fn run_inner<E: ExecEnv + ?Sized>(
    prog: &ExprProg,
    env: &E,
    stack: &mut Vec<Value>,
    base: usize,
) -> Result<Value, EvalError> {
    let ops = &prog.ops;
    let mut pc = 0usize;
    while pc < ops.len() {
        match &ops[pc] {
            Op::Const(v) => stack.push(*v),
            Op::Load(sig) => stack.push(env.load(*sig)),
            Op::Unary(op) => {
                let v = stack.pop().expect("unary operand");
                stack.push(crate::eval::unary(*op, v));
            }
            Op::Binary(op) => {
                let b = stack.pop().expect("binary rhs");
                let a = stack.pop().expect("binary lhs");
                stack.push(crate::eval::binary(*op, a, b)?);
            }
            Op::JumpIfFalse(target) => {
                let c = stack.pop().expect("jump condition");
                if !c.is_truthy() {
                    pc = *target as usize;
                    continue;
                }
            }
            Op::Jump(target) => {
                pc = *target as usize;
                continue;
            }
            Op::ConcatN(n) => {
                let n = *n as usize;
                debug_assert!(n >= 1 && stack.len() >= base + n);
                let first = stack.len() - n;
                let mut acc = stack[first];
                for v in &stack[first + 1..] {
                    acc = acc.concat(*v);
                }
                stack.truncate(first);
                stack.push(acc);
            }
            Op::RepeatGuard => {
                let n = stack.last().expect("repeat count").bits();
                if n == 0 || n > 64 {
                    return Err(EvalError::Malformed(format!(
                        "replication count {n} outside 1..=64"
                    )));
                }
            }
            Op::Repeat => {
                let v = stack.pop().expect("repeat value");
                let n = stack.pop().expect("repeat count").bits();
                let mut acc = v;
                for _ in 1..n {
                    acc = acc.concat(v);
                }
                stack.push(acc);
            }
            Op::BitIndex => {
                let i = stack.pop().expect("bit index").bits();
                let bse = stack.pop().expect("bit base");
                stack.push(Value::bit(
                    u32::try_from(i).map(|i| bse.get_bit(i)).unwrap_or(false),
                ));
            }
            Op::Slice(msb, lsb) => {
                let bse = stack.pop().expect("slice base");
                stack.push(bse.slice(*msb, *lsb));
            }
            Op::SysCall { name, argc } => {
                let argc = *argc as usize;
                debug_assert!(stack.len() >= base + argc);
                let first = stack.len() - argc;
                let r = env.sys_call(name, &stack[first..])?;
                stack.truncate(first);
                stack.push(r);
            }
            Op::History { kind, arg, n } => {
                let n = match n {
                    Some(id) => {
                        let v = run(&prog.subs[*id as usize], env, stack)?;
                        usize::try_from(v.bits()).unwrap_or(usize::MAX)
                    }
                    None => 1,
                };
                let v = env.history(*kind, &prog.subs[*arg as usize], n)?;
                stack.push(v);
            }
            Op::Fail(e) => return Err(e.clone()),
        }
        pc += 1;
    }
    Ok(stack.pop().expect("program result"))
}

// ---------------------------------------------------------------------------
// Expression compilation
// ---------------------------------------------------------------------------

/// Compiles `expr` into a postfix program.
///
/// `resolve` maps identifiers to signals/constants; `history` enables
/// [`Op::History`] lowering of `$past`/`$rose`/`$fell`/`$stable` (trace
/// environments). With `history` disabled those calls compile to plain
/// [`Op::SysCall`]s, which the default environment rejects at execution
/// time exactly like the interpreter.
pub fn compile_expr<R>(expr: &Expr, resolve: &R, history: bool) -> ExprProg
where
    R: Fn(&str) -> NameRef,
{
    let mut prog = ExprProg::default();
    emit(expr, resolve, history, &mut prog);
    prog
}

fn emit<R>(expr: &Expr, resolve: &R, history: bool, prog: &mut ExprProg)
where
    R: Fn(&str) -> NameRef,
{
    match expr {
        Expr::Number { value, width, .. } => {
            prog.ops
                .push(Op::Const(Value::new(*value, width.unwrap_or(32).min(64))));
        }
        Expr::Ident { name, .. } => emit_name(name, resolve, prog),
        Expr::Unary { op, operand, .. } => {
            emit(operand, resolve, history, prog);
            prog.ops.push(Op::Unary(*op));
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            emit(lhs, resolve, history, prog);
            emit(rhs, resolve, history, prog);
            prog.ops.push(Op::Binary(*op));
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
            ..
        } => {
            emit(cond, resolve, history, prog);
            let jif = prog.ops.len();
            prog.ops.push(Op::JumpIfFalse(0));
            emit(then_expr, resolve, history, prog);
            let jend = prog.ops.len();
            prog.ops.push(Op::Jump(0));
            let else_start = prog.ops.len() as u32;
            emit(else_expr, resolve, history, prog);
            let end = prog.ops.len() as u32;
            prog.ops[jif] = Op::JumpIfFalse(else_start);
            prog.ops[jend] = Op::Jump(end);
        }
        Expr::Concat { parts, .. } => {
            if parts.is_empty() {
                prog.ops
                    .push(Op::Fail(EvalError::Malformed("empty concatenation".into())));
                return;
            }
            for p in parts {
                emit(p, resolve, history, prog);
            }
            prog.ops
                .push(Op::ConcatN(u16::try_from(parts.len()).unwrap_or(u16::MAX)));
        }
        Expr::Repeat { count, value, .. } => {
            emit(count, resolve, history, prog);
            prog.ops.push(Op::RepeatGuard);
            emit(value, resolve, history, prog);
            prog.ops.push(Op::Repeat);
        }
        Expr::Bit { name, index, .. } => {
            emit_name(name, resolve, prog);
            emit(index, resolve, history, prog);
            prog.ops.push(Op::BitIndex);
        }
        Expr::Part { name, range, .. } => {
            emit_name(name, resolve, prog);
            prog.ops.push(Op::Slice(range.msb, range.lsb));
        }
        Expr::SysCall { name, args, .. } => {
            let kind = match name.as_str() {
                "past" => Some(HistoryKind::Past),
                "rose" => Some(HistoryKind::Rose),
                "fell" => Some(HistoryKind::Fell),
                "stable" => Some(HistoryKind::Stable),
                _ => None,
            };
            match kind {
                Some(kind) if history => {
                    let Some(arg0) = args.first() else {
                        prog.ops.push(Op::Fail(EvalError::Malformed(format!(
                            "${name} requires an argument"
                        ))));
                        return;
                    };
                    let mut sub = ExprProg::default();
                    emit(arg0, resolve, history, &mut sub);
                    let arg = prog.subs.len() as u32;
                    prog.subs.push(sub);
                    let n = (kind == HistoryKind::Past)
                        .then(|| args.get(1))
                        .flatten()
                        .map(|e| {
                            let mut sub = ExprProg::default();
                            emit(e, resolve, history, &mut sub);
                            let id = prog.subs.len() as u32;
                            prog.subs.push(sub);
                            id
                        });
                    prog.ops.push(Op::History { kind, arg, n });
                }
                _ => {
                    for a in args {
                        emit(a, resolve, history, prog);
                    }
                    prog.ops.push(Op::SysCall {
                        name: name.as_str().into(),
                        argc: u8::try_from(args.len()).unwrap_or(u8::MAX),
                    });
                }
            }
        }
    }
}

fn emit_name<R>(name: &str, resolve: &R, prog: &mut ExprProg)
where
    R: Fn(&str) -> NameRef,
{
    match resolve(name) {
        NameRef::Sig(s) => prog.ops.push(Op::Load(s)),
        NameRef::Const(v) => prog.ops.push(Op::Const(v)),
        NameRef::Unknown => prog
            .ops
            .push(Op::Fail(EvalError::UnknownSignal(name.to_string()))),
    }
}

// ---------------------------------------------------------------------------
// Lowered statements and lvalues
// ---------------------------------------------------------------------------

/// A compiled assignment target.
#[derive(Debug, Clone)]
pub enum CLValue {
    /// Whole signal (write masked to declared width).
    Whole(SigId),
    /// Single bit with a (possibly dynamic) index program.
    Bit {
        /// Target signal.
        sig: SigId,
        /// Index program, evaluated at write time.
        index: ExprProg,
    },
    /// Constant part select.
    Part {
        /// Target signal.
        sig: SigId,
        /// Most significant bit.
        msb: u32,
        /// Least significant bit.
        lsb: u32,
    },
    /// Concatenated target, assigned from the high part downward.
    Concat(Vec<CLValue>),
    /// Target that elaboration never resolved; writing raises
    /// [`EvalError::UnknownSignal`] like the interpreter.
    Unknown(String),
}

/// A compiled procedural statement.
#[derive(Debug, Clone)]
pub enum CStmt {
    /// `begin ... end`
    Block(Vec<CStmt>),
    /// `if (cond) ... else ...`
    If {
        /// Condition program.
        cond: ExprProg,
        /// Taken branch.
        then_branch: Box<CStmt>,
        /// Else branch.
        else_branch: Option<Box<CStmt>>,
        /// Branch-site id of the then arm; the (possibly implicit) else
        /// arm is `site + 1`. See [`CompiledDesign::branch_sites`].
        site: u32,
    },
    /// `case (scrutinee) ... endcase`
    Case {
        /// Scrutinee program.
        scrutinee: ExprProg,
        /// Arms in source order.
        arms: Vec<CCaseArm>,
        /// Default arm.
        default: Option<Box<CStmt>>,
        /// Branch-site id of the first arm; arm *i* is `site + i` and the
        /// (possibly implicit) default is `site + arms.len()`.
        site: u32,
    },
    /// Blocking or nonblocking assignment.
    Assign {
        /// Target.
        lhs: CLValue,
        /// Value program.
        rhs: ExprProg,
        /// `<=` if true.
        nonblocking: bool,
    },
    /// `;`
    Empty,
}

/// One compiled case arm.
#[derive(Debug, Clone)]
pub struct CCaseArm {
    /// Label programs.
    pub labels: Vec<ExprProg>,
    /// Arm body.
    pub body: CStmt,
}

/// One combinational process in source order.
///
/// Public so that second consumers of the compiled form (the `asv-sat`
/// bit-blaster walks the same bytecode symbolically) can traverse the
/// schedule without re-lowering the AST.
#[derive(Debug, Clone)]
pub enum CombStep {
    /// Continuous assignment.
    Assign {
        /// Compiled target.
        lhs: CLValue,
        /// Compiled value program.
        rhs: ExprProg,
    },
    /// Combinational always block (nonblocking writes inside commit at
    /// block end — delta-cycle collapse, as in the interpreter).
    Block(CStmt),
}

/// A design lowered for execution. Cheap to share (`Arc`) across many
/// simulator instances; restarting a simulation is an O(#signals) state
/// reset instead of a `Design` clone.
#[derive(Debug, Clone)]
pub struct CompiledDesign {
    design: Design,
    names: Vec<String>,
    index: HashMap<String, SigId>,
    widths: Vec<u32>,
    init: Vec<Value>,
    comb: Vec<CombStep>,
    /// Execution order over `comb` (levelized when `levelized`, identity
    /// declaration order otherwise).
    order: Vec<usize>,
    /// True when a single ordered pass settles combinational logic.
    levelized: bool,
    seq: Vec<CStmt>,
    /// Number of branch sites allocated across all statements.
    branch_sites: u32,
}

impl CompiledDesign {
    /// Lowers an elaborated design. Never fails: unresolvable constructs
    /// compile to instructions that raise the interpreter's runtime error
    /// when (and only when) they execute.
    pub fn compile(design: &Design) -> Self {
        let names: Vec<String> = design.signals.keys().cloned().collect();
        let index: HashMap<String, SigId> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), SigId(i as u32)))
            .collect();
        let widths: Vec<u32> = design.signals.values().map(|s| s.width).collect();
        let init: Vec<Value> = widths.iter().map(|&w| Value::zero(w)).collect();

        let resolve = |name: &str| -> NameRef {
            if let Some(&sig) = index.get(name) {
                NameRef::Sig(sig)
            } else if let Some(&v) = design.params.get(name) {
                NameRef::Const(param_value(v))
            } else {
                NameRef::Unknown
            }
        };
        let lower_lv = |lv: &LValue| lower_lvalue(lv, &index, &resolve);

        let mut comb = Vec::new();
        let mut seq = Vec::new();
        let mut sites = 0u32;
        for item in &design.module.items {
            match item {
                Item::Assign(a) => comb.push(CombStep::Assign {
                    lhs: lower_lv(&a.lhs),
                    rhs: compile_expr(&a.rhs, &resolve, false),
                }),
                Item::Always(al) => {
                    let body = lower_stmt(&al.body, &index, &resolve, &mut sites);
                    if al.sensitivity.is_combinational() {
                        comb.push(CombStep::Block(body));
                    } else {
                        seq.push(body);
                    }
                }
                _ => {}
            }
        }

        let (order, levelized) = levelize(&comb, names.len());
        CompiledDesign {
            design: design.clone(),
            names,
            index,
            widths,
            init,
            comb,
            order,
            levelized,
            seq,
            branch_sites: sites,
        }
    }

    /// The elaborated design this was compiled from.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Interned signal names, in state/trace column order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Looks up the interned id of a signal.
    pub fn sig(&self, name: &str) -> Option<SigId> {
        self.index.get(name).copied()
    }

    /// Declared width of an interned signal.
    pub fn width(&self, sig: SigId) -> u32 {
        self.widths[sig.idx()]
    }

    /// A fresh all-zero state vector.
    pub fn init_state(&self) -> Vec<Value> {
        self.init.clone()
    }

    /// True when combinational logic settles in one levelized pass (the
    /// fallback is the declaration-order fixpoint loop).
    pub fn is_levelized(&self) -> bool {
        self.levelized
    }

    /// The combinational steps in declaration order. Walk them in
    /// [`CompiledDesign::comb_order`] to replay the levelized schedule.
    pub fn comb_steps(&self) -> &[CombStep] {
        &self.comb
    }

    /// Execution order over [`CompiledDesign::comb_steps`] (levelized when
    /// [`CompiledDesign::is_levelized`], declaration order otherwise).
    pub fn comb_order(&self) -> &[usize] {
        &self.order
    }

    /// The clocked `always` bodies in declaration order, as executed by
    /// [`CompiledDesign::clock_edge`].
    pub fn seq_blocks(&self) -> &[CStmt] {
        &self.seq
    }

    /// Number of branch sites ([`CStmt::If`]/[`CStmt::Case`] arms)
    /// allocated during lowering — the size of a [`crate::cover::CovMap`]'s
    /// branch axis.
    pub fn branch_sites(&self) -> u32 {
        self.branch_sites
    }

    /// Settles combinational logic.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CombDivergence`] when the (cyclic) fallback
    /// fixpoint fails to stabilise, and propagates evaluation errors.
    pub fn settle(&self, state: &mut Vec<Value>, stack: &mut Vec<Value>) -> Result<(), SimError> {
        self.settle_cov(state, stack, &mut NoCov)
    }

    /// [`CompiledDesign::settle`] with branch coverage recorded into
    /// `cov`. With [`NoCov`] this monomorphises to the uninstrumented
    /// executor (zero cost when coverage is disabled).
    ///
    /// # Errors
    ///
    /// As for [`CompiledDesign::settle`].
    pub fn settle_cov<C: CovSink>(
        &self,
        state: &mut Vec<Value>,
        stack: &mut Vec<Value>,
        cov: &mut C,
    ) -> Result<(), SimError> {
        if self.levelized {
            for &i in &self.order {
                self.run_comb_step(&self.comb[i], state, stack, cov)?;
            }
            return Ok(());
        }
        for _ in 0..MAX_SETTLE_ITERS {
            let before = state.clone();
            for step in &self.comb {
                self.run_comb_step(step, state, stack, cov)?;
            }
            if *state == before {
                return Ok(());
            }
        }
        Err(SimError::CombDivergence)
    }

    fn run_comb_step<C: CovSink>(
        &self,
        step: &CombStep,
        state: &mut Vec<Value>,
        stack: &mut Vec<Value>,
        cov: &mut C,
    ) -> Result<(), SimError> {
        match step {
            CombStep::Assign { lhs, rhs } => {
                let v = run(rhs, &StateEnv { state }, stack)?;
                self.write_lvalue(lhs, v, state, stack)?;
            }
            CombStep::Block(body) => {
                let mut nba = Vec::new();
                self.exec_stmt(body, state, stack, &mut nba, cov)?;
                for (lv, v) in nba {
                    self.write_lvalue(lv, v, state, stack)?;
                }
            }
        }
        Ok(())
    }

    /// Executes every clocked block against the pre-edge state and commits
    /// nonblocking updates atomically, mirroring the interpreter's commit
    /// order (per block: blocking diffs in signal order, then NBAs in
    /// execution order).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn clock_edge(
        &self,
        state: &mut Vec<Value>,
        stack: &mut Vec<Value>,
    ) -> Result<(), SimError> {
        self.clock_edge_cov(state, stack, &mut NoCov)
    }

    /// [`CompiledDesign::clock_edge`] with branch coverage recorded into
    /// `cov` (zero cost with [`NoCov`]).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn clock_edge_cov<C: CovSink>(
        &self,
        state: &mut Vec<Value>,
        stack: &mut Vec<Value>,
        cov: &mut C,
    ) -> Result<(), SimError> {
        let pre_edge = state.clone();
        let mut scratch = Vec::new();
        let mut nba_all: Vec<NbaUpdate<'_>> = Vec::new();
        for block in &self.seq {
            scratch.clone_from(&pre_edge);
            let mut nba = Vec::new();
            self.exec_stmt(block, &mut scratch, stack, &mut nba, cov)?;
            for (i, v) in scratch.iter().enumerate() {
                if pre_edge[i] != *v {
                    nba_all.push(NbaUpdate::Whole(SigId(i as u32), *v));
                }
            }
            nba_all.extend(nba.into_iter().map(|(lv, v)| NbaUpdate::Lv(lv, v)));
        }
        for up in nba_all {
            match up {
                NbaUpdate::Whole(sig, v) => {
                    state[sig.idx()] = v.resize(self.widths[sig.idx()]);
                }
                NbaUpdate::Lv(lv, v) => self.write_lvalue(lv, v, state, stack)?,
            }
        }
        Ok(())
    }

    fn exec_stmt<'a, C: CovSink>(
        &'a self,
        s: &'a CStmt,
        state: &mut Vec<Value>,
        stack: &mut Vec<Value>,
        nba: &mut Vec<(&'a CLValue, Value)>,
        cov: &mut C,
    ) -> Result<(), SimError> {
        match s {
            CStmt::Block(stmts) => {
                for st in stmts {
                    self.exec_stmt(st, state, stack, nba, cov)?;
                }
                Ok(())
            }
            CStmt::If {
                cond,
                then_branch,
                else_branch,
                site,
            } => {
                if run(cond, &StateEnv { state }, stack)?.is_truthy() {
                    cov.branch(*site);
                    self.exec_stmt(then_branch, state, stack, nba, cov)
                } else {
                    cov.branch(*site + 1);
                    if let Some(e) = else_branch {
                        self.exec_stmt(e, state, stack, nba, cov)
                    } else {
                        Ok(())
                    }
                }
            }
            CStmt::Case {
                scrutinee,
                arms,
                default,
                site,
            } => {
                let sv = run(scrutinee, &StateEnv { state }, stack)?;
                for (i, arm) in arms.iter().enumerate() {
                    for label in &arm.labels {
                        let lv = run(label, &StateEnv { state }, stack)?;
                        if lv.bits() == sv.bits() {
                            cov.branch(*site + i as u32);
                            return self.exec_stmt(&arm.body, state, stack, nba, cov);
                        }
                    }
                }
                cov.branch(*site + arms.len() as u32);
                if let Some(d) = default {
                    self.exec_stmt(d, state, stack, nba, cov)
                } else {
                    Ok(())
                }
            }
            CStmt::Assign {
                lhs,
                rhs,
                nonblocking,
            } => {
                let v = run(rhs, &StateEnv { state }, stack)?;
                if *nonblocking {
                    nba.push((lhs, v));
                } else {
                    self.write_lvalue(lhs, v, state, stack)?;
                }
                Ok(())
            }
            CStmt::Empty => Ok(()),
        }
    }

    fn write_lvalue(
        &self,
        lv: &CLValue,
        value: Value,
        state: &mut Vec<Value>,
        stack: &mut Vec<Value>,
    ) -> Result<(), SimError> {
        match lv {
            CLValue::Whole(sig) => {
                state[sig.idx()] = value.resize(self.widths[sig.idx()]);
                Ok(())
            }
            CLValue::Bit { sig, index } => {
                let i = run(index, &StateEnv { state }, stack)?.bits();
                let i = u32::try_from(i).unwrap_or(u32::MAX);
                let cur = state[sig.idx()];
                state[sig.idx()] = cur.set_bit(i, value.is_truthy() && value.get_bit(0));
                Ok(())
            }
            CLValue::Part { sig, msb, lsb } => {
                let cur = state[sig.idx()];
                state[sig.idx()] = cur.set_slice(*msb, *lsb, value);
                Ok(())
            }
            CLValue::Concat(_) => {
                // The interpreter snapshots the store on entry: nested
                // reads (including index evaluation) observe pre-write
                // values throughout the concat.
                let snapshot = state.clone();
                self.write_concat_part(lv, value, &snapshot, state, stack)
            }
            CLValue::Unknown(name) => Err(SimError::Eval(EvalError::UnknownSignal(name.clone()))),
        }
    }

    fn write_concat_part(
        &self,
        lv: &CLValue,
        value: Value,
        snapshot: &[Value],
        state: &mut Vec<Value>,
        stack: &mut Vec<Value>,
    ) -> Result<(), SimError> {
        match lv {
            CLValue::Whole(sig) => {
                state[sig.idx()] = value.resize(self.widths[sig.idx()]);
                Ok(())
            }
            CLValue::Bit { sig, index } => {
                let i = run(index, &StateEnv { state: snapshot }, stack)?.bits();
                let i = u32::try_from(i).unwrap_or(u32::MAX);
                let cur = snapshot[sig.idx()];
                state[sig.idx()] = cur.set_bit(i, value.is_truthy() && value.get_bit(0));
                Ok(())
            }
            CLValue::Part { sig, msb, lsb } => {
                let cur = snapshot[sig.idx()];
                state[sig.idx()] = cur.set_slice(*msb, *lsb, value);
                Ok(())
            }
            CLValue::Concat(parts) => {
                let total: u32 = parts
                    .iter()
                    .map(|p| self.lvalue_width(p))
                    .sum::<Result<u32, EvalError>>()?;
                let mut consumed = 0u32;
                for p in parts {
                    let w = self.lvalue_width(p)?;
                    let hi = total - consumed - 1;
                    let lo = total - consumed - w;
                    let field = value.resize(total.min(64)).slice(hi.min(63), lo.min(63));
                    self.write_concat_part(p, field, snapshot, state, stack)?;
                    consumed += w;
                }
                Ok(())
            }
            CLValue::Unknown(name) => Err(SimError::Eval(EvalError::UnknownSignal(name.clone()))),
        }
    }

    fn lvalue_width(&self, lv: &CLValue) -> Result<u32, EvalError> {
        match lv {
            CLValue::Whole(sig) => Ok(self.widths[sig.idx()]),
            CLValue::Bit { .. } => Ok(1),
            CLValue::Part { msb, lsb, .. } => Ok(msb - lsb + 1),
            CLValue::Concat(parts) => parts.iter().map(|p| self.lvalue_width(p)).sum(),
            CLValue::Unknown(name) => Err(EvalError::UnknownSignal(name.clone())),
        }
    }
}

/// Pending nonblocking update during a clock edge.
enum NbaUpdate<'a> {
    /// Whole-signal commit of a blocking-write diff.
    Whole(SigId, Value),
    /// Deferred `<=` write through a compiled lvalue.
    Lv(&'a CLValue, Value),
}

/// State environment over the flat value store.
struct StateEnv<'a> {
    state: &'a [Value],
}

impl ExecEnv for StateEnv<'_> {
    #[inline]
    fn load(&self, sig: SigId) -> Value {
        self.state[sig.idx()]
    }
}

fn lower_lvalue<R>(lv: &LValue, index: &HashMap<String, SigId>, resolve: &R) -> CLValue
where
    R: Fn(&str) -> NameRef,
{
    let sig_of = |name: &str| index.get(name).copied();
    match lv {
        LValue::Ident { name, .. } => match sig_of(name) {
            Some(sig) => CLValue::Whole(sig),
            None => CLValue::Unknown(name.clone()),
        },
        LValue::Bit {
            name, index: ix, ..
        } => match sig_of(name) {
            Some(sig) => CLValue::Bit {
                sig,
                index: compile_expr(ix, resolve, false),
            },
            None => CLValue::Unknown(name.clone()),
        },
        LValue::Part { name, range, .. } => match sig_of(name) {
            Some(sig) => CLValue::Part {
                sig,
                msb: range.msb,
                lsb: range.lsb,
            },
            None => CLValue::Unknown(name.clone()),
        },
        LValue::Concat { parts, .. } => CLValue::Concat(
            parts
                .iter()
                .map(|p| lower_lvalue(p, index, resolve))
                .collect(),
        ),
    }
}

fn lower_stmt<R>(s: &Stmt, index: &HashMap<String, SigId>, resolve: &R, sites: &mut u32) -> CStmt
where
    R: Fn(&str) -> NameRef,
{
    match s {
        Stmt::Block { stmts, .. } => CStmt::Block(
            stmts
                .iter()
                .map(|st| lower_stmt(st, index, resolve, sites))
                .collect(),
        ),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            // Two arms: taken (`site`) and not-taken (`site + 1`), whether
            // or not an else branch exists.
            let site = *sites;
            *sites += 2;
            CStmt::If {
                cond: compile_expr(cond, resolve, false),
                then_branch: Box::new(lower_stmt(then_branch, index, resolve, sites)),
                else_branch: else_branch
                    .as_ref()
                    .map(|e| Box::new(lower_stmt(e, index, resolve, sites))),
                site,
            }
        }
        Stmt::Case {
            scrutinee,
            arms,
            default,
            ..
        } => {
            // One site per arm plus the (possibly implicit) default.
            let site = *sites;
            *sites += arms.len() as u32 + 1;
            CStmt::Case {
                scrutinee: compile_expr(scrutinee, resolve, false),
                arms: arms
                    .iter()
                    .map(|arm| CCaseArm {
                        labels: arm
                            .labels
                            .iter()
                            .map(|l| compile_expr(l, resolve, false))
                            .collect(),
                        body: lower_stmt(&arm.body, index, resolve, sites),
                    })
                    .collect(),
                default: default
                    .as_ref()
                    .map(|d| Box::new(lower_stmt(d, index, resolve, sites))),
                site,
            }
        }
        Stmt::Assign {
            lhs,
            rhs,
            nonblocking,
            ..
        } => CStmt::Assign {
            lhs: lower_lvalue(lhs, index, resolve),
            rhs: compile_expr(rhs, resolve, false),
            nonblocking: *nonblocking,
        },
        Stmt::Empty { .. } => CStmt::Empty,
    }
}

// ---------------------------------------------------------------------------
// Levelization
// ---------------------------------------------------------------------------

/// Topologically orders combinational steps so one pass settles the logic.
///
/// Returns declaration order with `levelized = false` when exact
/// interpreter equivalence cannot be guaranteed by a single pass:
/// dependency cycles, latch-style blocks whose targets are not assigned on
/// every path, or dynamically indexed bit writes (whose stale-index
/// residues are iteration artefacts the fixpoint loop reproduces).
fn levelize(comb: &[CombStep], n_signals: usize) -> (Vec<usize>, bool) {
    let decl_order: Vec<usize> = (0..comb.len()).collect();
    let mut reads: Vec<Vec<SigId>> = Vec::with_capacity(comb.len());
    let mut writes: Vec<Vec<SigId>> = Vec::with_capacity(comb.len());
    for step in comb {
        let mut fx = StepFx::default();
        match step {
            CombStep::Assign { lhs, rhs } => {
                fx.read_prog(rhs);
                if !fx.write_lvalue(lhs) {
                    return (decl_order, false);
                }
            }
            CombStep::Block(body) => {
                if !fx.walk(body) {
                    return (decl_order, false);
                }
                // For branching blocks every written signal must be fully
                // assigned (whole-signal write) on every path — otherwise
                // the block is a latch, whose settled value depends on the
                // fixpoint iteration the interpreter performs.
                let latch_free = !fx.branching
                    || fx.writes.iter().all(|sig| {
                        fx.whole_targets.contains(sig) && assigns_on_all_paths(body, *sig)
                    });
                if !latch_free {
                    return (decl_order, false);
                }
            }
        }
        reads.push(fx.reads);
        writes.push(fx.writes);
    }

    // writer → reader and (declaration-ordered) writer → writer edges.
    let n = comb.len();
    let mut writers_of: Vec<Vec<usize>> = vec![Vec::new(); n_signals];
    for (i, ws) in writes.iter().enumerate() {
        for w in ws {
            writers_of[w.idx()].push(i);
        }
    }
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    let add_edge = |succs: &mut Vec<Vec<usize>>, indeg: &mut Vec<usize>, a: usize, b: usize| {
        if a != b && !succs[a].contains(&b) {
            succs[a].push(b);
            indeg[b] += 1;
        }
    };
    for (j, rs) in reads.iter().enumerate() {
        for r in rs {
            for &i in &writers_of[r.idx()] {
                if i == j {
                    // A step reading its own output is a combinational
                    // cycle; keep the fixpoint loop.
                    return (decl_order, false);
                }
                add_edge(&mut succs, &mut indeg, i, j);
            }
        }
    }
    for writers in &writers_of {
        for pair in writers.windows(2) {
            add_edge(&mut succs, &mut indeg, pair[0], pair[1]);
        }
    }

    // Kahn's algorithm, smallest declaration index first for determinism.
    let mut ready: std::collections::BTreeSet<usize> = indeg
        .iter()
        .enumerate()
        .filter(|(_, &d)| d == 0)
        .map(|(i, _)| i)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(&i) = ready.iter().next() {
        ready.remove(&i);
        order.push(i);
        for &j in &succs[i] {
            indeg[j] -= 1;
            if indeg[j] == 0 {
                ready.insert(j);
            }
        }
    }
    if order.len() == n {
        (order, true)
    } else {
        (decl_order, false)
    }
}

/// Read/write effects of one combinational step, plus the structural
/// properties levelization depends on.
#[derive(Default)]
struct StepFx {
    reads: Vec<SigId>,
    writes: Vec<SigId>,
    /// True when the step contains `if`/`case` control flow.
    branching: bool,
    /// Signals assigned via whole-signal writes (for the latch check).
    whole_targets: Vec<SigId>,
}

impl StepFx {
    fn read_prog(&mut self, prog: &ExprProg) {
        for op in &prog.ops {
            if let Op::Load(s) = op {
                if !self.reads.contains(s) {
                    self.reads.push(*s);
                }
            }
        }
        for sub in &prog.subs {
            self.read_prog(sub);
        }
    }

    /// Records a write; returns `false` when the target shape rules out
    /// levelization (dynamic bit index).
    fn write_lvalue(&mut self, lv: &CLValue) -> bool {
        match lv {
            CLValue::Whole(s) => {
                if !self.writes.contains(s) {
                    self.writes.push(*s);
                }
                if !self.whole_targets.contains(s) {
                    self.whole_targets.push(*s);
                }
                true
            }
            CLValue::Bit { sig, index } => {
                if !self.writes.contains(sig) {
                    self.writes.push(*sig);
                }
                self.read_prog(index);
                index.is_const()
            }
            CLValue::Part { sig, .. } => {
                if !self.writes.contains(sig) {
                    self.writes.push(*sig);
                }
                true
            }
            CLValue::Concat(parts) => parts.iter().all(|p| self.write_lvalue(p)),
            CLValue::Unknown(_) => true,
        }
    }

    /// Walks a block body collecting effects; returns `false` on shapes
    /// that rule out levelization.
    fn walk(&mut self, s: &CStmt) -> bool {
        match s {
            CStmt::Block(stmts) => stmts.iter().all(|st| self.walk(st)),
            CStmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                self.branching = true;
                self.read_prog(cond);
                self.walk(then_branch) && else_branch.as_ref().is_none_or(|e| self.walk(e))
            }
            CStmt::Case {
                scrutinee,
                arms,
                default,
                ..
            } => {
                self.branching = true;
                self.read_prog(scrutinee);
                for arm in arms {
                    for l in &arm.labels {
                        self.read_prog(l);
                    }
                }
                arms.iter().all(|a| self.walk(&a.body))
                    && default.as_ref().is_none_or(|d| self.walk(d))
            }
            CStmt::Assign { lhs, rhs, .. } => {
                self.read_prog(rhs);
                self.write_lvalue(lhs)
            }
            CStmt::Empty => true,
        }
    }
}

/// True when every control path through `s` performs a whole-signal
/// assignment to `sig`.
fn assigns_on_all_paths(s: &CStmt, sig: SigId) -> bool {
    match s {
        CStmt::Block(stmts) => stmts.iter().any(|st| assigns_on_all_paths(st, sig)),
        CStmt::If {
            then_branch,
            else_branch,
            ..
        } => else_branch.as_ref().is_some_and(|e| {
            assigns_on_all_paths(then_branch, sig) && assigns_on_all_paths(e, sig)
        }),
        CStmt::Case { arms, default, .. } => default.as_ref().is_some_and(|d| {
            arms.iter().all(|a| assigns_on_all_paths(&a.body, sig)) && assigns_on_all_paths(d, sig)
        }),
        CStmt::Assign { lhs, .. } => matches!(lhs, CLValue::Whole(s) if *s == sig),
        CStmt::Empty => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_verilog::compile as velab;

    fn compiled(src: &str) -> CompiledDesign {
        CompiledDesign::compile(&velab(src).expect("compile"))
    }

    #[test]
    fn interns_signals_in_sorted_order() {
        let c = compiled("module m(input b, input a, output y);\nassign y = a & b;\nendmodule");
        assert_eq!(c.names(), &["a", "b", "y"]);
        assert_eq!(c.sig("a"), Some(SigId(0)));
        assert_eq!(c.sig("y"), Some(SigId(2)));
        assert_eq!(c.sig("ghost"), None);
    }

    #[test]
    fn acyclic_designs_levelize() {
        let c = compiled(
            "module m(input a, output y);\nwire t;\nassign y = t;\nassign t = ~a;\nendmodule",
        );
        assert!(c.is_levelized());
        // `t`'s driver must be scheduled before `y`'s reader.
        assert_eq!(c.order, vec![1, 0]);
    }

    #[test]
    fn cyclic_designs_fall_back() {
        let c = compiled(
            "module osc(input a, output y);\nwire n;\nassign n = ~n | a;\nassign y = n;\nendmodule",
        );
        assert!(!c.is_levelized());
    }

    #[test]
    fn latch_style_blocks_fall_back() {
        let c = compiled(
            "module l(input en, input d, output reg q);\n\
             always @(*) begin if (en) q = d; end\nendmodule",
        );
        assert!(!c.is_levelized());
    }

    #[test]
    fn complete_mux_blocks_levelize() {
        let c = compiled(
            "module m(input [1:0] s, input [3:0] a, input [3:0] b, output reg [3:0] y);\n\
             always @(*) begin\n\
               case (s) 2'd0: y = a; 2'd1: y = b; default: y = 4'd0; endcase\n\
             end\nendmodule",
        );
        assert!(c.is_levelized());
    }

    #[test]
    fn dynamic_bit_writes_fall_back() {
        let c = compiled(
            "module d(input [1:0] i, input v, output [3:0] y);\n\
             assign y[i] = v;\nendmodule",
        );
        assert!(!c.is_levelized());
    }

    #[test]
    fn ternary_only_evaluates_taken_branch() {
        // Division by zero in the untaken branch must not error.
        let c = compiled(
            "module t(input s, input [3:0] a, input [3:0] b, output [3:0] y);\n\
             assign y = s ? a / b : a;\nendmodule",
        );
        let mut state = c.init_state();
        let mut stack = Vec::new();
        state[c.sig("s").unwrap().idx()] = Value::bit(false);
        state[c.sig("b").unwrap().idx()] = Value::zero(4);
        state[c.sig("a").unwrap().idx()] = Value::new(5, 4);
        c.settle(&mut state, &mut stack).expect("no div-by-zero");
        assert_eq!(state[c.sig("y").unwrap().idx()].bits(), 5);
        state[c.sig("s").unwrap().idx()] = Value::bit(true);
        assert_eq!(
            c.settle(&mut state, &mut stack),
            Err(SimError::Eval(EvalError::DivideByZero))
        );
    }

    #[test]
    fn params_fold_to_32_bit_constants() {
        let c = compiled(
            "module p #(parameter W = 5)(input [7:0] a, output [7:0] y);\n\
             assign y = a + W;\nendmodule",
        );
        let mut state = c.init_state();
        let mut stack = Vec::new();
        state[c.sig("a").unwrap().idx()] = Value::new(2, 8);
        c.settle(&mut state, &mut stack).expect("settle");
        assert_eq!(state[c.sig("y").unwrap().idx()].bits(), 7);
        assert_eq!(param_value(5).width(), 32);
        assert_eq!(param_value(u64::MAX).width(), 64);
    }

    #[test]
    fn stack_is_restored_after_errors() {
        let prog = ExprProg {
            ops: vec![
                Op::Const(Value::new(1, 4)),
                Op::Fail(EvalError::DivideByZero),
            ],
            subs: Vec::new(),
        };
        struct NoEnv;
        impl ExecEnv for NoEnv {
            fn load(&self, _: SigId) -> Value {
                unreachable!()
            }
        }
        let mut stack = vec![Value::bit(true)];
        assert!(run(&prog, &NoEnv, &mut stack).is_err());
        assert_eq!(stack.len(), 1, "scratch stack must be restored");
    }
}
