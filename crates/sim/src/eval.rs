//! Expression interpreter shared by the simulator and the SVA monitor.
//!
//! Evaluation is generic over an [`Env`], so the same code evaluates design
//! expressions against live simulator state and property expressions
//! against sampled trace history (where `$past`/`$rose`/... are resolved by
//! the environment).

use crate::value::Value;
use asv_verilog::ast::{Expr, LValue};

// The pure operator semantics live in `asv-ir` (the IR constant folder
// must share them exactly); they are re-exported here so every historical
// `asv_sim::eval::{unary, binary, …}` path keeps working.
pub use asv_ir::eval::{binary, default_sys_call, unary, EvalError};

/// Value-lookup environment for expression evaluation.
pub trait Env {
    /// Current value of a signal or parameter.
    fn value_of(&self, name: &str) -> Option<Value>;

    /// Resolves a system call. The default rejects everything except
    /// `$countones`/`$onehot`/`$onehot0`, which are purely combinational.
    fn sys_call(&self, name: &str, args: &[Value]) -> Result<Value, EvalError> {
        default_sys_call(name, args)
    }
}

/// Evaluates `expr` in `env`.
///
/// All arithmetic is unsigned and wraps at 64 bits; results are masked by
/// assignment-target width at write time (see [`crate::exec`]).
///
/// # Errors
///
/// Returns [`EvalError`] for unknown identifiers, unsupported system calls
/// and division by zero.
pub fn eval<E: Env + ?Sized>(expr: &Expr, env: &E) -> Result<Value, EvalError> {
    match expr {
        Expr::Number { value, width, .. } => Ok(Value::new(*value, width.unwrap_or(32).min(64))),
        Expr::Ident { name, .. } => env
            .value_of(name)
            .ok_or_else(|| EvalError::UnknownSignal(name.clone())),
        Expr::Unary { op, operand, .. } => Ok(unary(*op, eval(operand, env)?)),
        Expr::Binary { op, lhs, rhs, .. } => {
            let a = eval(lhs, env)?;
            let b = eval(rhs, env)?;
            binary(*op, a, b)
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
            ..
        } => {
            if eval(cond, env)?.is_truthy() {
                eval(then_expr, env)
            } else {
                eval(else_expr, env)
            }
        }
        Expr::Concat { parts, .. } => {
            let mut acc: Option<Value> = None;
            for p in parts {
                let v = eval(p, env)?;
                acc = Some(match acc {
                    None => v,
                    Some(hi) => hi.concat(v),
                });
            }
            acc.ok_or_else(|| EvalError::Malformed("empty concatenation".into()))
        }
        Expr::Repeat { count, value, .. } => {
            let n = eval(count, env)?.bits();
            if n == 0 || n > 64 {
                return Err(EvalError::Malformed(format!(
                    "replication count {n} outside 1..=64"
                )));
            }
            let v = eval(value, env)?;
            let mut acc = v;
            for _ in 1..n {
                acc = acc.concat(v);
            }
            Ok(acc)
        }
        Expr::Bit { name, index, .. } => {
            let base = env
                .value_of(name)
                .ok_or_else(|| EvalError::UnknownSignal(name.clone()))?;
            let i = eval(index, env)?.bits();
            Ok(Value::bit(
                u32::try_from(i).map(|i| base.get_bit(i)).unwrap_or(false),
            ))
        }
        Expr::Part { name, range, .. } => {
            let base = env
                .value_of(name)
                .ok_or_else(|| EvalError::UnknownSignal(name.clone()))?;
            Ok(base.slice(range.msb, range.lsb))
        }
        Expr::SysCall { name, args, .. } => {
            // History-dependent calls ($past/$rose/...) are intercepted by
            // the SVA environment before argument evaluation; reaching here
            // means the env wants plain evaluated arguments.
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, env)?);
            }
            env.sys_call(name, &vals)
        }
    }
}

/// Applies an assignment of `value` to `lv` over a mutable store via
/// callbacks, honouring bit- and part-selects and concat targets.
///
/// `read` fetches the current value of a signal (for read-modify-write of
/// selects); `write` commits the new full-width value.
///
/// # Errors
///
/// Propagates [`EvalError`] from index evaluation and unknown signals.
pub fn assign_lvalue<E, R, W>(
    lv: &LValue,
    value: Value,
    env: &E,
    read: &mut R,
    write: &mut W,
) -> Result<(), EvalError>
where
    E: Env + ?Sized,
    R: FnMut(&str) -> Option<Value>,
    W: FnMut(&str, Value),
{
    match lv {
        LValue::Ident { name, .. } => {
            let width = read(name)
                .ok_or_else(|| EvalError::UnknownSignal(name.clone()))?
                .width();
            write(name, value.resize(width));
            Ok(())
        }
        LValue::Bit { name, index, .. } => {
            let cur = read(name).ok_or_else(|| EvalError::UnknownSignal(name.clone()))?;
            let i = eval(index, env)?.bits();
            let i = u32::try_from(i).unwrap_or(u32::MAX);
            write(name, cur.set_bit(i, value.is_truthy() && value.get_bit(0)));
            Ok(())
        }
        LValue::Part { name, range, .. } => {
            let cur = read(name).ok_or_else(|| EvalError::UnknownSignal(name.clone()))?;
            write(name, cur.set_slice(range.msb, range.lsb, value));
            Ok(())
        }
        LValue::Concat { parts, .. } => {
            // Assign from the high part downward.
            let mut widths = Vec::with_capacity(parts.len());
            for p in parts {
                widths.push(lvalue_width(p, read)?);
            }
            let total: u32 = widths.iter().sum();
            let mut consumed = 0;
            for (p, w) in parts.iter().zip(widths) {
                let hi = total - consumed - 1;
                let lo = total - consumed - w;
                let field = value.resize(total.min(64)).slice(hi.min(63), lo.min(63));
                assign_lvalue(p, field, env, read, write)?;
                consumed += w;
            }
            Ok(())
        }
    }
}

fn lvalue_width<R: FnMut(&str) -> Option<Value>>(
    lv: &LValue,
    read: &mut R,
) -> Result<u32, EvalError> {
    match lv {
        LValue::Ident { name, .. } => read(name)
            .map(|v| v.width())
            .ok_or_else(|| EvalError::UnknownSignal(name.clone())),
        LValue::Bit { .. } => Ok(1),
        LValue::Part { range, .. } => Ok(range.width()),
        LValue::Concat { parts, .. } => {
            let mut total = 0;
            for p in parts {
                total += lvalue_width(p, read)?;
            }
            Ok(total)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_verilog::ast::Item;
    use asv_verilog::parse;
    use std::collections::BTreeMap;

    struct MapEnv(BTreeMap<String, Value>);

    impl Env for MapEnv {
        fn value_of(&self, name: &str) -> Option<Value> {
            self.0.get(name).copied()
        }
    }

    fn eval_src(expr_src: &str, bindings: &[(&str, u64, u32)]) -> Result<Value, EvalError> {
        let decls: String = bindings
            .iter()
            .map(|(n, _, w)| format!("input [{}:0] {n}, ", w - 1))
            .collect();
        let src = format!("module t({decls}output [63:0] y);\nassign y = {expr_src};\nendmodule");
        let unit = parse(&src).expect("parse ok");
        let Item::Assign(ca) = unit.modules[0]
            .items
            .iter()
            .find(|i| matches!(i, Item::Assign(_)))
            .expect("assign present")
        else {
            unreachable!()
        };
        let env = MapEnv(
            bindings
                .iter()
                .map(|(n, v, w)| (n.to_string(), Value::new(*v, *w)))
                .collect(),
        );
        eval(&ca.rhs, &env)
    }

    #[test]
    fn arithmetic_wraps_at_width() {
        let v = eval_src("a + b", &[("a", 15, 4), ("b", 1, 4)]).expect("eval");
        assert_eq!(v.bits(), 0, "4-bit wraparound");
    }

    #[test]
    fn comparison_yields_single_bit() {
        let v = eval_src("a < b", &[("a", 3, 4), ("b", 7, 4)]).expect("eval");
        assert_eq!(v.bits(), 1);
        assert_eq!(v.width(), 1);
    }

    #[test]
    fn ternary_selects() {
        assert_eq!(
            eval_src("sel ? a : b", &[("sel", 1, 1), ("a", 5, 4), ("b", 9, 4)])
                .expect("eval")
                .bits(),
            5
        );
        assert_eq!(
            eval_src("sel ? a : b", &[("sel", 0, 1), ("a", 5, 4), ("b", 9, 4)])
                .expect("eval")
                .bits(),
            9
        );
    }

    #[test]
    fn reduction_and_logical_ops() {
        assert_eq!(eval_src("&a", &[("a", 0xF, 4)]).expect("eval").bits(), 1);
        assert_eq!(
            eval_src("a && b", &[("a", 2, 4), ("b", 0, 4)])
                .expect("eval")
                .bits(),
            0
        );
        assert_eq!(eval_src("!a", &[("a", 0, 4)]).expect("eval").bits(), 1);
    }

    #[test]
    fn concat_and_repeat() {
        let v = eval_src("{a, b}", &[("a", 0xA, 4), ("b", 0x5, 4)]).expect("eval");
        assert_eq!(v.bits(), 0xA5);
        let r = eval_src("{2{a}}", &[("a", 0xA, 4)]).expect("eval");
        assert_eq!(r.bits(), 0xAA);
    }

    #[test]
    fn bit_and_part_select() {
        assert_eq!(
            eval_src("a[2]", &[("a", 0b0100, 4)]).expect("eval").bits(),
            1
        );
        assert_eq!(
            eval_src("a[3:2]", &[("a", 0b1100, 4)])
                .expect("eval")
                .bits(),
            0b11
        );
    }

    #[test]
    fn divide_by_zero_is_error() {
        assert_eq!(
            eval_src("a / b", &[("a", 4, 4), ("b", 0, 4)]),
            Err(EvalError::DivideByZero)
        );
    }

    #[test]
    fn unknown_signal_is_error() {
        let env = MapEnv(BTreeMap::new());
        let unit = parse("module t(input zz, output y); assign y = zz; endmodule").expect("ok");
        let Item::Assign(ca) = &unit.modules[0].items[0] else {
            panic!("expected assign item");
        };
        assert!(matches!(
            eval(&ca.rhs, &env),
            Err(EvalError::UnknownSignal(_))
        ));
    }

    #[test]
    fn countones_sys_call() {
        assert_eq!(
            eval_src("$countones(a)", &[("a", 0b1011, 4)])
                .expect("eval")
                .bits(),
            3
        );
    }

    #[test]
    fn ashr_sign_extends() {
        // a = 8'b1000_0000 >>> 2 = 8'b1110_0000 when msb set.
        let v = eval_src("a >>> b", &[("a", 0x80, 8), ("b", 2, 4)]).expect("eval");
        assert_eq!(v.bits() & 0xFF, 0xE0);
    }

    #[test]
    fn assign_lvalue_bit_select() {
        let store: BTreeMap<String, Value> = BTreeMap::from([("y".to_string(), Value::new(0, 4))]);
        let mut written: BTreeMap<String, Value> = BTreeMap::new();
        let env = MapEnv(store.clone());
        let unit = parse(
            "module t(input clk, output reg [3:0] y); always @(posedge clk) y[2] = 1'b1; endmodule",
        )
        .expect("parse");
        let Item::Always(al) = &unit.modules[0].items[0] else {
            panic!()
        };
        let asv_verilog::ast::Stmt::Assign { lhs, .. } = &al.body else {
            panic!()
        };
        assign_lvalue(
            lhs,
            Value::bit(true),
            &env,
            &mut |n| store.get(n).copied(),
            &mut |n, v| {
                written.insert(n.to_string(), v);
            },
        )
        .expect("assign ok");
        assert_eq!(written["y"].bits(), 0b0100);
    }
}
