//! Reference AST-interpreting simulator (the oracle backend).
//!
//! [`AstSimulator`] is the original tree-walking executor: per-node
//! expression evaluation through [`crate::eval`], a `BTreeMap` state store
//! keyed by signal name, and blind fixpoint iteration for combinational
//! settling. It is deliberately simple and is kept as the *reference
//! oracle* for the compiled backend in [`crate::compile`]: the
//! differential test suite asserts both backends produce bit-identical
//! traces on randomly generated designs and stimulus.
//!
//! Production code paths (the bounded verifier, datagen, the evaluation
//! judge) use the compiled [`crate::exec::Simulator`]; reach for this type
//! only to cross-check semantics or to debug a miscompare.

use crate::compile::param_value;
use crate::eval::{assign_lvalue, eval, Env};
use crate::exec::SimError;
use crate::trace::Trace;
use crate::value::Value;
use asv_verilog::ast::*;
use asv_verilog::sema::Design;
use std::collections::BTreeMap;

/// Maximum delta iterations while settling combinational logic.
const MAX_SETTLE_ITERS: usize = 64;

/// A running AST-interpreted simulation of one elaborated [`Design`].
#[derive(Debug, Clone)]
pub struct AstSimulator {
    design: Design,
    state: BTreeMap<String, Value>,
    comb: Vec<CombProc>,
    seq: Vec<AlwaysBlock>,
    trace_names: Vec<String>,
    trace: Trace,
}

#[derive(Debug, Clone)]
enum CombProc {
    Assign(ContAssign),
    Block(AlwaysBlock),
}

struct StateEnv<'a> {
    state: &'a BTreeMap<String, Value>,
    params: &'a BTreeMap<String, u64>,
}

impl Env for StateEnv<'_> {
    fn value_of(&self, name: &str) -> Option<Value> {
        // Parameters evaluate at 32 bits (the numeric-literal default)
        // unless the value needs more — shared with the compiled backend
        // via `param_value`.
        self.state
            .get(name)
            .copied()
            .or_else(|| self.params.get(name).map(|&v| param_value(v)))
    }
}

impl AstSimulator {
    /// Creates a simulator with all signals initialised to zero.
    pub fn new(design: &Design) -> Self {
        let mut state = BTreeMap::new();
        for (name, info) in &design.signals {
            state.insert(name.clone(), Value::zero(info.width));
        }
        let mut comb = Vec::new();
        let mut seq = Vec::new();
        for item in &design.module.items {
            match item {
                Item::Assign(a) => comb.push(CombProc::Assign(a.clone())),
                Item::Always(al) => {
                    if al.sensitivity.is_combinational() {
                        comb.push(CombProc::Block(al.clone()));
                    } else {
                        seq.push(al.clone());
                    }
                }
                _ => {}
            }
        }
        let trace_names: Vec<String> = design.signals.keys().cloned().collect();
        AstSimulator {
            design: design.clone(),
            state,
            comb,
            seq,
            trace: Trace::new(trace_names.clone()),
            trace_names,
        }
    }

    /// The design under simulation.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Current (post-settle) value of a signal.
    pub fn value(&self, name: &str) -> Option<Value> {
        self.state.get(name).copied()
    }

    /// Drives an input port for subsequent ticks.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a known signal.
    pub fn set_input(&mut self, name: &str, value: u64) {
        let width = self
            .state
            .get(name)
            .unwrap_or_else(|| panic!("unknown signal `{name}`"))
            .width();
        self.state
            .insert(name.to_string(), Value::new(value, width));
    }

    /// The recorded waveform so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the simulator, returning the trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Runs one clock tick with the given input assignments.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on evaluation failure or non-settling
    /// combinational logic.
    pub fn step(&mut self, inputs: &[(&str, u64)]) -> Result<(), SimError> {
        for (name, v) in inputs {
            self.set_input(name, *v);
        }
        self.settle()?;
        self.sample();
        self.clock_edge()?;
        self.settle()?;
        Ok(())
    }

    /// Runs `n` ticks with constant inputs.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`].
    pub fn run(&mut self, n: usize, inputs: &[(&str, u64)]) -> Result<(), SimError> {
        for _ in 0..n {
            self.step(inputs)?;
        }
        Ok(())
    }

    /// Settles combinational logic to a fixpoint.
    fn settle(&mut self) -> Result<(), SimError> {
        for _ in 0..MAX_SETTLE_ITERS {
            let before = self.state.clone();
            let comb = self.comb.clone();
            for proc in &comb {
                match proc {
                    CombProc::Assign(a) => {
                        let env = StateEnv {
                            state: &self.state,
                            params: &self.design.params,
                        };
                        let v = eval(&a.rhs, &env)?;
                        self.write_lvalue(&a.lhs, v)?;
                    }
                    CombProc::Block(b) => {
                        // Combinational always blocks use blocking assigns:
                        // effects are visible immediately within the block.
                        let mut nba = Vec::new();
                        self.exec_stmt(&b.body, &mut nba)?;
                        // NBAs in comb blocks are committed immediately too
                        // (delta-cycle collapse).
                        for (lv, v) in nba {
                            self.write_lvalue(&lv, v)?;
                        }
                    }
                }
            }
            if self.state == before {
                return Ok(());
            }
        }
        Err(SimError::CombDivergence)
    }

    fn sample(&mut self) {
        let row: Vec<Value> = self.trace_names.iter().map(|n| self.state[n]).collect();
        self.trace.push(row);
    }

    fn clock_edge(&mut self) -> Result<(), SimError> {
        // Evaluate every clocked block against the pre-edge state; commit
        // nonblocking updates atomically afterwards.
        let pre_edge = self.state.clone();
        let mut nba_all: Vec<(LValue, Value)> = Vec::new();
        let seq = self.seq.clone();
        for block in &seq {
            // Blocking assigns inside a clocked block take effect within
            // that block only; start each block from the pre-edge state.
            self.state = pre_edge.clone();
            let mut nba = Vec::new();
            self.exec_stmt(&block.body, &mut nba)?;
            // Blocking writes performed by this block also persist: record
            // them as updates relative to pre-edge.
            for (name, v) in &self.state {
                if pre_edge.get(name) != Some(v) {
                    nba_all.push((
                        LValue::Ident {
                            name: name.clone(),
                            span: asv_verilog::Span::default(),
                        },
                        *v,
                    ));
                }
            }
            nba_all.extend(nba);
        }
        self.state = pre_edge;
        for (lv, v) in nba_all {
            self.write_lvalue(&lv, v)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, s: &Stmt, nba: &mut Vec<(LValue, Value)>) -> Result<(), SimError> {
        match s {
            Stmt::Block { stmts, .. } => {
                for st in stmts {
                    self.exec_stmt(st, nba)?;
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let env = StateEnv {
                    state: &self.state,
                    params: &self.design.params,
                };
                if eval(cond, &env)?.is_truthy() {
                    self.exec_stmt(then_branch, nba)
                } else if let Some(e) = else_branch {
                    self.exec_stmt(e, nba)
                } else {
                    Ok(())
                }
            }
            Stmt::Case {
                scrutinee,
                arms,
                default,
                ..
            } => {
                let env = StateEnv {
                    state: &self.state,
                    params: &self.design.params,
                };
                let sv = eval(scrutinee, &env)?;
                for arm in arms {
                    for label in &arm.labels {
                        let lv = eval(label, &env)?;
                        if lv.bits() == sv.bits() {
                            return self.exec_stmt(&arm.body, nba);
                        }
                    }
                }
                if let Some(d) = default {
                    self.exec_stmt(d, nba)
                } else {
                    Ok(())
                }
            }
            Stmt::Assign {
                lhs,
                rhs,
                nonblocking,
                ..
            } => {
                let env = StateEnv {
                    state: &self.state,
                    params: &self.design.params,
                };
                let v = eval(rhs, &env)?;
                if *nonblocking {
                    nba.push((lhs.clone(), v));
                } else {
                    self.write_lvalue(lhs, v)?;
                }
                Ok(())
            }
            Stmt::Empty { .. } => Ok(()),
        }
    }

    fn write_lvalue(&mut self, lv: &LValue, v: Value) -> Result<(), SimError> {
        let env_state = self.state.clone();
        let env = StateEnv {
            state: &env_state,
            params: &self.design.params,
        };
        let state = &mut self.state;
        assign_lvalue(
            lv,
            v,
            &env,
            &mut |n| env_state.get(n).copied(),
            &mut |n, val| {
                state.insert(n.to_string(), val);
            },
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_verilog::compile;

    fn sim(src: &str) -> AstSimulator {
        let d = compile(src).unwrap_or_else(|e| panic!("compile failed: {e}"));
        AstSimulator::new(&d)
    }

    #[test]
    fn counter_counts() {
        let mut s = sim(
            "module c(input clk, input rst_n, input en, output reg [3:0] q);\n\
             always @(posedge clk or negedge rst_n) begin\n\
               if (!rst_n) q <= 4'd0;\n\
               else if (en) q <= q + 4'd1;\n\
             end\nendmodule",
        );
        s.step(&[("rst_n", 0), ("en", 0)]).expect("reset");
        for i in 1..=5u64 {
            s.step(&[("rst_n", 1), ("en", 1)]).expect("step");
            assert_eq!(s.value("q").map(Value::bits), Some(i));
        }
    }

    #[test]
    fn divergent_comb_loop_is_reported() {
        let mut s = sim(
            "module osc(input a, output y);\nwire n;\nassign n = ~n | a;\nassign y = n;\nendmodule",
        );
        assert_eq!(s.step(&[("a", 0)]), Err(SimError::CombDivergence));
    }

    #[test]
    fn parameters_evaluate_at_declared_literal_width() {
        // ~P over a 32-bit parameter must wrap at 32 bits, not 64: the
        // width bug this fix addresses skewed `~`, reductions and
        // comparisons.
        let mut s = sim(
            "module p #(parameter MASK = 5)(input [7:0] a, output [7:0] y);\n\
             assign y = a + (~MASK);\nendmodule",
        );
        s.step(&[("a", 1)]).expect("step");
        // ~5 at 32 bits = 0xFFFF_FFFA; + 1 masked to 8 bits = 0xFB.
        assert_eq!(s.value("y").map(Value::bits), Some(0xFB));
    }
}
