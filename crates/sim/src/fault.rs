//! Deterministic fault injection for the chaos test harness.
//!
//! A [`FaultPlan`] is a small, copyable, seeded recipe: which fault
//! kinds to inject, how often, and to which victim jobs. From a plan the
//! serving layer derives one [`FaultSession`] per job (salted by the
//! job key) and threads it through every engine inside the job's
//! [`crate::Budget`]. Each engine declares named probe points
//! ([`crate::Budget::probe`]); whether a given probe hit fires, and which
//! [`FaultKind`] it fires, is a pure function of
//! `(plan seed, job salt, probe name, per-probe hit index)` — so the
//! same `(seed, plan)` reproduces the same faults regardless of worker
//! count, scheduling, or sibling jobs in the batch.
//!
//! Probe names are the canonical constants in [`asv_trace::probe`] —
//! the same identifiers name the trace spans around each site, so a
//! chaos failure at `sat.depth` and a trace timeline entry for
//! `sat.depth` are, by construction, the same location.
//!
//! Probes compile to plain budget polls unless the crate is built with
//! the `fault-inject` feature, so release builds carry no injection
//! logic; the types themselves always exist so higher layers can hold a
//! plan unconditionally.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The kinds of fault a probe point can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// `panic_any(InjectedPanic)` — exercises `catch_unwind` isolation
    /// and lock poison-proofing.
    Panic,
    /// A bounded (1 ms) sleep — exercises deadline and stall handling
    /// without changing any computed result.
    Stall,
    /// The probe reports `Stop::Cancelled` although the external token
    /// is clean — exercises the degradation ladder's spurious-cancel
    /// recovery.
    SpuriousCancel,
    /// The probe reports a synthetic `Exhausted` — exercises budget
    /// exhaustion paths without spending the real resource.
    Exhaust,
}

/// A bitmask of enabled [`FaultKind`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultKinds(u8);

impl FaultKinds {
    /// Injected panics.
    pub const PANIC: FaultKinds = FaultKinds(1);
    /// Bounded stalls.
    pub const STALL: FaultKinds = FaultKinds(2);
    /// Spurious cancellations.
    pub const SPURIOUS_CANCEL: FaultKinds = FaultKinds(4);
    /// Synthetic budget exhaustion.
    pub const EXHAUST: FaultKinds = FaultKinds(8);
    /// Every kind.
    pub const ALL: FaultKinds = FaultKinds(15);
    /// No kinds (an armed but harmless plan).
    pub const NONE: FaultKinds = FaultKinds(0);

    /// Union of two masks.
    pub const fn union(self, other: FaultKinds) -> FaultKinds {
        FaultKinds(self.0 | other.0)
    }

    /// True if `kind` is enabled.
    pub fn contains(self, kind: FaultKind) -> bool {
        let bit = match kind {
            FaultKind::Panic => 1,
            FaultKind::Stall => 2,
            FaultKind::SpuriousCancel => 4,
            FaultKind::Exhaust => 8,
        };
        self.0 & bit != 0
    }

    #[cfg_attr(not(any(test, feature = "fault-inject")), allow(dead_code))]
    fn enabled(self) -> Vec<FaultKind> {
        [
            FaultKind::Panic,
            FaultKind::Stall,
            FaultKind::SpuriousCancel,
            FaultKind::Exhaust,
        ]
        .into_iter()
        .filter(|k| self.contains(*k))
        .collect()
    }
}

/// A seeded, copyable fault-injection recipe.
///
/// The plan is pure data: deriving per-job sessions and drawing fault
/// decisions are deterministic functions of the fields, so a plan can be
/// logged, replayed, and shared across worker counts while producing
/// identical fault schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// Root seed; every per-job session and per-probe decision derives
    /// from it.
    pub seed: u64,
    /// Per-probe-hit firing probability in 1/1024 units (0 = never,
    /// 1024 = every hit).
    pub rate_per_1024: u16,
    /// Fraction of jobs targeted, in 1/16 units (16 = every job).
    /// Non-victim jobs get an inert session, which is how the chaos
    /// suite knows which jobs must stay bit-identical to a fault-free
    /// run.
    pub victims_per_16: u16,
    /// Which fault kinds may fire.
    pub kinds: FaultKinds,
}

impl FaultPlan {
    /// A plan firing every kind on roughly 1/16 of probe hits in half
    /// of the jobs.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rate_per_1024: 64,
            victims_per_16: 8,
            kinds: FaultKinds::ALL,
        }
    }

    /// True if the job identified by `salt` is targeted by this plan.
    /// Deterministic: depends only on `(self.seed, salt)`.
    pub fn is_victim(&self, salt: u64) -> bool {
        let x = splitmix64(self.seed ^ salt.rotate_left(17) ^ 0xFA01_7C4E_55AA_D00D);
        (x & 15) < u64::from(self.victims_per_16.min(16))
    }

    /// Derives the per-job [`FaultSession`] for the job identified by
    /// `salt`. Non-victim jobs get an inert session.
    pub fn session(&self, salt: u64) -> FaultSession {
        if self.rate_per_1024 == 0 || !self.is_victim(salt) {
            return FaultSession::inert();
        }
        FaultSession {
            inner: Some(Arc::new(SessionInner {
                seed: splitmix64(self.seed ^ salt),
                rate_per_1024: self.rate_per_1024.min(1024),
                kinds: self.kinds,
                hits: Mutex::new(BTreeMap::new()),
                fired: AtomicU64::new(0),
            })),
        }
    }
}

#[derive(Debug)]
#[cfg_attr(not(feature = "fault-inject"), allow(dead_code))]
struct SessionInner {
    seed: u64,
    rate_per_1024: u16,
    kinds: FaultKinds,
    /// Per-probe-name hit counters. Concurrent engines use disjoint
    /// probe-name prefixes (`sat.*`, `fuzz.*`, `sva.*`), so each
    /// counter advances sequentially and decisions stay deterministic
    /// under any thread interleaving.
    hits: Mutex<BTreeMap<&'static str, u64>>,
    fired: AtomicU64,
}

/// One job's fault state: shared (via `Arc`) between every engine the
/// job runs, inert for non-victim jobs and for builds without the
/// `fault-inject` feature.
#[derive(Debug, Clone, Default)]
pub struct FaultSession {
    inner: Option<Arc<SessionInner>>,
}

impl FaultSession {
    /// A session that never fires (the default on every plain budget).
    pub fn inert() -> Self {
        Self::default()
    }

    /// True if this session belongs to a victim job of an armed plan
    /// (it may still fire nothing if the dice never come up).
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// How many faults this session has fired so far.
    pub fn fired(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.fired.load(Ordering::Relaxed))
    }

    /// Draws the fault decision for the next hit of `probe`:
    /// deterministic in `(session seed, probe name, hit index)`.
    /// Compiled only with the `fault-inject` feature; without it probes
    /// never consult the session.
    #[cfg(feature = "fault-inject")]
    pub(crate) fn draw(&self, probe: &'static str) -> Option<FaultKind> {
        let inner = self.inner.as_ref()?;
        let hit = {
            let mut hits = inner
                .hits
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let counter = hits.entry(probe).or_insert(0);
            let hit = *counter;
            *counter += 1;
            hit
        };
        let x = splitmix64(inner.seed ^ fnv1a(probe) ^ hit.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if x % 1024 >= u64::from(inner.rate_per_1024) {
            return None;
        }
        let enabled = inner.kinds.enabled();
        if enabled.is_empty() {
            return None;
        }
        let kind = enabled[(splitmix64(x) % enabled.len() as u64) as usize];
        inner.fired.fetch_add(1, Ordering::Relaxed);
        Some(kind)
    }
}

/// The payload of an injected panic; carries the probe name that fired.
///
/// The chaos harness installs [`silence_injected_panics`] so these don't
/// spam stderr, and `catch_unwind` sites downcast to it to produce a
/// deterministic error message.
#[derive(Debug, Clone, Copy)]
pub struct InjectedPanic(pub &'static str);

/// Installs (once) a panic hook that suppresses backtraces for
/// [`InjectedPanic`] payloads and defers to the previous hook for
/// everything else. Chaos tests call this so injected panics — which
/// are caught and converted to structured errors — don't flood test
/// output, while genuine assertion failures still print normally.
pub fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg_attr(not(feature = "fault-inject"), allow(dead_code))]
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_session_is_unarmed_and_silent() {
        let s = FaultSession::inert();
        assert!(!s.is_armed());
        assert_eq!(s.fired(), 0);
    }

    #[test]
    fn zero_rate_plan_yields_inert_sessions() {
        let plan = FaultPlan {
            rate_per_1024: 0,
            ..FaultPlan::new(1)
        };
        assert!(!plan.session(42).is_armed());
    }

    #[test]
    fn victim_selection_is_deterministic_and_partial() {
        let plan = FaultPlan::new(0xC0FFEE);
        let victims: Vec<bool> = (0..64).map(|s| plan.is_victim(s)).collect();
        let again: Vec<bool> = (0..64).map(|s| plan.is_victim(s)).collect();
        assert_eq!(victims, again);
        assert!(victims.iter().any(|v| *v), "some jobs must be victims");
        assert!(!victims.iter().all(|v| *v), "some jobs must be spared");
    }

    #[test]
    fn full_victim_plans_arm_every_session() {
        let plan = FaultPlan {
            victims_per_16: 16,
            ..FaultPlan::new(7)
        };
        assert!((0..32).all(|s| plan.session(s).is_armed()));
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn draws_are_deterministic_per_probe_sequence() {
        let plan = FaultPlan {
            victims_per_16: 16,
            rate_per_1024: 512,
            ..FaultPlan::new(0xDEAD)
        };
        let a = plan.session(9);
        let b = plan.session(9);
        let draws_a: Vec<_> = (0..100)
            .map(|_| a.draw(asv_trace::probe::SAT_DEPTH))
            .collect();
        let draws_b: Vec<_> = (0..100)
            .map(|_| b.draw(asv_trace::probe::SAT_DEPTH))
            .collect();
        assert_eq!(draws_a, draws_b);
        assert!(draws_a.iter().any(Option::is_some), "rate 1/2 must fire");
        assert!(
            draws_a.iter().any(Option::is_none),
            "rate 1/2 must also pass"
        );
        assert_eq!(
            a.fired(),
            draws_a.iter().filter(|d| d.is_some()).count() as u64
        );
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn probe_names_have_independent_streams() {
        let plan = FaultPlan {
            victims_per_16: 16,
            rate_per_1024: 512,
            ..FaultPlan::new(0xBEEF)
        };
        use asv_trace::probe::{FUZZ_ROUND, SAT_DEPTH};
        let s = plan.session(3);
        // Interleaving two probe streams must not perturb either one.
        let mut interleaved_sat = Vec::new();
        let mut interleaved_fuzz = Vec::new();
        for _ in 0..50 {
            interleaved_sat.push(s.draw(SAT_DEPTH));
            interleaved_fuzz.push(s.draw(FUZZ_ROUND));
        }
        let t = plan.session(3);
        let solo_sat: Vec<_> = (0..50).map(|_| t.draw(SAT_DEPTH)).collect();
        let u = plan.session(3);
        let solo_fuzz: Vec<_> = (0..50).map(|_| u.draw(FUZZ_ROUND)).collect();
        assert_eq!(interleaved_sat, solo_sat);
        assert_eq!(interleaved_fuzz, solo_fuzz);
    }

    #[test]
    fn kinds_mask_roundtrips() {
        let mask = FaultKinds::PANIC.union(FaultKinds::EXHAUST);
        assert!(mask.contains(FaultKind::Panic));
        assert!(mask.contains(FaultKind::Exhaust));
        assert!(!mask.contains(FaultKind::Stall));
        assert!(!mask.contains(FaultKind::SpuriousCancel));
        assert_eq!(FaultKinds::ALL.enabled().len(), 4);
        assert!(FaultKinds::NONE.enabled().is_empty());
    }
}
