//! Pretty-printer: renders an AST back to canonical Verilog source.
//!
//! The mutation pipeline relies on a *stable* rendering: injecting a bug and
//! re-rendering changes exactly the mutated statement's line, so the golden
//! "buggy line / fixed line" pair used for training and evaluation is
//! well-defined. Round-tripping (`parse ∘ render ∘ parse`) is validated by
//! property tests in the crate root.

use crate::ast::*;
use std::fmt::Write;

/// Renders a full source unit.
pub fn render_unit(unit: &SourceUnit) -> String {
    let mut out = String::new();
    for (i, m) in unit.modules.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&render_module(m));
    }
    out
}

/// Renders one module with 2-space indentation.
pub fn render_module(m: &Module) -> String {
    let mut p = Printer::new();
    p.module(m);
    p.out
}

/// Renders a single expression (used in diffs, CoT text and candidate fixes).
pub fn render_expr(e: &Expr) -> String {
    let mut s = String::new();
    expr(&mut s, e, 0);
    s
}

/// Renders a single statement at indent level 0, without a trailing newline.
pub fn render_stmt(s: &Stmt) -> String {
    let mut p = Printer::new();
    p.stmt(s, 0);
    p.out.trim_end().to_string()
}

/// Renders an lvalue.
pub fn render_lvalue(lv: &LValue) -> String {
    match lv {
        LValue::Ident { name, .. } => name.clone(),
        LValue::Bit { name, index, .. } => format!("{name}[{}]", render_expr(index)),
        LValue::Part { name, range, .. } => format!("{name}{range}"),
        LValue::Concat { parts, .. } => {
            let inner: Vec<String> = parts.iter().map(render_lvalue).collect();
            format!("{{{}}}", inner.join(", "))
        }
    }
}

struct Printer {
    out: String,
}

impl Printer {
    fn new() -> Self {
        Printer { out: String::new() }
    }

    fn indent(&mut self, level: usize) {
        for _ in 0..level {
            self.out.push_str("  ");
        }
    }

    fn module(&mut self, m: &Module) {
        let params: Vec<&ParamDecl> = m
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Param(p) if !p.local => Some(p),
                _ => None,
            })
            .collect();
        write!(self.out, "module {}", m.name).expect("write to string");
        if !params.is_empty() {
            self.out.push_str(" #(\n");
            for (i, p) in params.iter().enumerate() {
                self.indent(1);
                write!(self.out, "parameter {} = {}", p.name, render_expr(&p.value))
                    .expect("write to string");
                if i + 1 < params.len() {
                    self.out.push(',');
                }
                self.out.push('\n');
            }
            self.out.push(')');
        }
        self.out.push_str(" (\n");
        for (i, port) in m.ports.iter().enumerate() {
            self.indent(1);
            write!(self.out, "{}", port.dir).expect("write to string");
            if port.kind == NetKind::Reg {
                self.out.push_str(" reg");
            } else if port.kind == NetKind::Logic {
                self.out.push_str(" logic");
            }
            if let Some(r) = port.range {
                write!(self.out, " {r}").expect("write to string");
            }
            write!(self.out, " {}", port.name).expect("write to string");
            if i + 1 < m.ports.len() {
                self.out.push(',');
            }
            self.out.push('\n');
        }
        self.out.push_str(");\n");
        for item in &m.items {
            if matches!(item, Item::Param(p) if !p.local) {
                continue; // already rendered in the header
            }
            self.item(item);
        }
        self.out.push_str("endmodule\n");
    }

    fn item(&mut self, item: &Item) {
        match item {
            Item::Net(n) => {
                self.indent(1);
                write!(self.out, "{}", n.kind).expect("write to string");
                if n.kind != NetKind::Integer {
                    if let Some(r) = n.range {
                        write!(self.out, " {r}").expect("write to string");
                    }
                }
                writeln!(self.out, " {};", n.names.join(", ")).expect("write to string");
            }
            Item::Param(p) => {
                self.indent(1);
                writeln!(
                    self.out,
                    "localparam {} = {};",
                    p.name,
                    render_expr(&p.value)
                )
                .expect("write to string");
            }
            Item::Assign(a) => {
                self.indent(1);
                writeln!(
                    self.out,
                    "assign {} = {};",
                    render_lvalue(&a.lhs),
                    render_expr(&a.rhs)
                )
                .expect("write to string");
            }
            Item::Always(a) => {
                self.indent(1);
                let kw = match a.kind {
                    AlwaysKind::Always => "always",
                    AlwaysKind::Ff => "always_ff",
                    AlwaysKind::Comb => "always_comb",
                };
                self.out.push_str(kw);
                if a.kind != AlwaysKind::Comb {
                    match &a.sensitivity {
                        Sensitivity::Star => self.out.push_str(" @(*)"),
                        Sensitivity::List(items) => {
                            self.out.push_str(" @(");
                            for (i, s) in items.iter().enumerate() {
                                if i > 0 {
                                    self.out.push_str(" or ");
                                }
                                match s {
                                    SensItem::Posedge(sig) => {
                                        write!(self.out, "posedge {sig}").expect("write")
                                    }
                                    SensItem::Negedge(sig) => {
                                        write!(self.out, "negedge {sig}").expect("write")
                                    }
                                    SensItem::Level(sig) => {
                                        write!(self.out, "{sig}").expect("write")
                                    }
                                }
                            }
                            self.out.push(')');
                        }
                    }
                }
                self.out.push(' ');
                self.stmt_inline(&a.body, 1);
            }
            Item::Initial(i) => {
                self.indent(1);
                self.out.push_str("initial ");
                self.stmt_inline(&i.body, 1);
            }
            Item::Property(p) => {
                self.indent(1);
                writeln!(self.out, "property {};", p.name).expect("write to string");
                self.indent(2);
                write!(
                    self.out,
                    "@({} {})",
                    if p.clock.posedge {
                        "posedge"
                    } else {
                        "negedge"
                    },
                    p.clock.signal
                )
                .expect("write to string");
                if let Some(d) = &p.disable {
                    write!(self.out, " disable iff ({})", render_expr(d)).expect("write");
                }
                self.out.push('\n');
                self.indent(2);
                writeln!(self.out, "{};", render_prop(&p.body)).expect("write to string");
                self.indent(1);
                self.out.push_str("endproperty\n");
            }
            Item::Assert(a) => {
                self.indent(1);
                if let Some(l) = &a.label {
                    write!(self.out, "{l}: ").expect("write to string");
                }
                match &a.target {
                    AssertTarget::Named(n) => {
                        write!(self.out, "assert property ({n})").expect("write to string")
                    }
                    AssertTarget::Inline(p) => {
                        write!(
                            self.out,
                            "assert property (@({} {})",
                            if p.clock.posedge {
                                "posedge"
                            } else {
                                "negedge"
                            },
                            p.clock.signal
                        )
                        .expect("write to string");
                        if let Some(d) = &p.disable {
                            write!(self.out, " disable iff ({})", render_expr(d))
                                .expect("write to string");
                        }
                        write!(self.out, " {})", render_prop(&p.body)).expect("write to string");
                    }
                }
                if let Some(msg) = &a.message {
                    write!(self.out, " else $error(\"{msg}\")").expect("write to string");
                }
                self.out.push_str(";\n");
            }
        }
    }

    /// Prints a statement as the body of `always`/`initial`/`if` where the
    /// keyword and a space have already been emitted.
    fn stmt_inline(&mut self, s: &Stmt, level: usize) {
        match s {
            Stmt::Block { stmts, .. } => {
                self.out.push_str("begin\n");
                for st in stmts {
                    self.stmt(st, level + 1);
                }
                self.indent(level);
                self.out.push_str("end\n");
            }
            other => {
                self.out.push('\n');
                self.stmt(other, level + 1);
            }
        }
    }

    fn stmt(&mut self, s: &Stmt, level: usize) {
        match s {
            Stmt::Block { stmts, .. } => {
                self.indent(level);
                self.out.push_str("begin\n");
                for st in stmts {
                    self.stmt(st, level + 1);
                }
                self.indent(level);
                self.out.push_str("end\n");
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                self.indent(level);
                write!(self.out, "if ({}) ", render_expr(cond)).expect("write to string");
                self.branch_body(then_branch, level);
                if let Some(e) = else_branch {
                    self.indent(level);
                    if let Stmt::If { .. } = **e {
                        self.out.push_str("else ");
                        // `else if` chains stay on one logical construct.
                        let rendered = {
                            let mut sub = Printer::new();
                            sub.stmt(e, level);
                            sub.out
                        };
                        self.out.push_str(rendered.trim_start());
                    } else {
                        self.out.push_str("else ");
                        self.branch_body(e, level);
                    }
                }
            }
            Stmt::Case {
                kind,
                scrutinee,
                arms,
                default,
                ..
            } => {
                self.indent(level);
                let kw = match kind {
                    CaseKind::Case => "case",
                    CaseKind::Casez => "casez",
                    CaseKind::Casex => "casex",
                };
                writeln!(self.out, "{kw} ({})", render_expr(scrutinee)).expect("write");
                for arm in arms {
                    self.indent(level + 1);
                    let labels: Vec<String> = arm.labels.iter().map(render_expr).collect();
                    write!(self.out, "{}: ", labels.join(", ")).expect("write to string");
                    self.branch_body(&arm.body, level + 1);
                }
                if let Some(d) = default {
                    self.indent(level + 1);
                    self.out.push_str("default: ");
                    self.branch_body(d, level + 1);
                }
                self.indent(level);
                self.out.push_str("endcase\n");
            }
            Stmt::Assign {
                lhs,
                rhs,
                nonblocking,
                ..
            } => {
                self.indent(level);
                writeln!(
                    self.out,
                    "{} {} {};",
                    render_lvalue(lhs),
                    if *nonblocking { "<=" } else { "=" },
                    render_expr(rhs)
                )
                .expect("write to string");
            }
            Stmt::Empty { .. } => {
                self.indent(level);
                self.out.push_str(";\n");
            }
        }
    }

    /// Prints the body of an if-arm or case-arm, keyword already emitted.
    fn branch_body(&mut self, s: &Stmt, level: usize) {
        match s {
            Stmt::Block { stmts, .. } => {
                self.out.push_str("begin\n");
                for st in stmts {
                    self.stmt(st, level + 1);
                }
                self.indent(level);
                self.out.push_str("end\n");
            }
            Stmt::Assign {
                lhs,
                rhs,
                nonblocking,
                ..
            } => {
                writeln!(
                    self.out,
                    "{} {} {};",
                    render_lvalue(lhs),
                    if *nonblocking { "<=" } else { "=" },
                    render_expr(rhs)
                )
                .expect("write to string");
            }
            Stmt::Empty { .. } => self.out.push_str(";\n"),
            other => {
                self.out.push('\n');
                self.stmt(other, level + 1);
            }
        }
    }
}

/// Renders a property body.
pub fn render_prop(p: &PropExpr) -> String {
    match p {
        PropExpr::Seq(s) => render_seq(s),
        PropExpr::Implication {
            antecedent,
            overlapping,
            consequent,
            ..
        } => format!(
            "{} {} {}",
            render_seq(antecedent),
            if *overlapping { "|->" } else { "|=>" },
            render_seq(consequent)
        ),
    }
}

/// Renders a sequence expression.
pub fn render_seq(s: &SeqExpr) -> String {
    match s {
        SeqExpr::Expr(e) => render_expr(e),
        SeqExpr::Delay {
            lhs, cycles, rhs, ..
        } => {
            // `1 ##n rhs` (synthesised anchor) renders as a leading delay.
            if let SeqExpr::Expr(Expr::Number {
                value: 1,
                width: Some(1),
                ..
            }) = **lhs
            {
                format!("##{cycles} {}", render_seq(rhs))
            } else {
                format!("{} ##{cycles} {}", render_seq(lhs), render_seq(rhs))
            }
        }
    }
}

fn expr(out: &mut String, e: &Expr, parent_prec: u8) {
    match e {
        Expr::Number {
            value, width, base, ..
        } => match (width, base) {
            (Some(w), Some('b')) => {
                let _ = write!(out, "{w}'b{value:b}");
            }
            (Some(w), Some('h')) => {
                let _ = write!(out, "{w}'h{value:x}");
            }
            (Some(w), Some('o')) => {
                let _ = write!(out, "{w}'o{value:o}");
            }
            (Some(w), _) => {
                let _ = write!(out, "{w}'d{value}");
            }
            (None, _) => {
                let _ = write!(out, "{value}");
            }
        },
        Expr::Ident { name, .. } => out.push_str(name),
        Expr::Unary { op, operand, .. } => {
            out.push_str(op.as_str());
            // Parenthesise non-primary operands for unambiguous reading.
            match **operand {
                Expr::Number { .. } | Expr::Ident { .. } | Expr::Bit { .. } | Expr::Part { .. } => {
                    expr(out, operand, 13)
                }
                _ => {
                    out.push('(');
                    expr(out, operand, 0);
                    out.push(')');
                }
            }
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let prec = op.precedence();
            let need_parens = prec < parent_prec;
            if need_parens {
                out.push('(');
            }
            expr(out, lhs, prec);
            let _ = write!(out, " {} ", op.as_str());
            expr(out, rhs, prec + 1);
            if need_parens {
                out.push(')');
            }
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
            ..
        } => {
            let need_parens = parent_prec > 0;
            if need_parens {
                out.push('(');
            }
            expr(out, cond, 1);
            out.push_str(" ? ");
            expr(out, then_expr, 0);
            out.push_str(" : ");
            expr(out, else_expr, 0);
            if need_parens {
                out.push(')');
            }
        }
        Expr::Concat { parts, .. } => {
            out.push('{');
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr(out, p, 0);
            }
            out.push('}');
        }
        Expr::Repeat { count, value, .. } => {
            out.push('{');
            expr(out, count, 13);
            out.push('{');
            expr(out, value, 0);
            out.push_str("}}");
        }
        Expr::Bit { name, index, .. } => {
            out.push_str(name);
            out.push('[');
            expr(out, index, 0);
            out.push(']');
        }
        Expr::Part { name, range, .. } => {
            let _ = write!(out, "{name}{range}");
        }
        Expr::SysCall { name, args, .. } => {
            let _ = write!(out, "${name}");
            if !args.is_empty() {
                out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    expr(out, a, 0);
                }
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(src: &str) {
        let unit = parse(src).expect("initial parse");
        let rendered = render_unit(&unit);
        let reparsed = parse(&rendered)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- rendered ---\n{rendered}"));
        let rerendered = render_unit(&reparsed);
        assert_eq!(rendered, rerendered, "render is not a fixpoint");
    }

    #[test]
    fn roundtrips_simple_module() {
        roundtrip("module m(input a, input b, output y); assign y = a & b; endmodule");
    }

    #[test]
    fn roundtrips_sequential_logic() {
        roundtrip(
            "module c(input clk, input rst_n, output reg [3:0] q);\n\
             always @(posedge clk or negedge rst_n) begin\n\
               if (!rst_n) q <= 4'd0; else q <= q + 4'd1;\n\
             end\nendmodule",
        );
    }

    #[test]
    fn roundtrips_property() {
        roundtrip(
            "module m(input clk, input rst_n, input a, output reg b);\n\
             always @(posedge clk) b <= a;\n\
             property p; @(posedge clk) disable iff (!rst_n) a |-> ##1 b; endproperty\n\
             lab: assert property (p) else $error(\"b must follow a\");\nendmodule",
        );
    }

    #[test]
    fn roundtrips_case() {
        roundtrip(
            "module m(input [1:0] s, output reg [3:0] y);\n\
             always @(*) begin case (s) 2'd0: y = 4'd1; 2'd1: y = 4'd2; default: y = 4'd0; endcase end\n\
             endmodule",
        );
    }

    #[test]
    fn parenthesisation_preserves_shape() {
        let unit = parse(
            "module m(input a, input b, input c, output y); assign y = (a | b) & c; endmodule",
        )
        .expect("parse ok");
        let s = render_module(&unit.modules[0]);
        assert!(s.contains("(a | b) & c"), "got: {s}");
    }

    #[test]
    fn number_bases_preserved() {
        let unit = parse("module m(output [7:0] y); assign y = 8'hab + 4'b1010; endmodule")
            .expect("parse ok");
        let s = render_module(&unit.modules[0]);
        assert!(s.contains("8'hab"), "got: {s}");
        assert!(s.contains("4'b1010"), "got: {s}");
    }

    #[test]
    fn else_if_chains_are_flat() {
        let src = "module m(input clk, input a, input b, output reg y);\n\
            always @(posedge clk) begin\n\
              if (a) y <= 1; else if (b) y <= 0; else y <= y;\n\
            end\nendmodule";
        let unit = parse(src).expect("parse ok");
        let s = render_module(&unit.modules[0]);
        assert!(s.contains("else if (b)"), "got: {s}");
        roundtrip(src);
    }

    #[test]
    fn renders_stmt_single_line_for_assign() {
        let unit = parse(
            "module m(input clk, input a, output reg y); always @(posedge clk) y <= a; endmodule",
        )
        .expect("parse ok");
        let Item::Always(al) = &unit.modules[0].items[0] else {
            panic!()
        };
        assert_eq!(render_stmt(&al.body), "y <= a;");
    }
}
