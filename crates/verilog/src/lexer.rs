//! Hand-written lexer for the Verilog-2005 + SVA subset.
//!
//! Skips `//` and `/* */` comments and compiler directives (`` ` ``-lines),
//! and produces [`Token`]s with byte-accurate [`Span`]s.

use crate::error::{CompileError, Result};
use crate::source::Span;
use crate::token::{Keyword, Token, TokenKind};

/// Tokenises `src` completely, appending a final [`TokenKind::Eof`] token.
///
/// # Errors
///
/// Returns a [`CompileError`] on malformed literals, unterminated block
/// comments or strings, and characters outside the supported grammar.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    Lexer::new(src).run()
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
        }
    }

    fn run(mut self) -> Result<Vec<Token>> {
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let Some(c) = self.peek() else {
                self.push(TokenKind::Eof, start);
                return Ok(self.tokens);
            };
            match c {
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_word(start),
                b'\\' => self.lex_escaped_ident(start)?,
                b'0'..=b'9' | b'\'' => self.lex_number(start)?,
                b'$' => self.lex_sys_ident(start)?,
                b'"' => self.lex_string(start)?,
                _ => self.lex_punct(start)?,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        self.tokens.push(Token {
            kind,
            span: Span::new(start as u32, self.pos as u32),
        });
    }

    fn err(&self, msg: impl Into<String>, start: usize) -> CompileError {
        CompileError::single(msg, Span::new(start as u32, self.pos.max(start + 1) as u32))
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => {
                    self.pos += 1;
                }
                Some(b'/') if self.peek_at(1) == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek_at(1) == Some(b'/') => {
                                self.pos += 2;
                                break;
                            }
                            Some(_) => self.pos += 1,
                            None => return Err(self.err("unterminated block comment", start)),
                        }
                    }
                }
                // Compiler directives (`timescale, `define...) are skipped
                // to end of line: the subset does not expand macros.
                Some(b'`') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_word(&mut self, start: usize) {
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let word = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii word");
        let kind = match Keyword::from_word(word) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(word.to_string()),
        };
        self.push(kind, start);
    }

    fn lex_escaped_ident(&mut self, start: usize) -> Result<()> {
        self.pos += 1; // backslash
        let name_start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_whitespace() {
                break;
            }
            self.pos += 1;
        }
        if self.pos == name_start {
            return Err(self.err("empty escaped identifier", start));
        }
        let name = std::str::from_utf8(&self.src[name_start..self.pos])
            .map_err(|_| self.err("non-utf8 escaped identifier", start))?
            .to_string();
        self.push(TokenKind::Ident(name), start);
        Ok(())
    }

    fn lex_sys_ident(&mut self, start: usize) -> Result<()> {
        self.pos += 1; // $
        let name_start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == name_start {
            return Err(self.err("bare `$` is not a valid token", start));
        }
        let name = std::str::from_utf8(&self.src[name_start..self.pos])
            .expect("ascii sys ident")
            .to_string();
        self.push(TokenKind::SysIdent(name), start);
        Ok(())
    }

    fn lex_string(&mut self, start: usize) -> Result<()> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => break,
                Some(b'\\') => {
                    let esc = self
                        .bump()
                        .ok_or_else(|| self.err("unterminated string", start))?;
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        other => other as char,
                    });
                }
                Some(c) => out.push(c as char),
                None => return Err(self.err("unterminated string", start)),
            }
        }
        self.push(TokenKind::Str(out), start);
        Ok(())
    }

    /// Lexes decimal literals and based literals (`4'b1010`, `'hFF`,
    /// `8'd255`). An unsized leading integer before `'` (e.g. `4` in
    /// `4'b1010`) is consumed here as the width.
    fn lex_number(&mut self, start: usize) -> Result<()> {
        let mut width: Option<u32> = None;
        if self.peek() != Some(b'\'') {
            // Leading decimal digits: either a plain number or a size prefix.
            let num_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9') | Some(b'_')) {
                self.pos += 1;
            }
            let text: String = self.src[num_start..self.pos]
                .iter()
                .filter(|&&b| b != b'_')
                .map(|&b| b as char)
                .collect();
            let value: u64 = text
                .parse()
                .map_err(|_| self.err("integer literal out of range", start))?;
            if self.peek() == Some(b'\'') {
                width = Some(
                    u32::try_from(value)
                        .map_err(|_| self.err("size prefix out of range", start))?,
                );
                if width == Some(0) || width > Some(64) {
                    return Err(self.err("bit width must be in 1..=64", start));
                }
            } else {
                self.push(
                    TokenKind::Number {
                        value,
                        width: None,
                        base: None,
                    },
                    start,
                );
                return Ok(());
            }
        }
        // Based literal: 'b / 'o / 'd / 'h with optional preceding width.
        self.pos += 1; // apostrophe
                       // Optional signedness marker 's' is accepted and ignored.
        if matches!(self.peek(), Some(b's') | Some(b'S')) {
            self.pos += 1;
        }
        let base = match self.bump() {
            Some(b'b') | Some(b'B') => 'b',
            Some(b'o') | Some(b'O') => 'o',
            Some(b'd') | Some(b'D') => 'd',
            Some(b'h') | Some(b'H') => 'h',
            _ => return Err(self.err("expected base after `'`", start)),
        };
        let radix = match base {
            'b' => 2,
            'o' => 8,
            'd' => 10,
            _ => 16,
        };
        let digits_start = self.pos;
        while let Some(c) = self.peek() {
            let ok = match radix {
                2 => matches!(c, b'0' | b'1' | b'_' | b'x' | b'X' | b'z' | b'Z' | b'?'),
                8 => matches!(c, b'0'..=b'7' | b'_'),
                10 => matches!(c, b'0'..=b'9' | b'_'),
                _ => c.is_ascii_hexdigit() || c == b'_',
            };
            if ok {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == digits_start {
            return Err(self.err("missing digits in based literal", start));
        }
        let digits: String = self.src[digits_start..self.pos]
            .iter()
            .filter(|&&b| b != b'_')
            .map(|&b| b as char)
            .collect();
        // x/z/? digits are treated as 0: the 2-state substitution documented
        // in DESIGN.md.
        let cleaned: String = digits
            .chars()
            .map(|c| {
                if matches!(c, 'x' | 'X' | 'z' | 'Z' | '?') {
                    '0'
                } else {
                    c
                }
            })
            .collect();
        let value = u64::from_str_radix(&cleaned, radix)
            .map_err(|_| self.err("based literal out of range", start))?;
        let value = match width {
            Some(w) if w < 64 => value & ((1u64 << w) - 1),
            _ => value,
        };
        self.push(
            TokenKind::Number {
                value,
                width,
                base: Some(base),
            },
            start,
        );
        Ok(())
    }

    fn lex_punct(&mut self, start: usize) -> Result<()> {
        use TokenKind as T;
        let c = self.bump().expect("peeked");
        let kind = match c {
            b'(' => T::LParen,
            b')' => T::RParen,
            b'[' => T::LBracket,
            b']' => T::RBracket,
            b'{' => T::LBrace,
            b'}' => T::RBrace,
            b';' => T::Semi,
            b',' => T::Comma,
            b'.' => T::Dot,
            b'@' => T::At,
            b'?' => T::Question,
            b':' => T::Colon,
            b'#' => {
                if self.peek() == Some(b'#') {
                    self.pos += 1;
                    T::HashHash
                } else {
                    T::Hash
                }
            }
            b'+' => {
                if self.peek() == Some(b':') {
                    self.pos += 1;
                    T::PlusColon
                } else {
                    T::Plus
                }
            }
            b'-' => T::Minus,
            b'*' => {
                if self.peek() == Some(b'*') {
                    self.pos += 1;
                    T::StarStar
                } else {
                    T::Star
                }
            }
            b'/' => T::Slash,
            b'%' => T::Percent,
            b'&' => {
                if self.peek() == Some(b'&') {
                    self.pos += 1;
                    T::AmpAmp
                } else {
                    T::Amp
                }
            }
            b'|' => match (self.peek(), self.peek_at(1)) {
                (Some(b'|'), _) => {
                    self.pos += 1;
                    T::PipePipe
                }
                (Some(b'-'), Some(b'>')) => {
                    self.pos += 2;
                    T::ImplOverlap
                }
                (Some(b'='), Some(b'>')) => {
                    self.pos += 2;
                    T::ImplNonOverlap
                }
                _ => T::Pipe,
            },
            b'^' => {
                if self.peek() == Some(b'~') {
                    self.pos += 1;
                    T::TildeCaret
                } else {
                    T::Caret
                }
            }
            b'~' => match self.peek() {
                Some(b'^') => {
                    self.pos += 1;
                    T::TildeCaret
                }
                Some(b'&') => {
                    self.pos += 1;
                    T::TildeAmp
                }
                Some(b'|') => {
                    self.pos += 1;
                    T::TildePipe
                }
                _ => T::Tilde,
            },
            b'!' => match (self.peek(), self.peek_at(1)) {
                (Some(b'='), Some(b'=')) => {
                    self.pos += 2;
                    T::BangEqEq
                }
                (Some(b'='), _) => {
                    self.pos += 1;
                    T::BangEq
                }
                _ => T::Bang,
            },
            b'=' => match (self.peek(), self.peek_at(1)) {
                (Some(b'='), Some(b'=')) => {
                    self.pos += 2;
                    T::EqEqEq
                }
                (Some(b'='), _) => {
                    self.pos += 1;
                    T::EqEq
                }
                _ => T::Assign,
            },
            b'<' => match (self.peek(), self.peek_at(1)) {
                (Some(b'='), _) => {
                    self.pos += 1;
                    T::LtEq
                }
                (Some(b'<'), Some(b'<')) => {
                    self.pos += 2;
                    T::AShl
                }
                (Some(b'<'), _) => {
                    self.pos += 1;
                    T::Shl
                }
                _ => T::Lt,
            },
            b'>' => match (self.peek(), self.peek_at(1)) {
                (Some(b'='), _) => {
                    self.pos += 1;
                    T::GtEq
                }
                (Some(b'>'), Some(b'>')) => {
                    self.pos += 2;
                    T::AShr
                }
                (Some(b'>'), _) => {
                    self.pos += 1;
                    T::Shr
                }
                _ => T::Gt,
            },
            other => {
                return Err(self.err(format!("unexpected character `{}`", other as char), start))
            }
        };
        self.push(kind, start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind as T;

    fn kinds(src: &str) -> Vec<T> {
        lex(src)
            .expect("lex ok")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_module_header() {
        let ks = kinds("module accu(input clk);");
        assert_eq!(ks[0], T::Keyword(Keyword::Module));
        assert_eq!(ks[1], T::Ident("accu".into()));
        assert_eq!(ks[2], T::LParen);
        assert_eq!(ks[3], T::Keyword(Keyword::Input));
        assert_eq!(ks[4], T::Ident("clk".into()));
        assert_eq!(ks.last(), Some(&T::Eof));
    }

    #[test]
    fn lexes_sized_literals() {
        assert_eq!(
            kinds("4'b1010")[0],
            T::Number {
                value: 10,
                width: Some(4),
                base: Some('b')
            }
        );
        assert_eq!(
            kinds("8'hFF")[0],
            T::Number {
                value: 255,
                width: Some(8),
                base: Some('h')
            }
        );
        assert_eq!(
            kinds("16'd42")[0],
            T::Number {
                value: 42,
                width: Some(16),
                base: Some('d')
            }
        );
    }

    #[test]
    fn sized_literal_masks_to_width() {
        assert_eq!(
            kinds("4'hFF")[0],
            T::Number {
                value: 15,
                width: Some(4),
                base: Some('h')
            }
        );
    }

    #[test]
    fn xz_digits_become_zero() {
        assert_eq!(
            kinds("4'b1x0z")[0],
            T::Number {
                value: 0b1000,
                width: Some(4),
                base: Some('b')
            }
        );
    }

    #[test]
    fn lexes_sva_operators() {
        let ks = kinds("a |-> ##1 b |=> c");
        assert!(ks.contains(&T::ImplOverlap));
        assert!(ks.contains(&T::HashHash));
        assert!(ks.contains(&T::ImplNonOverlap));
    }

    #[test]
    fn comments_and_directives_are_skipped() {
        let ks = kinds("`timescale 1ns/1ps\n// line\n/* block\nstill */ wire");
        assert_eq!(ks, vec![T::Keyword(Keyword::Wire), T::Eof]);
    }

    #[test]
    fn nonblocking_vs_le_is_single_token() {
        // `<=` is one token; statement vs comparison context is resolved by
        // the parser.
        let ks = kinds("a <= b");
        assert_eq!(ks[1], T::LtEq);
    }

    #[test]
    fn sys_idents() {
        let ks = kinds("$past(a, 2) $error(\"m\")");
        assert_eq!(ks[0], T::SysIdent("past".into()));
        assert!(ks.iter().any(|k| *k == T::SysIdent("error".into())));
        assert!(ks.iter().any(|k| *k == T::Str("m".into())));
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("module \u{7f}?").is_err() || lex("€").is_err());
        assert!(lex("4'q10").is_err());
        assert!(lex("\"unterminated").is_err());
        assert!(lex("/* never closed").is_err());
    }

    #[test]
    fn spans_are_byte_accurate() {
        let toks = lex("wire abc;").expect("lex ok");
        assert_eq!(toks[1].span.start, 5);
        assert_eq!(toks[1].span.end, 8);
    }

    #[test]
    fn triple_ops() {
        let ks = kinds("a === b !== c >>> 2 <<< 1 ** 2");
        assert!(ks.contains(&T::EqEqEq));
        assert!(ks.contains(&T::BangEqEq));
        assert!(ks.contains(&T::AShr));
        assert!(ks.contains(&T::AShl));
        assert!(ks.contains(&T::StarStar));
    }
}
