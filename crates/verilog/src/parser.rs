//! Recursive-descent parser for the Verilog-2005 + SVA subset.
//!
//! Accepts ANSI-style module headers (`module m(input clk, ...)`) as well as
//! non-ANSI bodies where port directions are declared inside the module.
//! Expressions are parsed with a Pratt loop driven by
//! [`BinaryOp::precedence`].

use crate::ast::*;
use crate::error::{CompileError, Diagnostic, Result};
use crate::lexer::lex;
use crate::source::Span;
use crate::token::{Keyword, Token, TokenKind};

/// Parses a complete source file into a [`SourceUnit`].
///
/// # Errors
///
/// Returns a [`CompileError`] describing the first syntax error, including
/// lexing failures.
///
/// ```
/// let unit = asv_verilog::parse("module m(input a, output y); assign y = ~a; endmodule")?;
/// assert_eq!(unit.modules[0].name, "m");
/// # Ok::<(), asv_verilog::CompileError>(())
/// ```
pub fn parse(src: &str) -> Result<SourceUnit> {
    let tokens = lex(src)?;
    Parser::new(tokens).source_unit()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, off: usize) -> &TokenKind {
        let i = (self.pos + off).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn at_kw(&self, kw: Keyword) -> bool {
        matches!(self.peek(), TokenKind::Keyword(k) if *k == kw)
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Span> {
        if self.at(kind) {
            Ok(self.bump().span)
        } else {
            Err(self.unexpected(&format!("expected {}", kind.describe())))
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<Span> {
        if self.at_kw(kw) {
            Ok(self.bump().span)
        } else {
            Err(self.unexpected(&format!("expected keyword `{kw}`")))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span)> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let span = self.bump().span;
                Ok((name, span))
            }
            _ => Err(self.unexpected("expected identifier")),
        }
    }

    fn unexpected(&self, msg: &str) -> CompileError {
        CompileError {
            diagnostics: vec![Diagnostic::error(
                format!("{msg}, found {}", self.peek().describe()),
                self.span(),
            )],
        }
    }

    // -- grammar ---------------------------------------------------------

    fn source_unit(&mut self) -> Result<SourceUnit> {
        let mut modules = Vec::new();
        while !self.at(&TokenKind::Eof) {
            modules.push(self.module()?);
        }
        if modules.is_empty() {
            return Err(CompileError::single("no module found", Span::point(0)));
        }
        Ok(SourceUnit { modules })
    }

    fn module(&mut self) -> Result<Module> {
        let start = self.expect_kw(Keyword::Module)?;
        let (name, _) = self.expect_ident()?;
        // Optional parameter header `#(parameter N = 4, ...)`.
        let mut items: Vec<Item> = Vec::new();
        if self.eat(&TokenKind::Hash) {
            self.expect(&TokenKind::LParen)?;
            loop {
                let pstart = self.span();
                self.eat_kw(Keyword::Parameter);
                // Optional range on parameters is accepted and ignored.
                let _ = self.try_range()?;
                let (pname, _) = self.expect_ident()?;
                self.expect(&TokenKind::Assign)?;
                let value = self.expr()?;
                items.push(Item::Param(ParamDecl {
                    local: false,
                    name: pname,
                    value,
                    span: pstart.merge(self.prev_span()),
                }));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        let mut ports = Vec::new();
        if self.eat(&TokenKind::LParen) {
            if !self.at(&TokenKind::RParen) {
                self.port_list(&mut ports)?;
            }
            self.expect(&TokenKind::RParen)?;
        }
        self.expect(&TokenKind::Semi)?;
        while !self.at_kw(Keyword::Endmodule) {
            if self.at(&TokenKind::Eof) {
                return Err(self.unexpected("expected `endmodule`"));
            }
            self.item(&mut items, &mut ports)?;
        }
        let end = self.expect_kw(Keyword::Endmodule)?;
        Ok(Module {
            name,
            ports,
            items,
            span: start.merge(end),
        })
    }

    /// ANSI port list: direction/kind/range are sticky across commas.
    fn port_list(&mut self, ports: &mut Vec<Port>) -> Result<()> {
        let mut dir = PortDir::Input;
        let mut kind = NetKind::Wire;
        let mut range: Option<BitRange> = None;
        loop {
            let pstart = self.span();
            let mut explicit = false;
            if self.eat_kw(Keyword::Input) {
                dir = PortDir::Input;
                kind = NetKind::Wire;
                range = None;
                explicit = true;
            } else if self.eat_kw(Keyword::Output) {
                dir = PortDir::Output;
                kind = NetKind::Wire;
                range = None;
                explicit = true;
            }
            if self.eat_kw(Keyword::Wire) {
                kind = NetKind::Wire;
                explicit = true;
            } else if self.eat_kw(Keyword::Reg) {
                kind = NetKind::Reg;
                explicit = true;
            } else if self.eat_kw(Keyword::Logic) {
                kind = NetKind::Logic;
                explicit = true;
            }
            self.eat_kw(Keyword::Signed);
            if let Some(r) = self.try_range()? {
                range = Some(r);
            } else if explicit {
                range = range.take().filter(|_| false).or(None);
                // Explicit direction without range resets to scalar.
                if explicit {
                    range = None;
                }
            }
            // Re-scan range after reset (direction keyword resets range,
            // then a range may follow).
            if range.is_none() {
                if let Some(r) = self.try_range()? {
                    range = Some(r);
                }
            }
            let (name, nspan) = self.expect_ident()?;
            ports.push(Port {
                dir,
                kind,
                range,
                name,
                span: pstart.merge(nspan),
            });
            if !self.eat(&TokenKind::Comma) {
                return Ok(());
            }
        }
    }

    fn try_range(&mut self) -> Result<Option<BitRange>> {
        if !self.at(&TokenKind::LBracket) {
            return Ok(None);
        }
        // Only constant ranges are supported in declarations.
        self.bump();
        let msb = self.const_u32()?;
        self.expect(&TokenKind::Colon)?;
        let lsb = self.const_u32()?;
        self.expect(&TokenKind::RBracket)?;
        if lsb > msb {
            return Err(CompileError::single(
                "descending ranges `[lsb:msb]` with lsb > msb are not supported",
                self.prev_span(),
            ));
        }
        Ok(Some(BitRange { msb, lsb }))
    }

    fn const_u32(&mut self) -> Result<u32> {
        match self.peek().clone() {
            TokenKind::Number { value, .. } => {
                self.bump();
                u32::try_from(value)
                    .map_err(|_| CompileError::single("constant out of range", self.prev_span()))
            }
            _ => Err(self.unexpected("expected constant")),
        }
    }

    fn item(&mut self, items: &mut Vec<Item>, ports: &mut Vec<Port>) -> Result<()> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::Keyword(Keyword::Input) | TokenKind::Keyword(Keyword::Output) => {
                // Non-ANSI port declarations in the body.
                let dir = if self.eat_kw(Keyword::Input) {
                    PortDir::Input
                } else {
                    self.bump();
                    PortDir::Output
                };
                let mut kind = NetKind::Wire;
                if self.eat_kw(Keyword::Reg) {
                    kind = NetKind::Reg;
                } else if self.eat_kw(Keyword::Wire) {
                    kind = NetKind::Wire;
                } else if self.eat_kw(Keyword::Logic) {
                    kind = NetKind::Logic;
                }
                self.eat_kw(Keyword::Signed);
                let range = self.try_range()?;
                loop {
                    let (name, nspan) = self.expect_ident()?;
                    if let Some(p) = ports.iter_mut().find(|p| p.name == name) {
                        p.dir = dir;
                        p.kind = kind;
                        p.range = range;
                    } else {
                        ports.push(Port {
                            dir,
                            kind,
                            range,
                            name,
                            span: start.merge(nspan),
                        });
                    }
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::Semi)?;
                Ok(())
            }
            TokenKind::Keyword(
                kw @ (Keyword::Wire | Keyword::Reg | Keyword::Logic | Keyword::Integer),
            ) => {
                self.bump();
                let kind = match kw {
                    Keyword::Wire => NetKind::Wire,
                    Keyword::Reg => NetKind::Reg,
                    Keyword::Logic => NetKind::Logic,
                    _ => NetKind::Integer,
                };
                self.eat_kw(Keyword::Signed);
                let range = self.try_range()?;
                let mut names = Vec::new();
                let mut init: Option<(LValue, Expr, Span)> = None;
                loop {
                    let (name, nspan) = self.expect_ident()?;
                    // `wire x = expr;` — declaration with implicit assign.
                    if self.eat(&TokenKind::Assign) {
                        let rhs = self.expr()?;
                        init = Some((
                            LValue::Ident {
                                name: name.clone(),
                                span: nspan,
                            },
                            rhs,
                            start.merge(self.prev_span()),
                        ));
                    }
                    names.push(name);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                let end = self.expect(&TokenKind::Semi)?;
                items.push(Item::Net(NetDecl {
                    kind,
                    range,
                    names,
                    span: start.merge(end),
                }));
                if let Some((lhs, rhs, span)) = init {
                    items.push(Item::Assign(ContAssign { lhs, rhs, span }));
                }
                Ok(())
            }
            TokenKind::Keyword(kw @ (Keyword::Parameter | Keyword::Localparam)) => {
                self.bump();
                let local = kw == Keyword::Localparam;
                let _ = self.try_range()?;
                loop {
                    let (name, _) = self.expect_ident()?;
                    self.expect(&TokenKind::Assign)?;
                    let value = self.expr()?;
                    items.push(Item::Param(ParamDecl {
                        local,
                        name,
                        value,
                        span: start.merge(self.prev_span()),
                    }));
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::Semi)?;
                Ok(())
            }
            TokenKind::Keyword(Keyword::Assign) => {
                self.bump();
                let lhs = self.lvalue()?;
                self.expect(&TokenKind::Assign)?;
                let rhs = self.expr()?;
                let end = self.expect(&TokenKind::Semi)?;
                items.push(Item::Assign(ContAssign {
                    lhs,
                    rhs,
                    span: start.merge(end),
                }));
                Ok(())
            }
            TokenKind::Keyword(
                kw @ (Keyword::Always | Keyword::AlwaysFf | Keyword::AlwaysComb),
            ) => {
                self.bump();
                let kind = match kw {
                    Keyword::Always => AlwaysKind::Always,
                    Keyword::AlwaysFf => AlwaysKind::Ff,
                    _ => AlwaysKind::Comb,
                };
                let sensitivity = if kind == AlwaysKind::Comb {
                    Sensitivity::Star
                } else {
                    self.sensitivity()?
                };
                let body = self.stmt()?;
                let span = start.merge(body.span());
                items.push(Item::Always(AlwaysBlock {
                    kind,
                    sensitivity,
                    body,
                    span,
                }));
                Ok(())
            }
            TokenKind::Keyword(Keyword::Initial) => {
                self.bump();
                let body = self.stmt()?;
                let span = start.merge(body.span());
                items.push(Item::Initial(InitialBlock { body, span }));
                Ok(())
            }
            TokenKind::Keyword(Keyword::Property) => {
                let p = self.property_decl()?;
                items.push(Item::Property(p));
                Ok(())
            }
            TokenKind::Keyword(Keyword::Assert) => {
                let a = self.assert_directive(None, start)?;
                items.push(Item::Assert(a));
                Ok(())
            }
            TokenKind::Ident(label) if *self.peek_at(1) == TokenKind::Colon => {
                self.bump();
                self.bump();
                if self.at_kw(Keyword::Assert) {
                    let a = self.assert_directive(Some(label), start)?;
                    items.push(Item::Assert(a));
                    Ok(())
                } else {
                    Err(self.unexpected("expected `assert` after label"))
                }
            }
            _ => Err(self.unexpected("expected module item")),
        }
    }

    fn sensitivity(&mut self) -> Result<Sensitivity> {
        self.expect(&TokenKind::At)?;
        if self.eat(&TokenKind::Star) {
            return Ok(Sensitivity::Star);
        }
        self.expect(&TokenKind::LParen)?;
        if self.eat(&TokenKind::Star) {
            self.expect(&TokenKind::RParen)?;
            return Ok(Sensitivity::Star);
        }
        let mut list = Vec::new();
        loop {
            let item = if self.eat_kw(Keyword::Posedge) {
                SensItem::Posedge(self.expect_ident()?.0)
            } else if self.eat_kw(Keyword::Negedge) {
                SensItem::Negedge(self.expect_ident()?.0)
            } else {
                SensItem::Level(self.expect_ident()?.0)
            };
            list.push(item);
            if !(self.eat_kw(Keyword::Or) || self.eat(&TokenKind::Comma)) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Sensitivity::List(list))
    }

    fn stmt(&mut self) -> Result<Stmt> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::Keyword(Keyword::Begin) => {
                self.bump();
                // Optional block label `begin : name`.
                if self.eat(&TokenKind::Colon) {
                    self.expect_ident()?;
                }
                let mut stmts = Vec::new();
                while !self.at_kw(Keyword::End) {
                    if self.at(&TokenKind::Eof) {
                        return Err(self.unexpected("expected `end`"));
                    }
                    stmts.push(self.stmt()?);
                }
                let end = self.expect_kw(Keyword::End)?;
                Ok(Stmt::Block {
                    stmts,
                    span: start.merge(end),
                })
            }
            TokenKind::Keyword(Keyword::If) => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let then_branch = Box::new(self.stmt()?);
                let mut else_branch = None;
                let mut span = start.merge(then_branch.span());
                if self.eat_kw(Keyword::Else) {
                    let e = self.stmt()?;
                    span = span.merge(e.span());
                    else_branch = Some(Box::new(e));
                }
                Ok(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                    span,
                })
            }
            TokenKind::Keyword(kw @ (Keyword::Case | Keyword::Casez | Keyword::Casex)) => {
                self.bump();
                let kind = match kw {
                    Keyword::Case => CaseKind::Case,
                    Keyword::Casez => CaseKind::Casez,
                    _ => CaseKind::Casex,
                };
                self.expect(&TokenKind::LParen)?;
                let scrutinee = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let mut arms = Vec::new();
                let mut default = None;
                while !self.at_kw(Keyword::Endcase) {
                    if self.at(&TokenKind::Eof) {
                        return Err(self.unexpected("expected `endcase`"));
                    }
                    if self.eat_kw(Keyword::Default) {
                        self.eat(&TokenKind::Colon);
                        default = Some(Box::new(self.stmt()?));
                        continue;
                    }
                    let astart = self.span();
                    let mut labels = vec![self.expr()?];
                    while self.eat(&TokenKind::Comma) {
                        labels.push(self.expr()?);
                    }
                    self.expect(&TokenKind::Colon)?;
                    let body = self.stmt()?;
                    let aspan = astart.merge(body.span());
                    arms.push(CaseArm {
                        labels,
                        body,
                        span: aspan,
                    });
                }
                let end = self.expect_kw(Keyword::Endcase)?;
                Ok(Stmt::Case {
                    kind,
                    scrutinee,
                    arms,
                    default,
                    span: start.merge(end),
                })
            }
            TokenKind::Semi => {
                let span = self.bump().span;
                Ok(Stmt::Empty { span })
            }
            TokenKind::Ident(_) | TokenKind::LBrace => {
                let lhs = self.lvalue()?;
                let nonblocking = if self.eat(&TokenKind::LtEq) {
                    true
                } else if self.eat(&TokenKind::Assign) {
                    false
                } else {
                    return Err(self.unexpected("expected `=` or `<=`"));
                };
                // Optional intra-assignment delay `#1` is skipped.
                if self.eat(&TokenKind::Hash) {
                    if let TokenKind::Number { .. } = self.peek() {
                        self.bump();
                    }
                }
                let rhs = self.expr()?;
                let end = self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Assign {
                    lhs,
                    rhs,
                    nonblocking,
                    span: start.merge(end),
                })
            }
            _ => Err(self.unexpected("expected statement")),
        }
    }

    fn lvalue(&mut self) -> Result<LValue> {
        let start = self.span();
        if self.eat(&TokenKind::LBrace) {
            let mut parts = vec![self.lvalue()?];
            while self.eat(&TokenKind::Comma) {
                parts.push(self.lvalue()?);
            }
            let end = self.expect(&TokenKind::RBrace)?;
            return Ok(LValue::Concat {
                parts,
                span: start.merge(end),
            });
        }
        let (name, nspan) = self.expect_ident()?;
        if self.at(&TokenKind::LBracket) {
            // Distinguish bit select from part select by lookahead for `:`.
            let save = self.pos;
            self.bump();
            let first = self.expr()?;
            if self.eat(&TokenKind::Colon) {
                let msb = match first {
                    Expr::Number { value, .. } => u32::try_from(value)
                        .map_err(|_| CompileError::single("part-select msb out of range", nspan))?,
                    _ => {
                        return Err(CompileError::single(
                            "part selects must use constant bounds",
                            first.span(),
                        ))
                    }
                };
                let lsb = self.const_u32()?;
                let end = self.expect(&TokenKind::RBracket)?;
                return Ok(LValue::Part {
                    name,
                    range: BitRange { msb, lsb },
                    span: start.merge(end),
                });
            }
            let end = self.expect(&TokenKind::RBracket)?;
            let _ = save;
            return Ok(LValue::Bit {
                name,
                index: Box::new(first),
                span: start.merge(end),
            });
        }
        Ok(LValue::Ident { name, span: nspan })
    }

    // -- expressions ------------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr> {
        let cond = self.binary(0)?;
        if self.eat(&TokenKind::Question) {
            let then_expr = self.expr()?;
            self.expect(&TokenKind::Colon)?;
            let else_expr = self.expr()?;
            let span = cond.span().merge(else_expr.span());
            return Ok(Expr::Ternary {
                cond: Box::new(cond),
                then_expr: Box::new(then_expr),
                else_expr: Box::new(else_expr),
                span,
            });
        }
        Ok(cond)
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr> {
        let mut lhs = self.unary()?;
        while let Some(op) = self.peek_binary_op() {
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn peek_binary_op(&self) -> Option<BinaryOp> {
        use TokenKind as T;
        Some(match self.peek() {
            T::Plus => BinaryOp::Add,
            T::Minus => BinaryOp::Sub,
            T::Star => BinaryOp::Mul,
            T::Slash => BinaryOp::Div,
            T::Percent => BinaryOp::Mod,
            T::StarStar => BinaryOp::Pow,
            T::Amp => BinaryOp::BitAnd,
            T::Pipe => BinaryOp::BitOr,
            T::Caret => BinaryOp::BitXor,
            T::TildeCaret => BinaryOp::BitXnor,
            T::AmpAmp => BinaryOp::LogicAnd,
            T::PipePipe => BinaryOp::LogicOr,
            T::EqEq => BinaryOp::Eq,
            T::BangEq => BinaryOp::Ne,
            T::EqEqEq => BinaryOp::CaseEq,
            T::BangEqEq => BinaryOp::CaseNe,
            T::Lt => BinaryOp::Lt,
            T::LtEq => BinaryOp::Le,
            T::Gt => BinaryOp::Gt,
            T::GtEq => BinaryOp::Ge,
            T::Shl => BinaryOp::Shl,
            T::Shr => BinaryOp::Shr,
            T::AShl => BinaryOp::AShl,
            T::AShr => BinaryOp::AShr,
            _ => return None,
        })
    }

    fn unary(&mut self) -> Result<Expr> {
        use TokenKind as T;
        let start = self.span();
        let op = match self.peek() {
            T::Minus => Some(UnaryOp::Neg),
            T::Bang => Some(UnaryOp::LogicNot),
            T::Tilde => Some(UnaryOp::BitNot),
            T::Amp => Some(UnaryOp::RedAnd),
            T::Pipe => Some(UnaryOp::RedOr),
            T::Caret => Some(UnaryOp::RedXor),
            T::TildeAmp => Some(UnaryOp::RedNand),
            T::TildePipe => Some(UnaryOp::RedNor),
            T::TildeCaret => Some(UnaryOp::RedXnor),
            T::Plus => Some(UnaryOp::Plus),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary()?;
            let span = start.merge(operand.span());
            return Ok(Expr::Unary {
                op,
                operand: Box::new(operand),
                span,
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        use TokenKind as T;
        let start = self.span();
        match self.peek().clone() {
            T::Number { value, width, base } => {
                let span = self.bump().span;
                Ok(Expr::Number {
                    value,
                    width,
                    base,
                    span,
                })
            }
            T::Str(_) => Err(CompileError::single(
                "string literals are only allowed in $error actions",
                start,
            )),
            T::Ident(name) => {
                let nspan = self.bump().span;
                if self.at(&T::LBracket) {
                    self.bump();
                    let first = self.expr()?;
                    if self.eat(&T::Colon) {
                        let msb = match first {
                            Expr::Number { value, .. } => u32::try_from(value).map_err(|_| {
                                CompileError::single("part-select out of range", nspan)
                            })?,
                            _ => {
                                return Err(CompileError::single(
                                    "part selects must use constant bounds",
                                    first.span(),
                                ))
                            }
                        };
                        let lsb = self.const_u32()?;
                        let end = self.expect(&T::RBracket)?;
                        return Ok(Expr::Part {
                            name,
                            range: BitRange { msb, lsb },
                            span: start.merge(end),
                        });
                    }
                    let end = self.expect(&T::RBracket)?;
                    return Ok(Expr::Bit {
                        name,
                        index: Box::new(first),
                        span: start.merge(end),
                    });
                }
                Ok(Expr::Ident { name, span: nspan })
            }
            T::SysIdent(name) => {
                self.bump();
                let mut args = Vec::new();
                if self.eat(&T::LParen) {
                    if !self.at(&T::RParen) {
                        args.push(self.expr()?);
                        while self.eat(&T::Comma) {
                            args.push(self.expr()?);
                        }
                    }
                    self.expect(&T::RParen)?;
                }
                Ok(Expr::SysCall {
                    name,
                    args,
                    span: start.merge(self.prev_span()),
                })
            }
            T::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&T::RParen)?;
                Ok(e)
            }
            T::LBrace => {
                self.bump();
                let first = self.expr()?;
                // `{n{expr}}` replication.
                if self.at(&T::LBrace) {
                    self.bump();
                    let value = self.expr()?;
                    self.expect(&T::RBrace)?;
                    let end = self.expect(&T::RBrace)?;
                    return Ok(Expr::Repeat {
                        count: Box::new(first),
                        value: Box::new(value),
                        span: start.merge(end),
                    });
                }
                let mut parts = vec![first];
                while self.eat(&T::Comma) {
                    parts.push(self.expr()?);
                }
                let end = self.expect(&T::RBrace)?;
                Ok(Expr::Concat {
                    parts,
                    span: start.merge(end),
                })
            }
            _ => Err(self.unexpected("expected expression")),
        }
    }

    // -- SVA ---------------------------------------------------------------

    fn property_decl(&mut self) -> Result<PropertyDecl> {
        let start = self.expect_kw(Keyword::Property)?;
        let (name, _) = self.expect_ident()?;
        self.eat(&TokenKind::Semi);
        let clock = self.clock_spec()?;
        let mut disable = None;
        if self.eat_kw(Keyword::Disable) {
            self.expect_kw(Keyword::Iff)?;
            self.expect(&TokenKind::LParen)?;
            disable = Some(self.expr()?);
            self.expect(&TokenKind::RParen)?;
        }
        let body = self.prop_expr()?;
        self.eat(&TokenKind::Semi);
        let end = self.expect_kw(Keyword::Endproperty)?;
        Ok(PropertyDecl {
            name,
            clock,
            disable,
            body,
            span: start.merge(end),
        })
    }

    fn clock_spec(&mut self) -> Result<ClockSpec> {
        self.expect(&TokenKind::At)?;
        self.expect(&TokenKind::LParen)?;
        let posedge = if self.eat_kw(Keyword::Posedge) {
            true
        } else if self.eat_kw(Keyword::Negedge) {
            false
        } else {
            return Err(self.unexpected("expected `posedge` or `negedge`"));
        };
        let (signal, _) = self.expect_ident()?;
        self.expect(&TokenKind::RParen)?;
        Ok(ClockSpec { posedge, signal })
    }

    fn prop_expr(&mut self) -> Result<PropExpr> {
        let antecedent = self.seq_expr()?;
        let overlapping = if self.at(&TokenKind::ImplOverlap) {
            self.bump();
            true
        } else if self.at(&TokenKind::ImplNonOverlap) {
            self.bump();
            false
        } else {
            return Ok(PropExpr::Seq(antecedent));
        };
        let consequent = self.seq_expr()?;
        let span = antecedent.span().merge(consequent.span());
        Ok(PropExpr::Implication {
            antecedent,
            overlapping,
            consequent,
            span,
        })
    }

    fn seq_expr(&mut self) -> Result<SeqExpr> {
        // Leading delay `##n expr` is sugar for `1 ##n expr` anchored at the
        // evaluation tick.
        let start = self.span();
        let mut seq = if self.at(&TokenKind::HashHash) {
            self.bump();
            let cycles = self.const_u32()?;
            let rhs = SeqExpr::Expr(self.expr()?);
            let span = start.merge(rhs.span());
            SeqExpr::Delay {
                lhs: Box::new(SeqExpr::Expr(Expr::Number {
                    value: 1,
                    width: Some(1),
                    base: Some('b'),
                    span: Span::point(start.start),
                })),
                cycles,
                rhs: Box::new(rhs),
                span,
            }
        } else {
            SeqExpr::Expr(self.expr()?)
        };
        while self.at(&TokenKind::HashHash) {
            self.bump();
            let cycles = self.const_u32()?;
            let rhs = SeqExpr::Expr(self.expr()?);
            let span = seq.span().merge(rhs.span());
            seq = SeqExpr::Delay {
                lhs: Box::new(seq),
                cycles,
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(seq)
    }

    fn assert_directive(&mut self, label: Option<String>, start: Span) -> Result<AssertDirective> {
        self.expect_kw(Keyword::Assert)?;
        self.expect_kw(Keyword::Property)?;
        self.expect(&TokenKind::LParen)?;
        let target = if let TokenKind::Ident(name) = self.peek().clone() {
            // Either a reference to a named property or an inline
            // expression starting with an identifier. A bare identifier
            // followed by `)` is a reference.
            if *self.peek_at(1) == TokenKind::RParen {
                self.bump();
                AssertTarget::Named(name)
            } else {
                let p = self.inline_property(&label)?;
                AssertTarget::Inline(Box::new(p))
            }
        } else {
            // Anything else (`@(posedge ...)` clocking or a bare
            // expression) parses as an inline property.
            let p = self.inline_property(&label)?;
            AssertTarget::Inline(Box::new(p))
        };
        self.expect(&TokenKind::RParen)?;
        let mut message = None;
        if self.eat_kw(Keyword::Else) {
            // `$error("...")` or `$fatal`/`$display` treated alike.
            match self.peek().clone() {
                TokenKind::SysIdent(_) => {
                    self.bump();
                    if self.eat(&TokenKind::LParen) {
                        if let TokenKind::Str(s) = self.peek().clone() {
                            self.bump();
                            message = Some(s);
                        }
                        // Skip any trailing args.
                        while !self.at(&TokenKind::RParen) {
                            if self.at(&TokenKind::Eof) {
                                return Err(self.unexpected("expected `)`"));
                            }
                            self.bump();
                        }
                        self.expect(&TokenKind::RParen)?;
                    }
                }
                _ => return Err(self.unexpected("expected system task after `else`")),
            }
        }
        let end = self.expect(&TokenKind::Semi)?;
        Ok(AssertDirective {
            label,
            target,
            message,
            span: start.merge(end),
        })
    }

    fn inline_property(&mut self, label: &Option<String>) -> Result<PropertyDecl> {
        let start = self.span();
        let clock = if self.at(&TokenKind::At) {
            self.clock_spec()?
        } else {
            // Unclocked inline assertions default to posedge clk; the
            // elaborator validates that `clk` exists.
            ClockSpec {
                posedge: true,
                signal: "clk".to_string(),
            }
        };
        let mut disable = None;
        if self.eat_kw(Keyword::Disable) {
            self.expect_kw(Keyword::Iff)?;
            self.expect(&TokenKind::LParen)?;
            disable = Some(self.expr()?);
            self.expect(&TokenKind::RParen)?;
        }
        let body = self.prop_expr()?;
        Ok(PropertyDecl {
            name: label.clone().unwrap_or_default(),
            clock,
            disable,
            body,
            span: start.merge(self.prev_span()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ACCU: &str = r#"
module accu(
  input clk,
  input rst_n,
  input [7:0] in,
  input valid_in,
  output reg [9:0] out,
  output reg valid_out
);
  wire end_cnt;
  reg [1:0] cnt;
  assign end_cnt = (cnt == 2'd3) && valid_in;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) cnt <= 2'd0;
    else if (valid_in) cnt <= end_cnt ? 2'd0 : cnt + 2'd1;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) valid_out <= 0;
    else if (end_cnt) valid_out <= 1;
    else valid_out <= 0;
  end
  property valid_out_check;
    @(posedge clk) disable iff (!rst_n)
    end_cnt |-> ##1 valid_out == 1;
  endproperty
  valid_out_check_assertion: assert property (valid_out_check)
    else $error("valid_out should be high when end_cnt high");
endmodule
"#;

    #[test]
    fn parses_paper_example() {
        let unit = parse(ACCU).expect("parse ok");
        let m = &unit.modules[0];
        assert_eq!(m.name, "accu");
        assert_eq!(m.ports.len(), 6);
        assert_eq!(m.ports[2].width(), 8);
        assert_eq!(m.properties().count(), 1);
        assert_eq!(m.assertions().count(), 1);
        let a = m.assertions().next().expect("one assertion");
        assert_eq!(a.log_name(), "valid_out_check_assertion");
        assert!(a.message.as_deref().unwrap_or("").contains("valid_out"));
    }

    #[test]
    fn property_structure() {
        let unit = parse(ACCU).expect("parse ok");
        let p = unit.modules[0].properties().next().expect("property");
        assert_eq!(p.name, "valid_out_check");
        assert!(p.clock.posedge);
        assert_eq!(p.clock.signal, "clk");
        assert!(p.disable.is_some());
        match &p.body {
            PropExpr::Implication {
                overlapping,
                consequent,
                ..
            } => {
                assert!(*overlapping);
                assert_eq!(consequent.duration(), 1);
            }
            other => panic!("expected implication, got {other:?}"),
        }
    }

    #[test]
    fn precedence_shapes_tree() {
        let unit =
            parse("module m(input a, input b, input c, output y); assign y = a | b & c; endmodule")
                .expect("parse ok");
        let Item::Assign(ca) = &unit.modules[0].items[0] else {
            panic!("expected assign");
        };
        // `&` binds tighter than `|`: y = a | (b & c)
        match &ca.rhs {
            Expr::Binary { op, rhs, .. } => {
                assert_eq!(*op, BinaryOp::BitOr);
                assert!(matches!(
                    **rhs,
                    Expr::Binary {
                        op: BinaryOp::BitAnd,
                        ..
                    }
                ));
            }
            other => panic!("expected binary, got {other:?}"),
        }
    }

    #[test]
    fn nonblocking_vs_comparison() {
        let unit = parse(
            "module m(input clk, input [3:0] a, output reg y);\n\
             always @(posedge clk) y <= a <= 4'd5;\nendmodule",
        )
        .expect("parse ok");
        let Item::Always(al) = &unit.modules[0].items[0] else {
            panic!("expected always");
        };
        let Stmt::Assign {
            nonblocking, rhs, ..
        } = &al.body
        else {
            panic!("expected assign, got {:?}", al.body);
        };
        assert!(*nonblocking);
        assert!(matches!(
            rhs,
            Expr::Binary {
                op: BinaryOp::Le,
                ..
            }
        ));
    }

    #[test]
    fn case_statement() {
        let src = "module m(input [1:0] s, output reg [3:0] y);\n\
            always @* begin\n\
              case (s)\n\
                2'd0: y = 4'd1;\n\
                2'd1, 2'd2: y = 4'd2;\n\
                default: y = 4'd0;\n\
              endcase\n\
            end\nendmodule";
        let unit = parse(src).expect("parse ok");
        let Item::Always(al) = &unit.modules[0].items[0] else {
            panic!("expected always");
        };
        let Stmt::Block { stmts, .. } = &al.body else {
            panic!("expected block");
        };
        let Stmt::Case { arms, default, .. } = &stmts[0] else {
            panic!("expected case");
        };
        assert_eq!(arms.len(), 2);
        assert_eq!(arms[1].labels.len(), 2);
        assert!(default.is_some());
    }

    #[test]
    fn rejects_missing_endmodule() {
        assert!(parse("module m(input a);").is_err());
    }

    #[test]
    fn rejects_bad_statement() {
        assert!(parse("module m; always @(posedge c) 42; endmodule").is_err());
    }

    #[test]
    fn parses_concat_and_repeat() {
        let unit =
            parse("module m(input [3:0] a, output [7:0] y); assign y = {2{a}} ^ {a, a}; endmodule")
                .expect("parse ok");
        let Item::Assign(ca) = &unit.modules[0].items[0] else {
            panic!("expected assign");
        };
        assert!(matches!(ca.rhs, Expr::Binary { .. }));
    }

    #[test]
    fn parses_parameters() {
        let unit = parse(
            "module m #(parameter W = 4)(input [3:0] a, output [3:0] y);\n\
             localparam TOP = 15;\n assign y = a + TOP; endmodule",
        )
        .expect("parse ok");
        let params: Vec<_> = unit.modules[0]
            .items
            .iter()
            .filter(|i| matches!(i, Item::Param(_)))
            .collect();
        assert_eq!(params.len(), 2);
    }

    #[test]
    fn parses_leading_delay_sequence() {
        let src = "module m(input clk, input a, input b);\n\
            property p; @(posedge clk) a |-> ##2 b; endproperty\n\
            assert property (p);\nendmodule";
        let unit = parse(src).expect("parse ok");
        let p = unit.modules[0].properties().next().expect("property");
        let PropExpr::Implication { consequent, .. } = &p.body else {
            panic!("expected implication");
        };
        assert_eq!(consequent.duration(), 2);
    }

    #[test]
    fn parses_syscalls_in_properties() {
        let src = "module m(input clk, input [3:0] d, output reg [3:0] q);\n\
            always @(posedge clk) q <= d;\n\
            property p; @(posedge clk) q == $past(d, 1); endproperty\n\
            chk: assert property (p) else $error(\"stale q\");\nendmodule";
        let unit = parse(src).expect("parse ok");
        let p = unit.modules[0].properties().next().expect("property");
        let PropExpr::Seq(SeqExpr::Expr(e)) = &p.body else {
            panic!("expected seq");
        };
        assert!(e.idents().contains(&"d".to_string()));
    }

    #[test]
    fn non_ansi_ports() {
        let src = "module m(a, y);\ninput [3:0] a;\noutput [3:0] y;\nassign y = a; endmodule";
        let unit = parse(src).expect("parse ok");
        let m = &unit.modules[0];
        assert_eq!(m.ports.len(), 2);
        assert_eq!(m.ports[0].width(), 4);
        assert_eq!(m.ports[1].dir, PortDir::Output);
    }

    #[test]
    fn wire_with_init_splits_into_assign() {
        let unit =
            parse("module m(input a, output y); wire t = ~a; assign y = t; endmodule").expect("ok");
        let kinds: Vec<_> = unit.modules[0]
            .items
            .iter()
            .map(std::mem::discriminant)
            .collect();
        assert_eq!(kinds.len(), 3); // net decl + implied assign + assign
    }
}
