//! Token kinds produced by the [`crate::lexer`].

use crate::source::Span;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A lexed token: a [`TokenKind`] plus the [`Span`] it covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it sits in the source.
    pub span: Span,
}

/// Keywords of the supported Verilog-2005 + SVA subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Keyword {
    Module,
    Endmodule,
    Input,
    Output,
    Wire,
    Reg,
    Logic,
    Integer,
    Parameter,
    Localparam,
    Assign,
    Always,
    AlwaysFf,
    AlwaysComb,
    Initial,
    Begin,
    End,
    If,
    Else,
    Case,
    Casez,
    Casex,
    Endcase,
    Default,
    Posedge,
    Negedge,
    Or,
    Property,
    Endproperty,
    Assert,
    Disable,
    Iff,
    Signed,
    Genvar,
    For,
    Function,
    Endfunction,
}

impl Keyword {
    /// The keyword's source spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Module => "module",
            Keyword::Endmodule => "endmodule",
            Keyword::Input => "input",
            Keyword::Output => "output",
            Keyword::Wire => "wire",
            Keyword::Reg => "reg",
            Keyword::Logic => "logic",
            Keyword::Integer => "integer",
            Keyword::Parameter => "parameter",
            Keyword::Localparam => "localparam",
            Keyword::Assign => "assign",
            Keyword::Always => "always",
            Keyword::AlwaysFf => "always_ff",
            Keyword::AlwaysComb => "always_comb",
            Keyword::Initial => "initial",
            Keyword::Begin => "begin",
            Keyword::End => "end",
            Keyword::If => "if",
            Keyword::Else => "else",
            Keyword::Case => "case",
            Keyword::Casez => "casez",
            Keyword::Casex => "casex",
            Keyword::Endcase => "endcase",
            Keyword::Default => "default",
            Keyword::Posedge => "posedge",
            Keyword::Negedge => "negedge",
            Keyword::Or => "or",
            Keyword::Property => "property",
            Keyword::Endproperty => "endproperty",
            Keyword::Assert => "assert",
            Keyword::Disable => "disable",
            Keyword::Iff => "iff",
            Keyword::Signed => "signed",
            Keyword::Genvar => "genvar",
            Keyword::For => "for",
            Keyword::Function => "function",
            Keyword::Endfunction => "endfunction",
        }
    }

    /// Parses an identifier-shaped word as a keyword, if it is one.
    pub fn from_word(word: &str) -> Option<Keyword> {
        Some(match word {
            "module" => Keyword::Module,
            "endmodule" => Keyword::Endmodule,
            "input" => Keyword::Input,
            "output" => Keyword::Output,
            "wire" => Keyword::Wire,
            "reg" => Keyword::Reg,
            "logic" => Keyword::Logic,
            "integer" => Keyword::Integer,
            "parameter" => Keyword::Parameter,
            "localparam" => Keyword::Localparam,
            "assign" => Keyword::Assign,
            "always" => Keyword::Always,
            "always_ff" => Keyword::AlwaysFf,
            "always_comb" => Keyword::AlwaysComb,
            "initial" => Keyword::Initial,
            "begin" => Keyword::Begin,
            "end" => Keyword::End,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "case" => Keyword::Case,
            "casez" => Keyword::Casez,
            "casex" => Keyword::Casex,
            "endcase" => Keyword::Endcase,
            "default" => Keyword::Default,
            "posedge" => Keyword::Posedge,
            "negedge" => Keyword::Negedge,
            "or" => Keyword::Or,
            "property" => Keyword::Property,
            "endproperty" => Keyword::Endproperty,
            "assert" => Keyword::Assert,
            "disable" => Keyword::Disable,
            "iff" => Keyword::Iff,
            "signed" => Keyword::Signed,
            "genvar" => Keyword::Genvar,
            "for" => Keyword::For,
            "function" => Keyword::Function,
            "endfunction" => Keyword::Endfunction,
            _ => return None,
        })
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// A reserved word.
    Keyword(Keyword),
    /// An identifier (also covers escaped identifiers with the backslash
    /// stripped).
    Ident(String),
    /// A system identifier such as `$past` or `$error` (without the `$`).
    SysIdent(String),
    /// An integer literal: value, optional explicit width, and whether a
    /// base was given (e.g. `4'b1010`).
    Number {
        /// Numeric value (masked to 64 bits).
        value: u64,
        /// Bit width if the literal was sized (`4'b...`).
        width: Option<u32>,
        /// Base character if given: `b`, `o`, `d`, `h`.
        base: Option<char>,
    },
    /// A string literal, without the surrounding quotes.
    Str(String),
    // Punctuation and operators.
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Semi,
    Comma,
    Colon,
    Dot,
    At,
    Hash,
    /// `##` (SVA cycle delay).
    HashHash,
    Question,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    /// `**`
    StarStar,
    Amp,
    /// `&&`
    AmpAmp,
    Pipe,
    /// `||`
    PipePipe,
    Caret,
    /// `~^` or `^~` (xnor)
    TildeCaret,
    Tilde,
    /// `~&` (nand reduction)
    TildeAmp,
    /// `~|` (nor reduction)
    TildePipe,
    Bang,
    /// `=`
    Assign,
    /// `<=` in statement context is nonblocking assign; also less-equal.
    LtEq,
    /// `==`
    EqEq,
    /// `!=`
    BangEq,
    /// `===`
    EqEqEq,
    /// `!==`
    BangEqEq,
    Lt,
    Gt,
    /// `>=`
    GtEq,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<<<`
    AShl,
    /// `>>>`
    AShr,
    /// `|->` (overlapping implication)
    ImplOverlap,
    /// `|=>` (non-overlapping implication)
    ImplNonOverlap,
    /// `+:` (indexed part select, ascending)
    PlusColon,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Short human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Keyword(k) => format!("keyword `{k}`"),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::SysIdent(s) => format!("system identifier `${s}`"),
            TokenKind::Number { value, .. } => format!("number `{value}`"),
            TokenKind::Str(_) => "string literal".to_string(),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{}`", other.punct_str()),
        }
    }

    fn punct_str(&self) -> &'static str {
        match self {
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::Semi => ";",
            TokenKind::Comma => ",",
            TokenKind::Colon => ":",
            TokenKind::Dot => ".",
            TokenKind::At => "@",
            TokenKind::Hash => "#",
            TokenKind::HashHash => "##",
            TokenKind::Question => "?",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::StarStar => "**",
            TokenKind::Amp => "&",
            TokenKind::AmpAmp => "&&",
            TokenKind::Pipe => "|",
            TokenKind::PipePipe => "||",
            TokenKind::Caret => "^",
            TokenKind::TildeCaret => "~^",
            TokenKind::Tilde => "~",
            TokenKind::TildeAmp => "~&",
            TokenKind::TildePipe => "~|",
            TokenKind::Bang => "!",
            TokenKind::Assign => "=",
            TokenKind::LtEq => "<=",
            TokenKind::EqEq => "==",
            TokenKind::BangEq => "!=",
            TokenKind::EqEqEq => "===",
            TokenKind::BangEqEq => "!==",
            TokenKind::Lt => "<",
            TokenKind::Gt => ">",
            TokenKind::GtEq => ">=",
            TokenKind::Shl => "<<",
            TokenKind::Shr => ">>",
            TokenKind::AShl => "<<<",
            TokenKind::AShr => ">>>",
            TokenKind::ImplOverlap => "|->",
            TokenKind::ImplNonOverlap => "|=>",
            TokenKind::PlusColon => "+:",
            _ => unreachable!("non-punctuation token"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_roundtrip() {
        for kw in [
            Keyword::Module,
            Keyword::Endmodule,
            Keyword::Always,
            Keyword::Property,
            Keyword::Iff,
        ] {
            assert_eq!(Keyword::from_word(kw.as_str()), Some(kw));
        }
        assert_eq!(Keyword::from_word("not_a_keyword"), None);
    }

    #[test]
    fn describe_is_nonempty() {
        assert!(TokenKind::ImplOverlap.describe().contains("|->"));
        assert!(TokenKind::Keyword(Keyword::Module)
            .describe()
            .contains("module"));
        assert!(TokenKind::Ident("clk".into()).describe().contains("clk"));
    }
}
