//! Source text handling: byte spans and line/column mapping.
//!
//! Every AST node produced by the [`crate::parser`] carries a [`Span`]
//! pointing back into the original source. The repair pipeline depends on
//! this to report *line-accurate* bug locations, exactly as the paper's
//! model must emit the buggy line snippet.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open byte range `[start, end)` into a source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    pub fn new(start: u32, end: u32) -> Self {
        debug_assert!(start <= end, "span start must not exceed end");
        Span { start, end }
    }

    /// A zero-length span at a position (used for synthesised nodes).
    pub fn point(at: u32) -> Self {
        Span { start: at, end: at }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length of the span in bytes.
    pub fn len(self) -> u32 {
        self.end - self.start
    }

    /// Whether the span is empty.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A 1-based line/column position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes).
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A source file with a precomputed line-offset table.
///
/// ```
/// use asv_verilog::source::SourceFile;
/// let src = SourceFile::new("module m;\nendmodule\n");
/// assert_eq!(src.line_count(), 2);
/// assert_eq!(src.line_col(10).line, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFile {
    text: String,
    line_starts: Vec<u32>,
}

impl SourceFile {
    /// Wraps source text, computing the line table.
    pub fn new(text: impl Into<String>) -> Self {
        let text = text.into();
        let mut line_starts = vec![0u32];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceFile { text, line_starts }
    }

    /// The raw source text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Number of lines (a trailing newline does not add an empty line
    /// unless followed by content).
    pub fn line_count(&self) -> u32 {
        let n = self.line_starts.len() as u32;
        if self.text.ends_with('\n') && n > 1 {
            n - 1
        } else {
            n
        }
    }

    /// Maps a byte offset to a 1-based line/column.
    pub fn line_col(&self, offset: u32) -> LineCol {
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line_idx as u32 + 1,
            col: offset - self.line_starts[line_idx] + 1,
        }
    }

    /// The 1-based line number at the start of `span`.
    pub fn line_of(&self, span: Span) -> u32 {
        self.line_col(span.start).line
    }

    /// The full text of a 1-based line, without the trailing newline.
    ///
    /// Returns `None` if `line` is out of range.
    pub fn line_text(&self, line: u32) -> Option<&str> {
        let idx = line.checked_sub(1)? as usize;
        let start = *self.line_starts.get(idx)? as usize;
        if start >= self.text.len() && !self.text.is_empty() {
            return None; // phantom line after a trailing newline
        }
        let end = self
            .line_starts
            .get(idx + 1)
            .map(|&e| e as usize)
            .unwrap_or(self.text.len());
        Some(self.text[start..end].trim_end_matches(['\n', '\r']))
    }

    /// The source slice covered by `span`.
    pub fn slice(&self, span: Span) -> &str {
        &self.text[span.start as usize..span.end as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn span_len_and_empty() {
        assert_eq!(Span::new(2, 6).len(), 4);
        assert!(Span::point(9).is_empty());
        assert!(!Span::new(0, 1).is_empty());
    }

    #[test]
    fn line_col_maps_offsets() {
        let f = SourceFile::new("abc\ndef\nxyz");
        assert_eq!(f.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(f.line_col(3), LineCol { line: 1, col: 4 });
        assert_eq!(f.line_col(4), LineCol { line: 2, col: 1 });
        assert_eq!(f.line_col(9), LineCol { line: 3, col: 2 });
    }

    #[test]
    fn line_text_returns_lines() {
        let f = SourceFile::new("module m;\n  wire w;\nendmodule\n");
        assert_eq!(f.line_text(1), Some("module m;"));
        assert_eq!(f.line_text(2), Some("  wire w;"));
        assert_eq!(f.line_text(3), Some("endmodule"));
        assert_eq!(f.line_text(4), None);
    }

    #[test]
    fn line_count_ignores_trailing_newline() {
        assert_eq!(SourceFile::new("a\nb\n").line_count(), 2);
        assert_eq!(SourceFile::new("a\nb").line_count(), 2);
        assert_eq!(SourceFile::new("").line_count(), 1);
    }

    #[test]
    fn slice_extracts_span() {
        let f = SourceFile::new("assign y = a & b;");
        assert_eq!(f.slice(Span::new(11, 16)), "a & b");
    }
}
