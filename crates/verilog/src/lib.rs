//! # asv-verilog
//!
//! Front end for a synthesizable Verilog-2005 + SVA subset: lexer, parser,
//! pretty-printer, semantic analysis (the reproduction's stand-in for the
//! Icarus Verilog compile step) and signal dependency analysis.
//!
//! This crate is the foundation of the AssertSolver reproduction (DAC 2025):
//! every stage of the paper's pipeline — corpus filtering, bug injection,
//! formal validation, fault localisation — operates on the AST and
//! [`sema::Design`] defined here.
//!
//! ## Quick start
//!
//! ```
//! use asv_verilog::{compile, graph::DepGraph};
//!
//! let design = compile(
//!     "module gate(input a, input b, output y); assign y = a & b; endmodule",
//! )?;
//! assert_eq!(design.module.name, "gate");
//!
//! let graph = DepGraph::build(&design.module);
//! assert!(graph.cone_of_influence(["y"]).contains("a"));
//! # Ok::<(), asv_verilog::CompileError>(())
//! ```

pub mod ast;
pub mod error;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod sema;
pub mod source;
pub mod token;

pub use error::{CompileError, Diagnostic, Severity};
pub use parser::parse;
pub use sema::{compile, elaborate, Design};
pub use source::{LineCol, SourceFile, Span};

#[cfg(test)]
mod proptests {
    use crate::ast::*;
    use crate::parser::parse;
    use crate::pretty::render_unit;
    use crate::source::Span;
    use proptest::prelude::*;

    fn arb_ident() -> impl Strategy<Value = String> {
        prop::sample::select(vec!["a", "b", "c", "sel", "data", "q", "count", "enable"])
            .prop_map(str::to_string)
    }

    fn arb_expr() -> impl Strategy<Value = Expr> {
        let leaf = prop_oneof![
            (0u64..256, 1u32..9).prop_map(|(v, w)| Expr::Number {
                value: v & ((1 << w) - 1),
                width: Some(w),
                base: Some('d'),
                span: Span::default(),
            }),
            arb_ident().prop_map(|name| Expr::Ident {
                name,
                span: Span::default()
            }),
        ];
        leaf.prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                (
                    inner.clone(),
                    inner.clone(),
                    prop::sample::select(vec![
                        BinaryOp::Add,
                        BinaryOp::Sub,
                        BinaryOp::BitAnd,
                        BinaryOp::BitOr,
                        BinaryOp::BitXor,
                        BinaryOp::Eq,
                        BinaryOp::Lt,
                        BinaryOp::LogicAnd,
                    ])
                )
                    .prop_map(|(l, r, op)| Expr::Binary {
                        op,
                        lhs: Box::new(l),
                        rhs: Box::new(r),
                        span: Span::default(),
                    }),
                (
                    inner.clone(),
                    prop::sample::select(vec![UnaryOp::BitNot, UnaryOp::LogicNot, UnaryOp::RedOr,])
                )
                    .prop_map(|(e, op)| Expr::Unary {
                        op,
                        operand: Box::new(e),
                        span: Span::default(),
                    }),
                (inner.clone(), inner.clone(), inner).prop_map(|(c, t, e)| Expr::Ternary {
                    cond: Box::new(c),
                    then_expr: Box::new(t),
                    else_expr: Box::new(e),
                    span: Span::default(),
                }),
            ]
        })
    }

    fn strip_spans(e: &Expr) -> Expr {
        let mut e = e.clone();
        fn walk(e: &mut Expr) {
            match e {
                Expr::Number { span, .. } | Expr::Ident { span, .. } | Expr::Part { span, .. } => {
                    *span = Span::default()
                }
                Expr::Unary { span, operand, .. } => {
                    *span = Span::default();
                    walk(operand);
                }
                Expr::Binary { span, lhs, rhs, .. } => {
                    *span = Span::default();
                    walk(lhs);
                    walk(rhs);
                }
                Expr::Ternary {
                    span,
                    cond,
                    then_expr,
                    else_expr,
                } => {
                    *span = Span::default();
                    walk(cond);
                    walk(then_expr);
                    walk(else_expr);
                }
                Expr::Concat { span, parts } => {
                    *span = Span::default();
                    parts.iter_mut().for_each(walk);
                }
                Expr::Repeat { span, count, value } => {
                    *span = Span::default();
                    walk(count);
                    walk(value);
                }
                Expr::Bit { span, index, .. } => {
                    *span = Span::default();
                    walk(index);
                }
                Expr::SysCall { span, args, .. } => {
                    *span = Span::default();
                    args.iter_mut().for_each(walk);
                }
            }
        }
        walk(&mut e);
        e
    }

    proptest! {
        /// parse(render(e)) == e for arbitrary expressions: the
        /// pretty-printer inserts parentheses exactly where precedence
        /// requires them.
        #[test]
        fn expr_roundtrip(e in arb_expr()) {
            let src = format!(
                "module t(input a, input b, input c, input sel, input [7:0] data, \
                 input [7:0] q, input [7:0] count, input enable, output [63:0] y);\n\
                 assign y = {};\nendmodule",
                crate::pretty::render_expr(&e)
            );
            let unit = parse(&src).expect("rendered expr must parse");
            let Item::Assign(ca) = &unit.modules[0].items[0] else { panic!("expected assign") };
            prop_assert_eq!(strip_spans(&ca.rhs), strip_spans(&e));
        }

        /// render is a fixpoint: render(parse(render(x))) == render(x).
        #[test]
        fn render_fixpoint(e in arb_expr()) {
            let src = format!(
                "module t(input a, input b, input c, input sel, input [7:0] data, \
                 input [7:0] q, input [7:0] count, input enable, output [63:0] y);\n\
                 assign y = {};\nendmodule",
                crate::pretty::render_expr(&e)
            );
            let once = render_unit(&parse(&src).expect("parse 1"));
            let twice = render_unit(&parse(&once).expect("parse 2"));
            prop_assert_eq!(once, twice);
        }
    }
}
