//! Compilation diagnostics.

use crate::source::{LineCol, Span};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Severity of a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Hard error; compilation fails.
    Error,
    /// Suspicious but accepted construct.
    Warning,
}

/// A single diagnostic message attached to a source location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// How severe the problem is.
    pub severity: Severity,
    /// Human-readable message (lowercase, no trailing punctuation).
    pub message: String,
    /// Where the problem is.
    pub span: Span,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span,
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{sev}: {}", self.message)
    }
}

/// Error returned when parsing or elaboration fails.
///
/// Carries every diagnostic collected before the failure so callers (the
/// stage-1 syntax-check filter in particular) can log the causes, mirroring
/// the paper's use of compiler output as pretraining analysis text.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompileError {
    /// All diagnostics; at least one has [`Severity::Error`].
    pub diagnostics: Vec<Diagnostic>,
}

impl CompileError {
    /// Wraps a single error message.
    pub fn single(message: impl Into<String>, span: Span) -> Self {
        CompileError {
            diagnostics: vec![Diagnostic::error(message, span)],
        }
    }

    /// The first error-severity diagnostic.
    pub fn primary(&self) -> &Diagnostic {
        self.diagnostics
            .iter()
            .find(|d| d.severity == Severity::Error)
            .unwrap_or(&self.diagnostics[0])
    }

    /// Renders all diagnostics with line/column info resolved against `src`.
    pub fn render(&self, src: &crate::source::SourceFile) -> String {
        self.diagnostics
            .iter()
            .map(|d| {
                let lc: LineCol = src.line_col(d.span.start);
                format!("{lc}: {d}")
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.primary())
    }
}

impl std::error::Error for CompileError {}

/// Convenient result alias for front-end operations.
pub type Result<T> = std::result::Result<T, CompileError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    #[test]
    fn primary_picks_first_error() {
        let e = CompileError {
            diagnostics: vec![
                Diagnostic::warning("odd width", Span::new(0, 1)),
                Diagnostic::error("unknown identifier", Span::new(5, 8)),
            ],
        };
        assert_eq!(e.primary().message, "unknown identifier");
    }

    #[test]
    fn render_includes_positions() {
        let src = SourceFile::new("module m;\nbad\nendmodule");
        let e = CompileError::single("unexpected token", Span::new(10, 13));
        let out = e.render(&src);
        assert!(out.contains("2:1"), "got {out}");
        assert!(out.contains("unexpected token"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<CompileError>();
    }
}
