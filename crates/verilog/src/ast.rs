//! Abstract syntax tree for the supported Verilog-2005 + SVA subset.
//!
//! Every node carries a [`Span`] so that downstream tooling (the mutation
//! engine, the fault localiser, the pretty-printer) can map nodes back to
//! source lines. The SVA property/assertion grammar lives here too, so the
//! whole design is one self-contained tree; assertion *semantics* are
//! provided by the `asv-sva` crate.

use crate::source::Span;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A complete source file: one or more modules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceUnit {
    /// Modules in declaration order.
    pub modules: Vec<Module>,
}

impl SourceUnit {
    /// Finds a module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }
}

/// A `module ... endmodule` declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Module identifier.
    pub name: String,
    /// Ports in header order.
    pub ports: Vec<Port>,
    /// Body items in declaration order.
    pub items: Vec<Item>,
    /// Span of the whole module.
    pub span: Span,
}

impl Module {
    /// Iterates over all property declarations in the module body.
    pub fn properties(&self) -> impl Iterator<Item = &PropertyDecl> {
        self.items.iter().filter_map(|i| match i {
            Item::Property(p) => Some(p),
            _ => None,
        })
    }

    /// Iterates over all assertion directives in the module body.
    pub fn assertions(&self) -> impl Iterator<Item = &AssertDirective> {
        self.items.iter().filter_map(|i| match i {
            Item::Assert(a) => Some(a),
            _ => None,
        })
    }

    /// Looks up a net/port declaration width by signal name, if declared.
    pub fn width_of(&self, name: &str) -> Option<u32> {
        for p in &self.ports {
            if p.name == name {
                return Some(p.width());
            }
        }
        for item in &self.items {
            if let Item::Net(n) = item {
                if n.names.iter().any(|n2| n2 == name) {
                    return Some(n.width());
                }
            }
        }
        None
    }
}

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortDir {
    /// `input`
    Input,
    /// `output`
    Output,
}

impl fmt::Display for PortDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PortDir::Input => "input",
            PortDir::Output => "output",
        })
    }
}

/// Net flavour of a declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetKind {
    /// `wire` — driven by continuous assignment.
    Wire,
    /// `reg` — driven procedurally.
    Reg,
    /// `logic` — SystemVerilog; either driver style.
    Logic,
    /// `integer` — treated as a 32-bit signed reg.
    Integer,
}

impl fmt::Display for NetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NetKind::Wire => "wire",
            NetKind::Reg => "reg",
            NetKind::Logic => "logic",
            NetKind::Integer => "integer",
        })
    }
}

/// A constant bit range `[msb:lsb]` (msb ≥ lsb in this subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitRange {
    /// Most significant bit index.
    pub msb: u32,
    /// Least significant bit index.
    pub lsb: u32,
}

impl BitRange {
    /// Width in bits.
    pub fn width(&self) -> u32 {
        self.msb - self.lsb + 1
    }
}

impl fmt::Display for BitRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}:{}]", self.msb, self.lsb)
    }
}

/// A module port.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Port {
    /// Direction.
    pub dir: PortDir,
    /// Net kind (`wire` by default; `reg` allowed on outputs).
    pub kind: NetKind,
    /// Optional vector range.
    pub range: Option<BitRange>,
    /// Port name.
    pub name: String,
    /// Source span of the declaration.
    pub span: Span,
}

impl Port {
    /// Bit width of the port (1 for scalars).
    pub fn width(&self) -> u32 {
        self.range.map(|r| r.width()).unwrap_or(1)
    }
}

/// A net/variable declaration: `wire [3:0] a, b;`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetDecl {
    /// Net kind.
    pub kind: NetKind,
    /// Optional vector range.
    pub range: Option<BitRange>,
    /// Declared names.
    pub names: Vec<String>,
    /// Source span.
    pub span: Span,
}

impl NetDecl {
    /// Bit width of the declared nets.
    pub fn width(&self) -> u32 {
        match self.kind {
            NetKind::Integer => 32,
            _ => self.range.map(|r| r.width()).unwrap_or(1),
        }
    }
}

/// A `parameter`/`localparam` declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamDecl {
    /// `localparam` if true.
    pub local: bool,
    /// Parameter name.
    pub name: String,
    /// Constant value expression.
    pub value: Expr,
    /// Source span.
    pub span: Span,
}

/// A module body item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Item {
    /// Net/variable declaration.
    Net(NetDecl),
    /// Parameter declaration.
    Param(ParamDecl),
    /// Continuous assignment `assign lhs = rhs;`.
    Assign(ContAssign),
    /// Procedural block.
    Always(AlwaysBlock),
    /// `initial` block (simulation-only).
    Initial(InitialBlock),
    /// `property ... endproperty`.
    Property(PropertyDecl),
    /// `label: assert property (...) else $error(...);`.
    Assert(AssertDirective),
}

impl Item {
    /// The source span of the item.
    pub fn span(&self) -> Span {
        match self {
            Item::Net(n) => n.span,
            Item::Param(p) => p.span,
            Item::Assign(a) => a.span,
            Item::Always(a) => a.span,
            Item::Initial(i) => i.span,
            Item::Property(p) => p.span,
            Item::Assert(a) => a.span,
        }
    }
}

/// Continuous assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContAssign {
    /// Assignment target.
    pub lhs: LValue,
    /// Driven expression.
    pub rhs: Expr,
    /// Source span.
    pub span: Span,
}

/// Kind of procedural block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlwaysKind {
    /// Plain `always`.
    Always,
    /// `always_ff`.
    Ff,
    /// `always_comb` (no sensitivity list).
    Comb,
}

/// One edge event in a sensitivity list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SensItem {
    /// `posedge sig`
    Posedge(String),
    /// `negedge sig`
    Negedge(String),
    /// level-sensitive `sig`
    Level(String),
}

impl SensItem {
    /// The signal the event refers to.
    pub fn signal(&self) -> &str {
        match self {
            SensItem::Posedge(s) | SensItem::Negedge(s) | SensItem::Level(s) => s,
        }
    }
}

/// Sensitivity of an always block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Sensitivity {
    /// `@*` / `@(*)` / `always_comb` — combinational.
    Star,
    /// Explicit event list `@(posedge clk or negedge rst_n)`.
    List(Vec<SensItem>),
}

impl Sensitivity {
    /// True if the block is combinational (star or all level-sensitive).
    pub fn is_combinational(&self) -> bool {
        match self {
            Sensitivity::Star => true,
            Sensitivity::List(items) => items.iter().all(|i| matches!(i, SensItem::Level(_))),
        }
    }
}

/// An `always` block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlwaysBlock {
    /// Which `always` keyword introduced the block.
    pub kind: AlwaysKind,
    /// Sensitivity list.
    pub sensitivity: Sensitivity,
    /// Block body.
    pub body: Stmt,
    /// Source span.
    pub span: Span,
}

/// An `initial` block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InitialBlock {
    /// Block body.
    pub body: Stmt,
    /// Source span.
    pub span: Span,
}

/// Assignment target: a whole signal, a bit, or a constant part-select.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LValue {
    /// Whole signal.
    Ident { name: String, span: Span },
    /// Single-bit select `sig[expr]`.
    Bit {
        name: String,
        index: Box<Expr>,
        span: Span,
    },
    /// Constant part select `sig[msb:lsb]`.
    Part {
        name: String,
        range: BitRange,
        span: Span,
    },
    /// Concatenation target `{a, b}`.
    Concat { parts: Vec<LValue>, span: Span },
}

impl LValue {
    /// The span of the target.
    pub fn span(&self) -> Span {
        match self {
            LValue::Ident { span, .. }
            | LValue::Bit { span, .. }
            | LValue::Part { span, .. }
            | LValue::Concat { span, .. } => *span,
        }
    }

    /// Names of all signals written by this target.
    pub fn target_names(&self) -> Vec<&str> {
        match self {
            LValue::Ident { name, .. } | LValue::Bit { name, .. } | LValue::Part { name, .. } => {
                vec![name.as_str()]
            }
            LValue::Concat { parts, .. } => parts.iter().flat_map(|p| p.target_names()).collect(),
        }
    }
}

/// A procedural statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `begin ... end`.
    Block { stmts: Vec<Stmt>, span: Span },
    /// `if (cond) then else else_`.
    If {
        cond: Expr,
        then_branch: Box<Stmt>,
        else_branch: Option<Box<Stmt>>,
        span: Span,
    },
    /// `case (expr) ... endcase` (also casez/casex).
    Case {
        kind: CaseKind,
        scrutinee: Expr,
        arms: Vec<CaseArm>,
        default: Option<Box<Stmt>>,
        span: Span,
    },
    /// Blocking (`=`) or nonblocking (`<=`) assignment.
    Assign {
        lhs: LValue,
        rhs: Expr,
        nonblocking: bool,
        span: Span,
    },
    /// Empty statement `;`.
    Empty { span: Span },
}

impl Stmt {
    /// The source span of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Block { span, .. }
            | Stmt::If { span, .. }
            | Stmt::Case { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::Empty { span } => *span,
        }
    }
}

/// Which case statement flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CaseKind {
    /// `case`
    Case,
    /// `casez`
    Casez,
    /// `casex`
    Casex,
}

/// One `labels: stmt` arm of a case statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseArm {
    /// Comma-separated match labels.
    pub labels: Vec<Expr>,
    /// Arm body.
    pub body: Stmt,
    /// Source span.
    pub span: Span,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnaryOp {
    /// `-`
    Neg,
    /// `!`
    LogicNot,
    /// `~`
    BitNot,
    /// `&` reduction
    RedAnd,
    /// `|` reduction
    RedOr,
    /// `^` reduction
    RedXor,
    /// `~&` reduction
    RedNand,
    /// `~|` reduction
    RedNor,
    /// `~^` reduction
    RedXnor,
    /// unary `+` (no-op)
    Plus,
}

impl UnaryOp {
    /// Source spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            UnaryOp::Neg => "-",
            UnaryOp::LogicNot => "!",
            UnaryOp::BitNot => "~",
            UnaryOp::RedAnd => "&",
            UnaryOp::RedOr => "|",
            UnaryOp::RedXor => "^",
            UnaryOp::RedNand => "~&",
            UnaryOp::RedNor => "~|",
            UnaryOp::RedXnor => "~^",
            UnaryOp::Plus => "+",
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Pow,
    BitAnd,
    BitOr,
    BitXor,
    BitXnor,
    LogicAnd,
    LogicOr,
    Eq,
    Ne,
    CaseEq,
    CaseNe,
    Lt,
    Le,
    Gt,
    Ge,
    Shl,
    Shr,
    AShl,
    AShr,
}

impl BinaryOp {
    /// Source spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Pow => "**",
            BinaryOp::BitAnd => "&",
            BinaryOp::BitOr => "|",
            BinaryOp::BitXor => "^",
            BinaryOp::BitXnor => "~^",
            BinaryOp::LogicAnd => "&&",
            BinaryOp::LogicOr => "||",
            BinaryOp::Eq => "==",
            BinaryOp::Ne => "!=",
            BinaryOp::CaseEq => "===",
            BinaryOp::CaseNe => "!==",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::Shl => "<<",
            BinaryOp::Shr => ">>",
            BinaryOp::AShl => "<<<",
            BinaryOp::AShr => ">>>",
        }
    }

    /// Binding power used by the Pratt parser; higher binds tighter.
    pub fn precedence(self) -> u8 {
        match self {
            BinaryOp::Pow => 12,
            BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => 11,
            BinaryOp::Add | BinaryOp::Sub => 10,
            BinaryOp::Shl | BinaryOp::Shr | BinaryOp::AShl | BinaryOp::AShr => 9,
            BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => 8,
            BinaryOp::Eq | BinaryOp::Ne | BinaryOp::CaseEq | BinaryOp::CaseNe => 7,
            BinaryOp::BitAnd => 6,
            BinaryOp::BitXor | BinaryOp::BitXnor => 5,
            BinaryOp::BitOr => 4,
            BinaryOp::LogicAnd => 3,
            BinaryOp::LogicOr => 2,
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal.
    Number {
        value: u64,
        width: Option<u32>,
        base: Option<char>,
        span: Span,
    },
    /// Signal or parameter reference.
    Ident { name: String, span: Span },
    /// Unary operation.
    Unary {
        op: UnaryOp,
        operand: Box<Expr>,
        span: Span,
    },
    /// Binary operation.
    Binary {
        op: BinaryOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        span: Span,
    },
    /// Conditional `c ? t : e`.
    Ternary {
        cond: Box<Expr>,
        then_expr: Box<Expr>,
        else_expr: Box<Expr>,
        span: Span,
    },
    /// Concatenation `{a, b, c}`.
    Concat { parts: Vec<Expr>, span: Span },
    /// Replication `{n{expr}}`.
    Repeat {
        count: Box<Expr>,
        value: Box<Expr>,
        span: Span,
    },
    /// Single-bit select `sig[i]`.
    Bit {
        name: String,
        index: Box<Expr>,
        span: Span,
    },
    /// Constant part select `sig[m:l]`.
    Part {
        name: String,
        range: BitRange,
        span: Span,
    },
    /// SVA/system function call `$past(e, n)` etc.
    SysCall {
        name: String,
        args: Vec<Expr>,
        span: Span,
    },
}

impl Expr {
    /// The source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Number { span, .. }
            | Expr::Ident { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Ternary { span, .. }
            | Expr::Concat { span, .. }
            | Expr::Repeat { span, .. }
            | Expr::Bit { span, .. }
            | Expr::Part { span, .. }
            | Expr::SysCall { span, .. } => *span,
        }
    }

    /// Collects the names of all identifiers referenced by the expression.
    pub fn collect_idents(&self, out: &mut Vec<String>) {
        match self {
            Expr::Number { .. } => {}
            Expr::Ident { name, .. } => out.push(name.clone()),
            Expr::Unary { operand, .. } => operand.collect_idents(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_idents(out);
                rhs.collect_idents(out);
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
                ..
            } => {
                cond.collect_idents(out);
                then_expr.collect_idents(out);
                else_expr.collect_idents(out);
            }
            Expr::Concat { parts, .. } => {
                for p in parts {
                    p.collect_idents(out);
                }
            }
            Expr::Repeat { count, value, .. } => {
                count.collect_idents(out);
                value.collect_idents(out);
            }
            Expr::Bit { name, index, .. } => {
                out.push(name.clone());
                index.collect_idents(out);
            }
            Expr::Part { name, .. } => out.push(name.clone()),
            Expr::SysCall { args, .. } => {
                for a in args {
                    a.collect_idents(out);
                }
            }
        }
    }

    /// Convenience wrapper returning a fresh vector of referenced names.
    pub fn idents(&self) -> Vec<String> {
        let mut v = Vec::new();
        self.collect_idents(&mut v);
        v
    }
}

// ---------------------------------------------------------------------------
// SVA nodes
// ---------------------------------------------------------------------------

/// Clocking event of a property: `@(posedge clk)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClockSpec {
    /// True for `posedge`, false for `negedge`.
    pub posedge: bool,
    /// Clock signal name.
    pub signal: String,
}

/// A sequence expression (the antecedent/consequent of an implication).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SeqExpr {
    /// A boolean expression sampled at one clock tick.
    Expr(Expr),
    /// `lhs ##n rhs` — rhs begins `n` ticks after lhs completes.
    Delay {
        lhs: Box<SeqExpr>,
        cycles: u32,
        rhs: Box<SeqExpr>,
        span: Span,
    },
}

impl SeqExpr {
    /// The source span of the sequence.
    pub fn span(&self) -> Span {
        match self {
            SeqExpr::Expr(e) => e.span(),
            SeqExpr::Delay { span, .. } => *span,
        }
    }

    /// Number of clock ticks this sequence spans beyond its start tick.
    pub fn duration(&self) -> u32 {
        match self {
            SeqExpr::Expr(_) => 0,
            SeqExpr::Delay {
                lhs, cycles, rhs, ..
            } => lhs.duration() + cycles + rhs.duration(),
        }
    }

    /// All identifiers referenced anywhere in the sequence.
    pub fn idents(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_idents(&mut out);
        out
    }

    fn collect_idents(&self, out: &mut Vec<String>) {
        match self {
            SeqExpr::Expr(e) => e.collect_idents(out),
            SeqExpr::Delay { lhs, rhs, .. } => {
                lhs.collect_idents(out);
                rhs.collect_idents(out);
            }
        }
    }
}

/// A property body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PropExpr {
    /// A plain sequence that must hold whenever evaluated.
    Seq(SeqExpr),
    /// `antecedent |-> consequent` (overlapping) or `|=>` (non-overlapping).
    Implication {
        antecedent: SeqExpr,
        /// True for `|->`, false for `|=>`.
        overlapping: bool,
        consequent: SeqExpr,
        span: Span,
    },
}

impl PropExpr {
    /// The source span of the property body.
    pub fn span(&self) -> Span {
        match self {
            PropExpr::Seq(s) => s.span(),
            PropExpr::Implication { span, .. } => *span,
        }
    }

    /// All identifiers referenced by the property body.
    pub fn idents(&self) -> Vec<String> {
        match self {
            PropExpr::Seq(s) => s.idents(),
            PropExpr::Implication {
                antecedent,
                consequent,
                ..
            } => {
                let mut v = antecedent.idents();
                v.extend(consequent.idents());
                v
            }
        }
    }
}

/// A named `property ... endproperty` declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PropertyDecl {
    /// Property name.
    pub name: String,
    /// Clocking event.
    pub clock: ClockSpec,
    /// Optional `disable iff (expr)` guard.
    pub disable: Option<Expr>,
    /// Property body.
    pub body: PropExpr,
    /// Source span.
    pub span: Span,
}

/// What an `assert property` directive checks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AssertTarget {
    /// Reference to a named property declaration.
    Named(String),
    /// An inline property with explicit clocking.
    Inline(Box<PropertyDecl>),
}

/// An assertion directive: `label: assert property (p) else $error("msg");`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssertDirective {
    /// Optional statement label (used in failure logs).
    pub label: Option<String>,
    /// Checked property.
    pub target: AssertTarget,
    /// Optional `$error` message from the else action.
    pub message: Option<String>,
    /// Source span.
    pub span: Span,
}

impl AssertDirective {
    /// The name used in failure logs: the label, the named property, or
    /// `"anonymous"`.
    pub fn log_name(&self) -> &str {
        if let Some(l) = &self.label {
            return l;
        }
        match &self.target {
            AssertTarget::Named(n) => n,
            AssertTarget::Inline(p) => {
                if p.name.is_empty() {
                    "anonymous"
                } else {
                    &p.name
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ident(name: &str) -> Expr {
        Expr::Ident {
            name: name.into(),
            span: Span::default(),
        }
    }

    #[test]
    fn bitrange_width() {
        assert_eq!(BitRange { msb: 7, lsb: 0 }.width(), 8);
        assert_eq!(BitRange { msb: 3, lsb: 3 }.width(), 1);
    }

    #[test]
    fn expr_idents_are_collected() {
        let e = Expr::Binary {
            op: BinaryOp::Add,
            lhs: Box::new(ident("a")),
            rhs: Box::new(Expr::Ternary {
                cond: Box::new(ident("sel")),
                then_expr: Box::new(ident("b")),
                else_expr: Box::new(ident("c")),
                span: Span::default(),
            }),
            span: Span::default(),
        };
        assert_eq!(e.idents(), vec!["a", "sel", "b", "c"]);
    }

    #[test]
    fn seq_duration_accumulates_delays() {
        let s = SeqExpr::Delay {
            lhs: Box::new(SeqExpr::Expr(ident("a"))),
            cycles: 2,
            rhs: Box::new(SeqExpr::Delay {
                lhs: Box::new(SeqExpr::Expr(ident("b"))),
                cycles: 3,
                rhs: Box::new(SeqExpr::Expr(ident("c"))),
                span: Span::default(),
            }),
            span: Span::default(),
        };
        assert_eq!(s.duration(), 5);
        assert_eq!(s.idents(), vec!["a", "b", "c"]);
    }

    #[test]
    fn precedence_orders_operators() {
        assert!(BinaryOp::Mul.precedence() > BinaryOp::Add.precedence());
        assert!(BinaryOp::Add.precedence() > BinaryOp::Eq.precedence());
        assert!(BinaryOp::BitAnd.precedence() > BinaryOp::BitOr.precedence());
        assert!(BinaryOp::LogicAnd.precedence() > BinaryOp::LogicOr.precedence());
    }

    #[test]
    fn assert_log_name_prefers_label() {
        let d = AssertDirective {
            label: Some("check_out".into()),
            target: AssertTarget::Named("p_out".into()),
            message: None,
            span: Span::default(),
        };
        assert_eq!(d.log_name(), "check_out");
        let d2 = AssertDirective {
            label: None,
            target: AssertTarget::Named("p_out".into()),
            message: None,
            span: Span::default(),
        };
        assert_eq!(d2.log_name(), "p_out");
    }

    #[test]
    fn lvalue_targets() {
        let lv = LValue::Concat {
            parts: vec![
                LValue::Ident {
                    name: "hi".into(),
                    span: Span::default(),
                },
                LValue::Ident {
                    name: "lo".into(),
                    span: Span::default(),
                },
            ],
            span: Span::default(),
        };
        assert_eq!(lv.target_names(), vec!["hi", "lo"]);
    }
}
