//! Signal dependency graph and cone-of-influence analysis.
//!
//! The fault localiser in `assertsolver-core` ranks source lines by their
//! structural distance from the signals a failing assertion observes. That
//! ranking is computed here: a directed graph with an edge `a → b` whenever
//! signal `a` appears in an expression that (transitively) drives `b`.

use crate::ast::*;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Signal-level dependency graph of one module.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DepGraph {
    /// `deps[sig]` = set of signals that `sig`'s value depends on.
    deps: BTreeMap<String, BTreeSet<String>>,
    /// `rdeps[sig]` = set of signals whose value depends on `sig`.
    rdeps: BTreeMap<String, BTreeSet<String>>,
}

impl DepGraph {
    /// Builds the dependency graph of a module.
    ///
    /// Control dependencies count: in `if (c) y <= a;`, `y` depends on both
    /// `c` and `a`. Case scrutinees and sensitivity-list signals likewise
    /// flow into every target assigned under them.
    pub fn build(module: &Module) -> Self {
        let mut g = DepGraph::default();
        for item in &module.items {
            match item {
                Item::Assign(a) => {
                    let sources = a.rhs.idents();
                    for t in a.lhs.target_names() {
                        g.add_deps(t, &sources);
                        // Bit/part-select indices are also dependencies.
                        g.add_deps(t, &lvalue_index_idents(&a.lhs));
                    }
                }
                Item::Always(al) => {
                    let mut ambient: Vec<String> = Vec::new();
                    if let Sensitivity::List(list) = &al.sensitivity {
                        // Edge signals (clock/reset) gate every write.
                        for s in list {
                            if !matches!(s, SensItem::Level(_)) {
                                ambient.push(s.signal().to_string());
                            }
                        }
                    }
                    g.walk_stmt(&al.body, &ambient);
                }
                Item::Initial(i) => g.walk_stmt(&i.body, &[]),
                _ => {}
            }
        }
        g
    }

    fn add_deps(&mut self, target: &str, sources: &[String]) {
        let entry = self.deps.entry(target.to_string()).or_default();
        for s in sources {
            entry.insert(s.clone());
            self.rdeps
                .entry(s.clone())
                .or_default()
                .insert(target.to_string());
        }
    }

    fn walk_stmt(&mut self, s: &Stmt, controls: &[String]) {
        match s {
            Stmt::Block { stmts, .. } => {
                for st in stmts {
                    self.walk_stmt(st, controls);
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let mut ctl = controls.to_vec();
                ctl.extend(cond.idents());
                self.walk_stmt(then_branch, &ctl);
                if let Some(e) = else_branch {
                    self.walk_stmt(e, &ctl);
                }
            }
            Stmt::Case {
                scrutinee,
                arms,
                default,
                ..
            } => {
                let mut ctl = controls.to_vec();
                ctl.extend(scrutinee.idents());
                for arm in arms {
                    let mut actl = ctl.clone();
                    for l in &arm.labels {
                        actl.extend(l.idents());
                    }
                    self.walk_stmt(&arm.body, &actl);
                }
                if let Some(d) = default {
                    self.walk_stmt(d, &ctl);
                }
            }
            Stmt::Assign { lhs, rhs, .. } => {
                let mut sources = rhs.idents();
                sources.extend_from_slice(controls);
                sources.extend(lvalue_index_idents(lhs));
                for t in lhs.target_names() {
                    self.add_deps(t, &sources);
                }
            }
            Stmt::Empty { .. } => {}
        }
    }

    /// Direct dependencies of `signal` (empty set if unknown).
    pub fn deps_of(&self, signal: &str) -> BTreeSet<String> {
        self.deps.get(signal).cloned().unwrap_or_default()
    }

    /// Signals that directly depend on `signal`.
    pub fn dependents_of(&self, signal: &str) -> BTreeSet<String> {
        self.rdeps.get(signal).cloned().unwrap_or_default()
    }

    /// Transitive closure of dependencies: the *cone of influence* of the
    /// given seed signals (the seeds themselves are included).
    pub fn cone_of_influence<'a, I>(&self, seeds: I) -> BTreeSet<String>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut cone: BTreeSet<String> = BTreeSet::new();
        let mut queue: VecDeque<String> = seeds.into_iter().map(str::to_string).collect();
        while let Some(sig) = queue.pop_front() {
            if !cone.insert(sig.clone()) {
                continue;
            }
            for d in self.deps_of(&sig) {
                if !cone.contains(&d) {
                    queue.push_back(d);
                }
            }
        }
        cone
    }

    /// Breadth-first distance (in dependency edges) from any seed to each
    /// signal in the cone. Seeds map to 0.
    pub fn distances<'a, I>(&self, seeds: I) -> BTreeMap<String, u32>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut dist: BTreeMap<String, u32> = BTreeMap::new();
        let mut queue: VecDeque<(String, u32)> =
            seeds.into_iter().map(|s| (s.to_string(), 0)).collect();
        while let Some((sig, d)) = queue.pop_front() {
            if dist.contains_key(&sig) {
                continue;
            }
            dist.insert(sig.clone(), d);
            for dep in self.deps_of(&sig) {
                if !dist.contains_key(&dep) {
                    queue.push_back((dep, d + 1));
                }
            }
        }
        dist
    }

    /// All signals known to the graph (drivers or dependencies).
    pub fn signals(&self) -> BTreeSet<String> {
        let mut all: BTreeSet<String> = self.deps.keys().cloned().collect();
        all.extend(self.rdeps.keys().cloned());
        all
    }
}

fn lvalue_index_idents(lv: &LValue) -> Vec<String> {
    match lv {
        LValue::Bit { index, .. } => index.idents(),
        LValue::Concat { parts, .. } => parts.iter().flat_map(lvalue_index_idents).collect(),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn graph(src: &str) -> DepGraph {
        let unit = parse(src).expect("parse ok");
        DepGraph::build(&unit.modules[0])
    }

    const PIPE: &str = "module p(input clk, input [3:0] a, input [3:0] b, input sel,\n\
        output reg [3:0] y);\n\
        reg [3:0] t;\n\
        always @(posedge clk) begin\n\
          if (sel) t <= a; else t <= b;\n\
          y <= t;\n\
        end\nendmodule";

    #[test]
    fn control_deps_are_tracked() {
        let g = graph(PIPE);
        let t_deps = g.deps_of("t");
        assert!(t_deps.contains("a"));
        assert!(t_deps.contains("b"));
        assert!(t_deps.contains("sel"), "control dependency missing");
        assert!(t_deps.contains("clk"), "clock dependency missing");
    }

    #[test]
    fn cone_of_influence_is_transitive() {
        let g = graph(PIPE);
        let cone = g.cone_of_influence(["y"]);
        for s in ["y", "t", "a", "b", "sel", "clk"] {
            assert!(cone.contains(s), "missing {s}");
        }
    }

    #[test]
    fn distances_increase_with_depth() {
        let g = graph(PIPE);
        let d = g.distances(["y"]);
        assert_eq!(d["y"], 0);
        assert_eq!(d["t"], 1);
        assert_eq!(d["a"], 2);
    }

    #[test]
    fn unrelated_signals_stay_outside_cone() {
        let g = graph(
            "module m(input a, input b, output x, output z);\n\
             assign x = a;\n assign z = b;\nendmodule",
        );
        let cone = g.cone_of_influence(["x"]);
        assert!(cone.contains("a"));
        assert!(!cone.contains("b"));
        assert!(!cone.contains("z"));
    }

    #[test]
    fn dependents_is_reverse_of_deps() {
        let g = graph(PIPE);
        assert!(g.dependents_of("t").contains("y"));
        assert!(g.dependents_of("a").contains("t"));
    }

    #[test]
    fn case_scrutinee_is_dependency() {
        let g = graph(
            "module m(input [1:0] s, input [3:0] a, output reg [3:0] y);\n\
             always @(*) begin case (s) 2'd0: y = a; default: y = 4'd0; endcase end\nendmodule",
        );
        assert!(g.deps_of("y").contains("s"));
    }
}
