//! Semantic analysis ("elaboration"): the compile step of the pipeline.
//!
//! This is the stand-in for Icarus Verilog in the paper's Stage-1 syntax
//! check and the Stage-2 validation loops: it either accepts a module and
//! produces an elaborated [`Design`] the simulator can execute, or rejects
//! it with diagnostics that the datagen pipeline records as "compiler
//! analysis" text.

use crate::ast::*;
use crate::error::{CompileError, Diagnostic, Result, Severity};
use crate::source::Span;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// How a signal is driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DriverKind {
    /// Module input port — driven by the environment.
    Input,
    /// Continuous `assign`.
    Continuous,
    /// Combinational always block (`@*` or all-level sensitivity).
    Combinational,
    /// Clocked always block.
    Sequential,
    /// Never driven (floating).
    None,
}

/// Elaborated information about one signal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignalInfo {
    /// Signal name.
    pub name: String,
    /// Bit width.
    pub width: u32,
    /// Declared net kind.
    pub kind: NetKind,
    /// How it is driven.
    pub driver: DriverKind,
    /// True for ports.
    pub is_port: bool,
    /// Port direction if a port.
    pub dir: Option<PortDir>,
}

/// An elaborated design: the validated module plus its symbol table.
#[derive(Debug, Clone, PartialEq)]
pub struct Design {
    /// The (validated) module AST.
    pub module: Module,
    /// Signals by name, in deterministic order.
    pub signals: BTreeMap<String, SignalInfo>,
    /// Parameter values resolved to constants.
    pub params: BTreeMap<String, u64>,
    /// Warnings that did not block elaboration.
    pub warnings: Vec<Diagnostic>,
}

impl Design {
    /// Width of a signal, defaulting to 1 for parameters used as values.
    pub fn width_of(&self, name: &str) -> Option<u32> {
        self.signals.get(name).map(|s| s.width)
    }

    /// Names of all input ports, in port order.
    pub fn inputs(&self) -> Vec<&SignalInfo> {
        self.module
            .ports
            .iter()
            .filter(|p| p.dir == PortDir::Input)
            .filter_map(|p| self.signals.get(&p.name))
            .collect()
    }

    /// A copy of this design keeping only the `index`-th assertion
    /// directive (in [`Module::assertions`] order); every other item —
    /// logic, declarations, named properties — is untouched, so the
    /// compiled form and signal table are identical and the per-assertion
    /// design shares the whole design's compile-cache entry layout.
    ///
    /// This is the splitting primitive of incremental re-verification:
    /// `asv-eval` verifies one job per assertion, so a candidate patch
    /// re-runs only the assertions whose cone the patch can reach (the
    /// others are answered from cone-keyed store entries).
    ///
    /// `None` when `index` is out of range.
    pub fn with_single_assertion(&self, index: usize) -> Option<Design> {
        if index >= self.module.assertions().count() {
            return None;
        }
        let mut design = self.clone();
        let mut seen = 0usize;
        design.module.items.retain(|item| match item {
            Item::Assert(_) => {
                let keep = seen == index;
                seen += 1;
                keep
            }
            _ => true,
        });
        Some(design)
    }

    /// Names of all output ports, in port order.
    pub fn outputs(&self) -> Vec<&SignalInfo> {
        self.module
            .ports
            .iter()
            .filter(|p| p.dir == PortDir::Output)
            .filter_map(|p| self.signals.get(&p.name))
            .collect()
    }

    /// Heuristically identifies the clock signal: a 1-bit input named
    /// `clk`/`clock`, else the signal used in `posedge` sensitivity.
    pub fn clock(&self) -> Option<&str> {
        for cand in ["clk", "clock", "clk_i"] {
            if self.signals.contains_key(cand) {
                return Some(cand);
            }
        }
        for item in &self.module.items {
            if let Item::Always(a) = item {
                if let Sensitivity::List(list) = &a.sensitivity {
                    for s in list {
                        if let SensItem::Posedge(sig) = s {
                            return self.signals.get(sig).map(|s| s.name.as_str());
                        }
                    }
                }
            }
        }
        None
    }

    /// Heuristically identifies an active-low reset (`rst_n`-style input
    /// used under `negedge` or in `!rst` guards).
    pub fn reset(&self) -> Option<(&str, bool)> {
        for (name, active_low) in [
            ("rst_n", true),
            ("rstn", true),
            ("reset_n", true),
            ("rst", false),
            ("reset", false),
        ] {
            if self.signals.contains_key(name) {
                return Some((self.signals.get(name).map(|s| s.name.as_str())?, active_low));
            }
        }
        None
    }
}

/// Elaborates a single-module source unit.
///
/// # Errors
///
/// Rejects designs with undeclared identifiers, conflicting drivers,
/// `assign` to a `reg`, procedural writes to a `wire`, width-zero signals,
/// unresolvable parameters, or assertions referencing unknown signals.
pub fn elaborate(unit: &SourceUnit) -> Result<Design> {
    let module = unit
        .modules
        .first()
        .ok_or_else(|| CompileError::single("empty source unit", Span::point(0)))?
        .clone();
    Elaborator::new(module).run()
}

/// Convenience: parse then elaborate.
///
/// # Errors
///
/// Propagates both syntax and semantic diagnostics.
pub fn compile(src: &str) -> Result<Design> {
    elaborate(&crate::parser::parse(src)?)
}

struct Elaborator {
    module: Module,
    signals: BTreeMap<String, SignalInfo>,
    params: BTreeMap<String, u64>,
    errors: Vec<Diagnostic>,
    warnings: Vec<Diagnostic>,
}

impl Elaborator {
    fn new(module: Module) -> Self {
        Elaborator {
            module,
            signals: BTreeMap::new(),
            params: BTreeMap::new(),
            errors: Vec::new(),
            warnings: Vec::new(),
        }
    }

    fn run(mut self) -> Result<Design> {
        self.collect_params();
        self.collect_signals();
        self.check_drivers();
        self.check_references();
        self.check_assertions();
        if !self.errors.is_empty() {
            let mut diagnostics = self.errors;
            diagnostics.extend(self.warnings);
            return Err(CompileError { diagnostics });
        }
        Ok(Design {
            module: self.module,
            signals: self.signals,
            params: self.params,
            warnings: self.warnings,
        })
    }

    fn err(&mut self, msg: impl Into<String>, span: Span) {
        self.errors.push(Diagnostic::error(msg, span));
    }

    fn warn(&mut self, msg: impl Into<String>, span: Span) {
        self.warnings.push(Diagnostic {
            severity: Severity::Warning,
            message: msg.into(),
            span,
        });
    }

    fn collect_params(&mut self) {
        let items = self.module.items.clone();
        for item in &items {
            if let Item::Param(p) = item {
                match const_eval(&p.value, &self.params) {
                    Some(v) => {
                        if self.params.insert(p.name.clone(), v).is_some() {
                            self.err(format!("duplicate parameter `{}`", p.name), p.span);
                        }
                    }
                    None => self.err(
                        format!("parameter `{}` is not a constant expression", p.name),
                        p.span,
                    ),
                }
            }
        }
    }

    fn collect_signals(&mut self) {
        let ports = self.module.ports.clone();
        for p in &ports {
            let width = p.width();
            if width == 0 || width > 64 {
                self.err(
                    format!("port `{}` width {width} outside supported 1..=64", p.name),
                    p.span,
                );
            }
            let dup = self
                .signals
                .insert(
                    p.name.clone(),
                    SignalInfo {
                        name: p.name.clone(),
                        width: width.clamp(1, 64),
                        kind: p.kind,
                        driver: if p.dir == PortDir::Input {
                            DriverKind::Input
                        } else {
                            DriverKind::None
                        },
                        is_port: true,
                        dir: Some(p.dir),
                    },
                )
                .is_some();
            if dup {
                self.err(format!("duplicate port `{}`", p.name), p.span);
            }
        }
        let items = self.module.items.clone();
        for item in &items {
            if let Item::Net(n) = item {
                let width = n.width();
                if width == 0 || width > 64 {
                    self.err(
                        format!("net width {width} outside supported 1..=64"),
                        n.span,
                    );
                }
                for name in &n.names {
                    if let Some(existing) = self.signals.get_mut(name) {
                        // Redeclaration of a port with a body net decl:
                        // merge kind/width (common `output reg` idiom).
                        if existing.is_port {
                            existing.kind = n.kind;
                            if n.range.is_some() {
                                existing.width = width.clamp(1, 64);
                            }
                        } else {
                            self.err(format!("duplicate declaration of `{name}`"), n.span);
                        }
                    } else {
                        self.signals.insert(
                            name.clone(),
                            SignalInfo {
                                name: name.clone(),
                                width: width.clamp(1, 64),
                                kind: n.kind,
                                driver: DriverKind::None,
                                is_port: false,
                                dir: None,
                            },
                        );
                    }
                }
            }
        }
    }

    fn check_drivers(&mut self) {
        let items = self.module.items.clone();
        for item in &items {
            match item {
                Item::Assign(a) => {
                    for name in a.lhs.target_names() {
                        self.record_driver(name, DriverKind::Continuous, a.span);
                    }
                }
                Item::Always(al) => {
                    let kind = if al.sensitivity.is_combinational() {
                        DriverKind::Combinational
                    } else {
                        DriverKind::Sequential
                    };
                    let mut targets = Vec::new();
                    collect_stmt_targets(&al.body, &mut targets);
                    for (name, span) in targets {
                        self.record_driver(&name, kind, span);
                    }
                    self.check_sensitivity(al);
                }
                Item::Initial(_) => {}
                _ => {}
            }
        }
        // Floating non-port signals are warnings (dead nets are common in
        // scraped corpora and the paper keeps such code for pretraining).
        let floating: Vec<String> = self
            .signals
            .values()
            .filter(|s| s.driver == DriverKind::None && !matches!(s.dir, Some(PortDir::Input)))
            .map(|s| s.name.clone())
            .collect();
        for name in floating {
            self.warn(format!("signal `{name}` is never driven"), Span::point(0));
        }
    }

    fn record_driver(&mut self, name: &str, kind: DriverKind, span: Span) {
        let Some(sig) = self.signals.get(name).cloned() else {
            self.err(format!("assignment to undeclared signal `{name}`"), span);
            return;
        };
        if sig.dir == Some(PortDir::Input) {
            self.err(format!("cannot drive input port `{name}`"), span);
            return;
        }
        match (sig.driver, kind) {
            (DriverKind::None, k) => {
                if let Some(s) = self.signals.get_mut(name) {
                    s.driver = k;
                }
            }
            (a, b) if a == b => {}
            (a, b) => self.err(
                format!("signal `{name}` has conflicting drivers ({a:?} and {b:?})"),
                span,
            ),
        }
        // Net-kind compatibility.
        match (sig.kind, kind) {
            (NetKind::Wire, DriverKind::Combinational | DriverKind::Sequential) => self.err(
                format!("procedural assignment to wire `{name}` (declare it reg)"),
                span,
            ),
            (NetKind::Reg | NetKind::Integer, DriverKind::Continuous) => self.err(
                format!("continuous assignment to reg `{name}` (use wire or always)"),
                span,
            ),
            _ => {}
        }
    }

    fn check_sensitivity(&mut self, al: &AlwaysBlock) {
        if let Sensitivity::List(list) = &al.sensitivity {
            for item in list {
                let sig = item.signal().to_string();
                if !self.signals.contains_key(&sig) {
                    self.err(
                        format!("sensitivity list references undeclared signal `{sig}`"),
                        al.span,
                    );
                }
            }
            let has_edge = list
                .iter()
                .any(|i| matches!(i, SensItem::Posedge(_) | SensItem::Negedge(_)));
            let has_level = list.iter().any(|i| matches!(i, SensItem::Level(_)));
            if has_edge && has_level {
                self.err(
                    "mixed edge and level sensitivity is not supported".to_string(),
                    al.span,
                );
            }
        }
    }

    fn check_references(&mut self) {
        let items = self.module.items.clone();
        for item in &items {
            match item {
                Item::Assign(a) => self.check_expr(&a.rhs),
                Item::Always(al) => self.check_stmt(&al.body),
                Item::Initial(i) => self.check_stmt(&i.body),
                _ => {}
            }
        }
    }

    fn check_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Block { stmts, .. } => {
                for st in stmts {
                    self.check_stmt(st);
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                self.check_expr(cond);
                self.check_stmt(then_branch);
                if let Some(e) = else_branch {
                    self.check_stmt(e);
                }
            }
            Stmt::Case {
                scrutinee,
                arms,
                default,
                ..
            } => {
                self.check_expr(scrutinee);
                for arm in arms {
                    for l in &arm.labels {
                        self.check_expr(l);
                    }
                    self.check_stmt(&arm.body);
                }
                if let Some(d) = default {
                    self.check_stmt(d);
                }
            }
            Stmt::Assign { rhs, .. } => self.check_expr(rhs),
            Stmt::Empty { .. } => {}
        }
    }

    fn check_expr(&mut self, e: &Expr) {
        for name in e.idents() {
            if !self.signals.contains_key(&name) && !self.params.contains_key(&name) {
                self.err(format!("undeclared identifier `{name}`"), e.span());
            }
        }
        if let Expr::SysCall { name, span, .. } = e {
            if !matches!(
                name.as_str(),
                "past"
                    | "rose"
                    | "fell"
                    | "stable"
                    | "countones"
                    | "onehot"
                    | "onehot0"
                    | "signed"
                    | "unsigned"
            ) {
                self.err(format!("unsupported system function `${name}`"), *span);
            }
        }
        // Recurse for nested syscalls / structure not covered by idents().
        match e {
            Expr::Unary { operand, .. } => self.check_expr(operand),
            Expr::Binary { lhs, rhs, .. } => {
                self.check_expr(lhs);
                self.check_expr(rhs);
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
                ..
            } => {
                self.check_expr(cond);
                self.check_expr(then_expr);
                self.check_expr(else_expr);
            }
            Expr::Concat { parts, .. } => parts.iter().for_each(|p| self.check_expr(p)),
            Expr::Repeat { count, value, .. } => {
                self.check_expr(count);
                self.check_expr(value);
            }
            Expr::Bit { index, .. } => self.check_expr(index),
            Expr::SysCall { args, .. } => args.iter().for_each(|a| self.check_expr(a)),
            _ => {}
        }
    }

    fn check_assertions(&mut self) {
        let module = self.module.clone();
        let prop_names: BTreeSet<&str> = module.properties().map(|p| p.name.as_str()).collect();
        for a in module.assertions() {
            match &a.target {
                AssertTarget::Named(n) => {
                    if !prop_names.contains(n.as_str()) {
                        self.err(
                            format!("assertion references unknown property `{n}`"),
                            a.span,
                        );
                    }
                }
                AssertTarget::Inline(p) => self.check_property(p),
            }
        }
        for p in module.properties() {
            self.check_property(p);
        }
    }

    fn check_property(&mut self, p: &PropertyDecl) {
        if !self.signals.contains_key(&p.clock.signal) {
            self.err(
                format!("property clock `{}` is not declared", p.clock.signal),
                p.span,
            );
        }
        if let Some(d) = &p.disable {
            self.check_expr(d);
        }
        let idents = p.body.idents();
        for name in idents {
            if !self.signals.contains_key(&name) && !self.params.contains_key(&name) {
                self.err(
                    format!("property references undeclared signal `{name}`"),
                    p.span,
                );
            }
        }
    }
}

fn collect_stmt_targets(s: &Stmt, out: &mut Vec<(String, Span)>) {
    match s {
        Stmt::Block { stmts, .. } => stmts.iter().for_each(|st| collect_stmt_targets(st, out)),
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            collect_stmt_targets(then_branch, out);
            if let Some(e) = else_branch {
                collect_stmt_targets(e, out);
            }
        }
        Stmt::Case { arms, default, .. } => {
            for arm in arms {
                collect_stmt_targets(&arm.body, out);
            }
            if let Some(d) = default {
                collect_stmt_targets(d, out);
            }
        }
        Stmt::Assign { lhs, span, .. } => {
            for n in lhs.target_names() {
                out.push((n.to_string(), *span));
            }
        }
        Stmt::Empty { .. } => {}
    }
}

/// Evaluates a constant expression over parameter bindings.
///
/// Returns `None` for non-constant expressions.
pub fn const_eval(e: &Expr, params: &BTreeMap<String, u64>) -> Option<u64> {
    Some(match e {
        Expr::Number { value, .. } => *value,
        Expr::Ident { name, .. } => *params.get(name)?,
        Expr::Unary { op, operand, .. } => {
            let v = const_eval(operand, params)?;
            match op {
                UnaryOp::Neg => v.wrapping_neg(),
                UnaryOp::LogicNot => u64::from(v == 0),
                UnaryOp::BitNot => !v,
                UnaryOp::Plus => v,
                _ => return None,
            }
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let a = const_eval(lhs, params)?;
            let b = const_eval(rhs, params)?;
            match op {
                BinaryOp::Add => a.wrapping_add(b),
                BinaryOp::Sub => a.wrapping_sub(b),
                BinaryOp::Mul => a.wrapping_mul(b),
                BinaryOp::Div => a.checked_div(b)?,
                BinaryOp::Mod => a.checked_rem(b)?,
                BinaryOp::Pow => a.checked_pow(u32::try_from(b).ok()?)?,
                BinaryOp::Shl | BinaryOp::AShl => {
                    a.checked_shl(u32::try_from(b).ok()?).unwrap_or(0)
                }
                BinaryOp::Shr | BinaryOp::AShr => {
                    a.checked_shr(u32::try_from(b).ok()?).unwrap_or(0)
                }
                BinaryOp::BitAnd => a & b,
                BinaryOp::BitOr => a | b,
                BinaryOp::BitXor => a ^ b,
                BinaryOp::BitXnor => !(a ^ b),
                BinaryOp::LogicAnd => u64::from(a != 0 && b != 0),
                BinaryOp::LogicOr => u64::from(a != 0 || b != 0),
                BinaryOp::Eq | BinaryOp::CaseEq => u64::from(a == b),
                BinaryOp::Ne | BinaryOp::CaseNe => u64::from(a != b),
                BinaryOp::Lt => u64::from(a < b),
                BinaryOp::Le => u64::from(a <= b),
                BinaryOp::Gt => u64::from(a > b),
                BinaryOp::Ge => u64::from(a >= b),
            }
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
            ..
        } => {
            if const_eval(cond, params)? != 0 {
                const_eval(then_expr, params)?
            } else {
                const_eval(else_expr, params)?
            }
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compile_ok(src: &str) -> Design {
        compile(src).unwrap_or_else(|e| panic!("expected compile ok: {e}"))
    }

    #[test]
    fn elaborates_counter() {
        let d = compile_ok(
            "module c(input clk, input rst_n, output reg [3:0] q);\n\
             always @(posedge clk or negedge rst_n) begin\n\
               if (!rst_n) q <= 4'd0; else q <= q + 4'd1;\n\
             end\nendmodule",
        );
        assert_eq!(d.width_of("q"), Some(4));
        assert_eq!(d.clock(), Some("clk"));
        assert_eq!(d.reset(), Some(("rst_n", true)));
        assert_eq!(d.signals["q"].driver, DriverKind::Sequential);
    }

    #[test]
    fn rejects_undeclared_identifier() {
        let e = compile("module m(input a, output y); assign y = a & ghost; endmodule")
            .expect_err("should fail");
        assert!(e.primary().message.contains("ghost"));
    }

    #[test]
    fn rejects_procedural_wire_write() {
        let e = compile(
            "module m(input clk, input a, output y);\n\
             wire t;\n always @(posedge clk) t <= a;\n assign y = t; endmodule",
        )
        .expect_err("should fail");
        assert!(e.primary().message.contains("wire"), "{e}");
    }

    #[test]
    fn rejects_assign_to_reg() {
        let e =
            compile("module m(input a, output y); reg t; assign t = a; assign y = t; endmodule")
                .expect_err("should fail");
        assert!(e.primary().message.contains("reg"), "{e}");
    }

    #[test]
    fn rejects_conflicting_drivers() {
        let e = compile(
            "module m(input a, input b, output y);\n\
             assign y = a;\n assign y = b;\nendmodule",
        );
        // Two continuous drivers on the same net are the same DriverKind;
        // accept (wired-or is legal verilog) — but reg driven both ways must fail.
        let e2 = compile(
            "module m(input clk, input a, output reg y);\n\
             always @(posedge clk) y <= a;\n always @(*) y = ~a;\nendmodule",
        )
        .expect_err("mixed drivers should fail");
        assert!(e2.primary().message.contains("conflicting"), "{e2}");
        drop(e);
    }

    #[test]
    fn rejects_driving_input() {
        let e = compile("module m(input a, output y); assign a = 1'b0; assign y = a; endmodule")
            .expect_err("should fail");
        assert!(e.primary().message.contains("input"), "{e}");
    }

    #[test]
    fn resolves_parameters() {
        let d = compile_ok(
            "module m #(parameter W = 3)(input [7:0] a, output [7:0] y);\n\
             localparam TOP = W * 2 + 1;\n assign y = a + TOP;\nendmodule",
        );
        assert_eq!(d.params["W"], 3);
        assert_eq!(d.params["TOP"], 7);
    }

    #[test]
    fn rejects_unknown_property_reference() {
        let e = compile(
            "module m(input clk, input a);\n\
             lab: assert property (no_such_prop);\nendmodule",
        )
        .expect_err("should fail");
        assert!(e.primary().message.contains("no_such_prop"), "{e}");
    }

    #[test]
    fn rejects_property_with_unknown_signal() {
        let e = compile(
            "module m(input clk, input a);\n\
             property p; @(posedge clk) ghost |-> a; endproperty\n\
             assert property (p);\nendmodule",
        )
        .expect_err("should fail");
        assert!(e.primary().message.contains("ghost"), "{e}");
    }

    #[test]
    fn warns_on_floating_net() {
        let d = compile_ok("module m(input a, output y); wire unused; assign y = a; endmodule");
        assert!(d
            .warnings
            .iter()
            .any(|w| w.message.contains("unused") || w.message.contains("never driven")));
    }

    #[test]
    fn output_reg_redeclaration_merges() {
        let d = compile_ok(
            "module m(clk, q);\ninput clk;\noutput [3:0] q;\nreg [3:0] q;\n\
             always @(posedge clk) q <= q + 4'd1;\nendmodule",
        );
        assert_eq!(d.signals["q"].kind, NetKind::Reg);
        assert_eq!(d.signals["q"].width, 4);
    }

    #[test]
    fn const_eval_handles_operators() {
        let params = BTreeMap::from([("W".to_string(), 8u64)]);
        let e = parse("module t(output [31:0] y); assign y = 0; endmodule").expect("parse");
        drop(e);
        let expr = crate::parser::parse(
            "module t #(parameter X = (8 * 4) + (1 << 2))(output y); assign y = 1'b0; endmodule",
        )
        .expect("parse");
        let Item::Param(p) = &expr.modules[0].items[0] else {
            panic!()
        };
        assert_eq!(const_eval(&p.value, &params), Some(36));
    }

    #[test]
    fn rejects_wide_signals() {
        let e = compile("module m(input [127:0] a, output y); assign y = a[0]; endmodule")
            .expect_err("should fail");
        assert!(e.primary().message.contains("width"), "{e}");
    }
}
