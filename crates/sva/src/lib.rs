//! # asv-sva
//!
//! SystemVerilog Assertion semantics for the AssertSolver reproduction:
//!
//! * [`monitor`] — runtime checking of properties over simulation traces,
//!   producing the assertion-failure logs the repair model consumes;
//! * [`bmc`] — a bounded verifier standing in for SymbiYosys
//!   (substitution rationale in DESIGN.md), with a symbolic SAT-based
//!   engine (`asv-sat`) and an enumeration/sampling simulation oracle;
//! * [`mine`] — trace-driven invariant mining standing in for the paper's
//!   LLM-based SVA generation;
//! * [`eval`] — sampled-value evaluation with `$past`/`$rose`/`$fell`/
//!   `$stable` resolved against the trace.
//!
//! ## Quick start
//!
//! ```
//! use asv_sva::bmc::{Verdict, Verifier};
//!
//! let design = asv_verilog::compile(r#"
//! module latch1(input clk, input rst_n, input d, output reg q);
//!   always @(posedge clk or negedge rst_n) begin
//!     if (!rst_n) q <= 1'b0; else q <= d;
//!   end
//!   chk: assert property (@(posedge clk) disable iff (!rst_n)
//!     d |-> ##1 q) else $error("q must follow d");
//! endmodule
//! "#)?;
//! let verdict = Verifier::new().check(&design)?;
//! assert!(!verdict.is_failure());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod bmc;
pub mod eval;
pub mod mine;
pub mod monitor;

pub use bmc::{CounterExample, Engine, TriedEngine, Verdict, Verifier, VerifyError};
pub use mine::{attach_property, Miner};
pub use monitor::{check_module, failure_logs, AssertionFailure, CheckOutcome};
