//! Runtime assertion monitor: checks SVA directives over a recorded trace
//! and produces the failure logs the repair model consumes.
//!
//! Semantics (per DESIGN.md, matching the supported subset):
//!
//! * Properties are evaluated at every tick of the property clock. The
//!   simulator records one sample per tick, so each trace row is one
//!   evaluation attempt.
//! * `disable iff (expr)`: an attempt is discarded if the disable condition
//!   is true at any tick the attempt observes.
//! * Linear sequences `e0 ##n1 e1 ##n2 e2`: `e0` at the start tick, `e1`
//!   `n1` ticks later, and so on.
//! * `a |-> c`: if the antecedent matches ending at tick `t`, the
//!   consequent must match starting at `t`; `|=>` starts at `t + 1`.
//! * Attempts whose window extends past the end of the trace are *pending*
//!   and never reported as failures (bounded semantics).

use crate::eval::CompiledExpr;
use asv_sim::cover::CovMap;
use asv_sim::eval::EvalError;
use asv_sim::trace::Trace;
use asv_sim::value::Value;
use asv_verilog::ast::{AssertDirective, AssertTarget, Module, PropExpr, PropertyDecl, SeqExpr};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One assertion failure observed on a trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AssertionFailure {
    /// Module name.
    pub module: String,
    /// Assertion name (label or property name).
    pub assertion: String,
    /// Tick at which the attempt started.
    pub start_tick: usize,
    /// Tick at which the violation was established.
    pub fail_tick: usize,
    /// The `$error` message, if the directive has one.
    pub message: Option<String>,
}

impl fmt::Display for AssertionFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "failed assertion {}.{} at cycle {}",
            self.module, self.assertion, self.fail_tick
        )?;
        if let Some(m) = &self.message {
            write!(f, ": {m}")?;
        }
        Ok(())
    }
}

/// Outcome of checking one assertion over one trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckOutcome {
    /// No attempt failed; at least one attempt completed non-vacuously.
    Passed {
        /// Number of non-vacuous completed attempts.
        attempts: usize,
    },
    /// No attempt completed non-vacuously (antecedent never matched).
    Vacuous,
    /// At least one attempt failed.
    Failed(Vec<AssertionFailure>),
}

impl CheckOutcome {
    /// True when the outcome is [`CheckOutcome::Failed`].
    pub fn is_failure(&self) -> bool {
        matches!(self, CheckOutcome::Failed(_))
    }
}

/// Errors raised by the monitor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonitorError {
    /// The directive references a property the module does not declare.
    UnknownProperty(String),
    /// Expression evaluation failed at some tick.
    Eval(EvalError),
}

impl fmt::Display for MonitorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonitorError::UnknownProperty(p) => write!(f, "unknown property `{p}`"),
            MonitorError::Eval(e) => write!(f, "monitor evaluation error: {e}"),
        }
    }
}

impl std::error::Error for MonitorError {}

impl From<EvalError> for MonitorError {
    fn from(e: EvalError) -> Self {
        MonitorError::Eval(e)
    }
}

/// Checks every assertion directive of `module` against `trace`.
///
/// Returns outcomes in directive order. One-shot convenience over
/// [`CompiledChecker`]; callers that monitor many traces of one design
/// (the bounded verifier, the invariant miner) should build the checker
/// once and reuse it.
///
/// # Errors
///
/// Returns [`MonitorError`] for dangling property references or evaluation
/// failures (undeclared signals in properties are caught earlier by
/// elaboration, so an error here indicates a harness bug).
pub fn check_module(
    module: &Module,
    trace: &Trace,
) -> Result<Vec<(AssertDirective, CheckOutcome)>, MonitorError> {
    let checker = CompiledChecker::new(module, |name| trace.col(name))?;
    Ok(checker
        .outcomes(trace)?
        .into_iter()
        .map(|(dir, outcome)| (dir.clone(), outcome))
        .collect())
}

/// A module's assertions compiled against a trace column layout.
///
/// Property expressions are lowered once to `asv_sim` bytecode (signal
/// names interned to trace columns); checking a trace then evaluates pure
/// programs at each tick with no AST walking or name hashing. All traces
/// produced by simulating one design share a column layout, so one
/// checker serves every stimulus of a verification run.
#[derive(Debug, Clone)]
pub struct CompiledChecker {
    module_name: String,
    directives: Vec<(AssertDirective, CompiledProp)>,
}

#[derive(Debug, Clone)]
struct CompiledProp {
    disable: Option<CompiledExpr>,
    body: CompiledPropExpr,
    window: u32,
}

#[derive(Debug, Clone)]
enum CompiledPropExpr {
    Seq(CompiledSeq),
    Implication {
        antecedent: CompiledSeq,
        overlapping: bool,
        consequent: CompiledSeq,
    },
}

#[derive(Debug, Clone)]
enum CompiledSeq {
    Expr(CompiledExpr),
    Delay {
        lhs: Box<CompiledSeq>,
        cycles: u32,
        rhs: Box<CompiledSeq>,
    },
}

impl CompiledChecker {
    /// Compiles every assertion of `module` against the column layout
    /// given by `col` (signal name → trace column).
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::UnknownProperty`] for dangling property
    /// references.
    pub fn new<C: Fn(&str) -> Option<usize> + Copy>(
        module: &Module,
        col: C,
    ) -> Result<Self, MonitorError> {
        let mut directives = Vec::new();
        for dir in module.assertions() {
            let prop = resolve(module, dir)?;
            directives.push((dir.clone(), compile_property(prop, col)));
        }
        Ok(CompiledChecker {
            module_name: module.name.clone(),
            directives,
        })
    }

    /// Checks all compiled assertions against one trace.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures as [`MonitorError::Eval`].
    pub fn outcomes(
        &self,
        trace: &Trace,
    ) -> Result<Vec<(&AssertDirective, CheckOutcome)>, MonitorError> {
        let mut out = Vec::with_capacity(self.directives.len());
        // One scratch stack serves every bytecode evaluation of the run.
        let mut stack = Vec::with_capacity(8);
        for (dir, prop) in &self.directives {
            let outcome = check_property(&self.module_name, dir, prop, trace, &mut stack)?;
            out.push((dir, outcome));
        }
        Ok(out)
    }

    /// Lane-batched [`CompiledChecker::outcomes`]: judges every trace of
    /// a lane group with one shared scratch stack, returning per-trace
    /// results in order. Each trace's judgment is independent (an eval
    /// error in one lane never masks another lane's outcome), so callers
    /// can merge events in stimulus-index order exactly as the scalar
    /// loop would have.
    pub fn outcomes_lanes<'a, 'b>(
        &'a self,
        traces: impl IntoIterator<Item = &'b Trace>,
    ) -> Vec<Result<Vec<(&'a AssertDirective, CheckOutcome)>, MonitorError>> {
        let mut stack = Vec::with_capacity(8);
        traces
            .into_iter()
            .map(|trace| {
                self.directives
                    .iter()
                    .map(|(dir, prop)| {
                        check_property(&self.module_name, dir, prop, trace, &mut stack)
                            .map(|outcome| (dir, outcome))
                    })
                    .collect()
            })
            .collect()
    }

    /// Number of compiled assertion directives (the antecedent axis of a
    /// [`CovMap`]).
    pub fn assertion_count(&self) -> usize {
        self.directives.len()
    }

    /// [`CompiledChecker::outcomes`] plus coverage: directive *i* is
    /// recorded as antecedent-fired in `cov` when at least one attempt
    /// completed non-vacuously ([`CheckOutcome::Passed`]) or failed
    /// ([`CheckOutcome::Failed`]) — the per-assertion feedback signal of
    /// the coverage-guided fuzzer.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures as [`MonitorError::Eval`].
    pub fn outcomes_cov(
        &self,
        trace: &Trace,
        cov: &mut CovMap,
    ) -> Result<Vec<(&AssertDirective, CheckOutcome)>, MonitorError> {
        let out = self.outcomes(trace)?;
        for (i, (_, outcome)) in out.iter().enumerate() {
            if matches!(
                outcome,
                CheckOutcome::Passed { .. } | CheckOutcome::Failed(_)
            ) {
                cov.record_antecedent(i);
            }
        }
        Ok(out)
    }
}

fn compile_property<C: Fn(&str) -> Option<usize> + Copy>(
    prop: &PropertyDecl,
    col: C,
) -> CompiledProp {
    CompiledProp {
        disable: prop.disable.as_ref().map(|d| CompiledExpr::new(d, col)),
        body: match &prop.body {
            PropExpr::Seq(s) => CompiledPropExpr::Seq(compile_seq(s, col)),
            PropExpr::Implication {
                antecedent,
                overlapping,
                consequent,
                ..
            } => CompiledPropExpr::Implication {
                antecedent: compile_seq(antecedent, col),
                overlapping: *overlapping,
                consequent: compile_seq(consequent, col),
            },
        },
        window: property_window(prop),
    }
}

fn compile_seq<C: Fn(&str) -> Option<usize> + Copy>(seq: &SeqExpr, col: C) -> CompiledSeq {
    match seq {
        SeqExpr::Expr(e) => CompiledSeq::Expr(CompiledExpr::new(e, col)),
        SeqExpr::Delay {
            lhs, cycles, rhs, ..
        } => CompiledSeq::Delay {
            lhs: Box::new(compile_seq(lhs, col)),
            cycles: *cycles,
            rhs: Box::new(compile_seq(rhs, col)),
        },
    }
}

/// Collects the rendered failure-log lines for a whole module (the `Logs`
/// artefact fed to the repair model).
///
/// # Errors
///
/// Propagates [`MonitorError`] from [`check_module`].
pub fn failure_logs(module: &Module, trace: &Trace) -> Result<Vec<String>, MonitorError> {
    let mut logs = Vec::new();
    for (_, outcome) in check_module(module, trace)? {
        if let CheckOutcome::Failed(fails) = outcome {
            for f in fails {
                logs.push(f.to_string());
            }
        }
    }
    Ok(logs)
}

fn resolve<'m>(
    module: &'m Module,
    dir: &'m AssertDirective,
) -> Result<&'m PropertyDecl, MonitorError> {
    match &dir.target {
        AssertTarget::Named(n) => module
            .properties()
            .find(|p| &p.name == n)
            .ok_or_else(|| MonitorError::UnknownProperty(n.clone())),
        AssertTarget::Inline(p) => Ok(p),
    }
}

/// Checks a single compiled property for a directive, reporting all
/// failures (capped at 16 to bound log size, as real simulators do with
/// `-assert-limit`).
fn check_property(
    module_name: &str,
    dir: &AssertDirective,
    prop: &CompiledProp,
    trace: &Trace,
    stack: &mut Vec<Value>,
) -> Result<CheckOutcome, MonitorError> {
    const MAX_REPORTED: usize = 16;
    let mut failures = Vec::new();
    let mut completed = 0usize;
    for start in 0..trace.len() {
        match attempt(prop, trace, start, stack)? {
            AttemptOutcome::Pass => completed += 1,
            AttemptOutcome::Vacuous | AttemptOutcome::Disabled | AttemptOutcome::Pending => {}
            AttemptOutcome::Fail { fail_tick } => {
                if failures.len() < MAX_REPORTED {
                    failures.push(AssertionFailure {
                        module: module_name.to_string(),
                        assertion: dir.log_name().to_string(),
                        start_tick: start,
                        fail_tick,
                        message: dir.message.clone(),
                    });
                }
            }
        }
    }
    if !failures.is_empty() {
        Ok(CheckOutcome::Failed(failures))
    } else if completed > 0 {
        Ok(CheckOutcome::Passed {
            attempts: completed,
        })
    } else {
        Ok(CheckOutcome::Vacuous)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AttemptOutcome {
    Pass,
    Vacuous,
    Disabled,
    Pending,
    Fail { fail_tick: usize },
}

/// Evaluates one property attempt starting at `start`.
fn attempt(
    prop: &CompiledProp,
    trace: &Trace,
    start: usize,
    stack: &mut Vec<Value>,
) -> Result<AttemptOutcome, MonitorError> {
    // Disable check across the whole observation window (clamped to trace).
    if let Some(dis) = &prop.disable {
        let end = (start + prop.window as usize).min(trace.len().saturating_sub(1));
        for t in start..=end {
            if dis.holds_at_with(trace, t, stack)? {
                return Ok(AttemptOutcome::Disabled);
            }
        }
    }
    match &prop.body {
        CompiledPropExpr::Seq(seq) => match match_seq(seq, trace, start, stack)? {
            SeqOutcome::Match { .. } => Ok(AttemptOutcome::Pass),
            SeqOutcome::NoMatch { fail_tick } => Ok(AttemptOutcome::Fail { fail_tick }),
            SeqOutcome::Pending => Ok(AttemptOutcome::Pending),
        },
        CompiledPropExpr::Implication {
            antecedent,
            overlapping,
            consequent,
        } => match match_seq(antecedent, trace, start, stack)? {
            SeqOutcome::NoMatch { .. } => Ok(AttemptOutcome::Vacuous),
            SeqOutcome::Pending => Ok(AttemptOutcome::Pending),
            SeqOutcome::Match { end } => {
                let cstart = if *overlapping { end } else { end + 1 };
                match match_seq(consequent, trace, cstart, stack)? {
                    SeqOutcome::Match { .. } => Ok(AttemptOutcome::Pass),
                    SeqOutcome::NoMatch { fail_tick } => Ok(AttemptOutcome::Fail { fail_tick }),
                    SeqOutcome::Pending => Ok(AttemptOutcome::Pending),
                }
            }
        },
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SeqOutcome {
    Match { end: usize },
    NoMatch { fail_tick: usize },
    Pending,
}

/// Matches a linear sequence starting at tick `start`.
fn match_seq(
    seq: &CompiledSeq,
    trace: &Trace,
    start: usize,
    stack: &mut Vec<Value>,
) -> Result<SeqOutcome, MonitorError> {
    match seq {
        CompiledSeq::Expr(e) => {
            if start >= trace.len() {
                return Ok(SeqOutcome::Pending);
            }
            if e.holds_at_with(trace, start, stack)? {
                Ok(SeqOutcome::Match { end: start })
            } else {
                Ok(SeqOutcome::NoMatch { fail_tick: start })
            }
        }
        CompiledSeq::Delay { lhs, cycles, rhs } => match match_seq(lhs, trace, start, stack)? {
            SeqOutcome::Match { end } => match_seq(rhs, trace, end + *cycles as usize, stack),
            other => Ok(other),
        },
    }
}

/// Total number of ticks (beyond the start) a property may observe.
///
/// Semantic twin of the symbolic engine's window computation in
/// `asv-sat` (engine.rs `compile_props`); keep the two in lock step.
fn property_window(prop: &PropertyDecl) -> u32 {
    match &prop.body {
        PropExpr::Seq(s) => s.duration(),
        PropExpr::Implication {
            antecedent,
            overlapping,
            consequent,
            ..
        } => antecedent.duration() + consequent.duration() + u32::from(!*overlapping),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_sim::Simulator;
    use asv_verilog::compile;

    /// The paper's Fig. 1 accumulator with the seeded logic error
    /// (`!end_cnt` instead of `end_cnt`).
    const ACCU_BUGGY: &str = r#"
module accu(input clk, input rst_n, input valid_in, output reg valid_out);
  reg [1:0] cnt;
  wire end_cnt;
  assign end_cnt = (cnt == 2'd3) && valid_in;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) cnt <= 2'd0;
    else if (valid_in) cnt <= end_cnt ? 2'd0 : cnt + 2'd1;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) valid_out <= 1'b0;
    else if (!end_cnt) valid_out <= 1'b1;
    else valid_out <= 1'b0;
  end
  property valid_out_check;
    @(posedge clk) disable iff (!rst_n)
    end_cnt |-> ##1 valid_out == 1'b1;
  endproperty
  valid_out_check_assertion: assert property (valid_out_check)
    else $error("valid_out should be high when end_cnt high");
endmodule
"#;

    const ACCU_FIXED: &str = r#"
module accu(input clk, input rst_n, input valid_in, output reg valid_out);
  reg [1:0] cnt;
  wire end_cnt;
  assign end_cnt = (cnt == 2'd3) && valid_in;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) cnt <= 2'd0;
    else if (valid_in) cnt <= end_cnt ? 2'd0 : cnt + 2'd1;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) valid_out <= 1'b0;
    else if (end_cnt) valid_out <= 1'b1;
    else valid_out <= 1'b0;
  end
  property valid_out_check;
    @(posedge clk) disable iff (!rst_n)
    end_cnt |-> ##1 valid_out == 1'b1;
  endproperty
  valid_out_check_assertion: assert property (valid_out_check)
    else $error("valid_out should be high when end_cnt high");
endmodule
"#;

    fn run(src: &str, cycles: usize) -> (asv_verilog::Design, Trace) {
        let d = compile(src).unwrap_or_else(|e| panic!("compile: {e}"));
        let mut sim = Simulator::new(&d);
        sim.step(&[("rst_n", 0), ("valid_in", 0)]).expect("reset");
        for _ in 0..cycles {
            sim.step(&[("rst_n", 1), ("valid_in", 1)]).expect("step");
        }
        let trace = sim.into_trace();
        (d, trace)
    }

    #[test]
    fn buggy_accu_fails_assertion() {
        let (d, trace) = run(ACCU_BUGGY, 12);
        let logs = failure_logs(&d.module, &trace).expect("monitor ok");
        assert!(!logs.is_empty(), "bug must trip the assertion");
        assert!(
            logs[0].contains("failed assertion accu.valid_out_check_assertion"),
            "got: {}",
            logs[0]
        );
        assert!(logs[0].contains("valid_out should be high"));
    }

    #[test]
    fn fixed_accu_passes_assertion() {
        let (d, trace) = run(ACCU_FIXED, 12);
        let results = check_module(&d.module, &trace).expect("monitor ok");
        assert_eq!(results.len(), 1);
        match &results[0].1 {
            CheckOutcome::Passed { attempts } => assert!(*attempts >= 2, "attempts: {attempts}"),
            other => panic!("expected pass, got {other:?}"),
        }
    }

    #[test]
    fn vacuous_when_antecedent_never_fires() {
        let (d, trace) = {
            let d = compile(ACCU_FIXED).expect("compile");
            let mut sim = Simulator::new(&d);
            sim.step(&[("rst_n", 0), ("valid_in", 0)]).expect("reset");
            for _ in 0..8 {
                sim.step(&[("rst_n", 1), ("valid_in", 0)]).expect("step");
            }
            (d.clone(), sim.into_trace())
        };
        let results = check_module(&d.module, &trace).expect("monitor ok");
        assert_eq!(results[0].1, CheckOutcome::Vacuous);
    }

    #[test]
    fn disable_iff_suppresses_reset_failures() {
        // Keep reset asserted the whole run: the property must never fire.
        let d = compile(ACCU_BUGGY).expect("compile");
        let mut sim = Simulator::new(&d);
        for _ in 0..8 {
            sim.step(&[("rst_n", 0), ("valid_in", 1)]).expect("step");
        }
        let trace = sim.into_trace();
        let results = check_module(&d.module, &trace).expect("monitor ok");
        assert!(
            !results[0].1.is_failure(),
            "attempts under reset must be discarded"
        );
    }

    #[test]
    fn pending_windows_are_not_failures() {
        // Run exactly up to a tick where end_cnt fires but the ##1
        // consequent tick is past the end of the trace.
        let d = compile(ACCU_BUGGY).expect("compile");
        let mut sim = Simulator::new(&d);
        sim.step(&[("rst_n", 0), ("valid_in", 0)]).expect("reset");
        for _ in 0..4 {
            sim.step(&[("rst_n", 1), ("valid_in", 1)]).expect("step");
        }
        // end_cnt is sampled true at tick 4 (cnt==3), consequent at 5 missing.
        let trace = sim.into_trace();
        assert_eq!(trace.len(), 5);
        let results = check_module(&d.module, &trace).expect("monitor ok");
        assert!(
            !results[0].1.is_failure(),
            "pending obligation must not fail: {:?}",
            results[0].1
        );
    }

    #[test]
    fn failure_fields_are_populated() {
        let (d, trace) = run(ACCU_BUGGY, 12);
        let results = check_module(&d.module, &trace).expect("monitor ok");
        let CheckOutcome::Failed(fails) = &results[0].1 else {
            panic!("expected failure");
        };
        let f = &fails[0];
        assert_eq!(f.module, "accu");
        assert_eq!(f.assertion, "valid_out_check_assertion");
        assert_eq!(f.fail_tick, f.start_tick + 1, "##1 consequent");
    }
}
