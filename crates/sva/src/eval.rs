//! Sampled-value expression evaluation over traces.
//!
//! Property expressions may contain history system functions (`$past`,
//! `$rose`, `$fell`, `$stable`). Two evaluation paths exist:
//!
//! * the **compiled path** ([`CompiledExpr`]): the expression is lowered
//!   once into `asv_sim` bytecode with trace columns interned as
//!   [`SigId`]s, and history calls become [`ExecEnv::history`]
//!   sub-programs the [`TraceExecEnv`] resolves by re-running them at
//!   shifted ticks. The monitor and the bounded verifier use this path —
//!   compile once, evaluate at every tick of every trace.
//! * the **interpreter path** ([`eval_at`]/[`holds_at`]): each history
//!   call is rewritten into a literal and the AST is tree-walked via
//!   [`asv_sim::eval`]. Kept as the reference oracle.

use asv_sim::compile::{compile_expr, run, ExecEnv, ExprProg, HistoryKind, NameRef, SigId};
use asv_sim::eval::{eval, Env, EvalError};
use asv_sim::trace::Trace;
use asv_sim::value::Value;
use asv_verilog::ast::Expr;
use asv_verilog::Span;

/// Environment sampling a trace at a fixed tick.
#[derive(Debug, Clone, Copy)]
pub struct TraceEnv<'a> {
    trace: &'a Trace,
    t: usize,
}

impl<'a> TraceEnv<'a> {
    /// Creates an environment for tick `t`.
    pub fn new(trace: &'a Trace, t: usize) -> Self {
        TraceEnv { trace, t }
    }
}

impl Env for TraceEnv<'_> {
    fn value_of(&self, name: &str) -> Option<Value> {
        self.trace.value(self.t, name)
    }
}

/// A property expression compiled against a trace column layout.
///
/// Construction interns every referenced signal to its trace column; the
/// per-tick evaluation that dominates monitoring cost then runs without
/// any name lookups or AST rewriting.
#[derive(Debug, Clone)]
pub struct CompiledExpr {
    prog: ExprProg,
}

impl CompiledExpr {
    /// Compiles `expr` against the column layout given by `col` (signal
    /// name → trace column). Unknown names compile to instructions that
    /// raise [`EvalError::UnknownSignal`] only if actually evaluated,
    /// matching the interpreter path.
    pub fn new<C: Fn(&str) -> Option<usize>>(expr: &Expr, col: C) -> Self {
        let resolve = |name: &str| match col(name) {
            Some(c) => NameRef::Sig(SigId(c as u32)),
            None => NameRef::Unknown,
        };
        CompiledExpr {
            prog: compile_expr(expr, &resolve, true),
        }
    }

    /// Compiles `expr` against `trace`'s own column layout.
    pub fn for_trace(expr: &Expr, trace: &Trace) -> Self {
        Self::new(expr, |name| trace.col(name))
    }

    /// Evaluates at tick `t` of `trace`.
    ///
    /// # Errors
    ///
    /// Returns the same [`EvalError`]s as the interpreter path.
    pub fn eval_at(&self, trace: &Trace, t: usize) -> Result<Value, EvalError> {
        self.eval_at_with(trace, t, &mut Vec::with_capacity(8))
    }

    /// Evaluates at tick `t`, reusing a caller-provided scratch stack —
    /// the allocation-free form the per-tick monitoring loop uses.
    ///
    /// # Errors
    ///
    /// Returns the same [`EvalError`]s as the interpreter path.
    pub fn eval_at_with(
        &self,
        trace: &Trace,
        t: usize,
        stack: &mut Vec<Value>,
    ) -> Result<Value, EvalError> {
        run(&self.prog, &TraceExecEnv { trace, t }, stack)
    }

    /// Evaluates at tick `t` and reports truthiness.
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError`] from evaluation.
    pub fn holds_at(&self, trace: &Trace, t: usize) -> Result<bool, EvalError> {
        Ok(self.eval_at(trace, t)?.is_truthy())
    }

    /// Truthiness at tick `t` with a caller-provided scratch stack.
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError`] from evaluation.
    pub fn holds_at_with(
        &self,
        trace: &Trace,
        t: usize,
        stack: &mut Vec<Value>,
    ) -> Result<bool, EvalError> {
        Ok(self.eval_at_with(trace, t, stack)?.is_truthy())
    }
}

/// Bytecode environment sampling a trace at a fixed tick: signal loads
/// index the trace row directly, history calls re-run their sub-program at
/// shifted ticks.
#[derive(Debug, Clone, Copy)]
pub struct TraceExecEnv<'a> {
    trace: &'a Trace,
    t: usize,
}

impl ExecEnv for TraceExecEnv<'_> {
    #[inline]
    fn load(&self, sig: SigId) -> Value {
        self.trace.get(self.t, sig.idx())
    }

    fn history(&self, kind: HistoryKind, arg: &ExprProg, n: usize) -> Result<Value, EvalError> {
        let mut stack = Vec::with_capacity(8);
        let at = |t: usize| TraceExecEnv {
            trace: self.trace,
            t,
        };
        match kind {
            HistoryKind::Past => run(arg, &at(self.t.saturating_sub(n)), &mut stack),
            HistoryKind::Rose | HistoryKind::Fell | HistoryKind::Stable => {
                let now = run(arg, self, &mut stack)?;
                let before = if self.t == 0 {
                    // Before the first sample: $rose/$fell see 0 history,
                    // $stable is true (matches the interpreter path).
                    match kind {
                        HistoryKind::Stable => now,
                        _ => Value::zero(now.width()),
                    }
                } else {
                    run(arg, &at(self.t - 1), &mut stack)?
                };
                Ok(Value::bit(match kind {
                    HistoryKind::Rose => now.get_bit(0) && !before.get_bit(0),
                    HistoryKind::Fell => !now.get_bit(0) && before.get_bit(0),
                    _ => now == before,
                }))
            }
        }
    }
}

/// Evaluates `expr` at tick `t` of `trace`, resolving history calls.
///
/// # Errors
///
/// Returns [`EvalError`] for unknown signals, unsupported system calls and
/// arithmetic faults.
pub fn eval_at(expr: &Expr, trace: &Trace, t: usize) -> Result<Value, EvalError> {
    let rewritten = resolve_history(expr, trace, t)?;
    eval(&rewritten, &TraceEnv::new(trace, t))
}

/// Evaluates `expr` at tick `t` and reports truthiness.
///
/// # Errors
///
/// Propagates [`EvalError`] from evaluation.
pub fn holds_at(expr: &Expr, trace: &Trace, t: usize) -> Result<bool, EvalError> {
    Ok(eval_at(expr, trace, t)?.is_truthy())
}

/// Replaces history system calls with literal values computed from the
/// trace. All other nodes are cloned structurally.
fn resolve_history(expr: &Expr, trace: &Trace, t: usize) -> Result<Expr, EvalError> {
    Ok(match expr {
        Expr::SysCall { name, args, span } => match name.as_str() {
            "past" => {
                let n = match args.get(1) {
                    None => 1,
                    Some(e) => {
                        let v = eval_at(e, trace, t)?;
                        usize::try_from(v.bits()).unwrap_or(usize::MAX)
                    }
                };
                let arg = args
                    .first()
                    .ok_or_else(|| EvalError::Malformed("$past requires an argument".into()))?;
                let at = t.saturating_sub(n);
                let v = eval_at(arg, trace, at)?;
                literal(v, *span)
            }
            "rose" | "fell" | "stable" => {
                let arg = args
                    .first()
                    .ok_or_else(|| EvalError::Malformed(format!("${name} requires an argument")))?;
                let now = eval_at(arg, trace, t)?;
                let before = if t == 0 {
                    // Before the first sample: $rose/$fell see 0 history,
                    // $stable is true (matches Trace helpers).
                    match name.as_str() {
                        "stable" => now,
                        _ => Value::zero(now.width()),
                    }
                } else {
                    eval_at(arg, trace, t - 1)?
                };
                let b = match name.as_str() {
                    "rose" => now.get_bit(0) && !before.get_bit(0),
                    "fell" => !now.get_bit(0) && before.get_bit(0),
                    _ => now == before,
                };
                literal(Value::bit(b), *span)
            }
            _ => Expr::SysCall {
                name: name.clone(),
                args: args
                    .iter()
                    .map(|a| resolve_history(a, trace, t))
                    .collect::<Result<_, _>>()?,
                span: *span,
            },
        },
        Expr::Unary { op, operand, span } => Expr::Unary {
            op: *op,
            operand: Box::new(resolve_history(operand, trace, t)?),
            span: *span,
        },
        Expr::Binary { op, lhs, rhs, span } => Expr::Binary {
            op: *op,
            lhs: Box::new(resolve_history(lhs, trace, t)?),
            rhs: Box::new(resolve_history(rhs, trace, t)?),
            span: *span,
        },
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
            span,
        } => Expr::Ternary {
            cond: Box::new(resolve_history(cond, trace, t)?),
            then_expr: Box::new(resolve_history(then_expr, trace, t)?),
            else_expr: Box::new(resolve_history(else_expr, trace, t)?),
            span: *span,
        },
        Expr::Concat { parts, span } => Expr::Concat {
            parts: parts
                .iter()
                .map(|p| resolve_history(p, trace, t))
                .collect::<Result<_, _>>()?,
            span: *span,
        },
        Expr::Repeat { count, value, span } => Expr::Repeat {
            count: Box::new(resolve_history(count, trace, t)?),
            value: Box::new(resolve_history(value, trace, t)?),
            span: *span,
        },
        Expr::Bit { name, index, span } => Expr::Bit {
            name: name.clone(),
            index: Box::new(resolve_history(index, trace, t)?),
            span: *span,
        },
        other => other.clone(),
    })
}

fn literal(v: Value, span: Span) -> Expr {
    Expr::Number {
        value: v.bits(),
        width: Some(v.width()),
        base: Some('h'),
        span,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_verilog::ast::Item;
    use asv_verilog::parse;

    fn trace() -> Trace {
        let mut tr = Trace::new(vec!["d".into(), "q".into(), "v".into()]);
        // d: 1,2,3 ; q lags d by one; v pulses at t=1
        tr.push(vec![Value::new(1, 4), Value::new(0, 4), Value::new(0, 1)]);
        tr.push(vec![Value::new(2, 4), Value::new(1, 4), Value::new(1, 1)]);
        tr.push(vec![Value::new(3, 4), Value::new(2, 4), Value::new(0, 1)]);
        tr
    }

    fn expr(src: &str) -> Expr {
        let unit = parse(&format!(
            "module t(input clk, input [3:0] d, input [3:0] q, input v);\n\
             property p; @(posedge clk) {src}; endproperty\nassert property (p);\nendmodule"
        ))
        .expect("parse");
        let Item::Property(p) = unit.modules[0]
            .items
            .iter()
            .find(|i| matches!(i, Item::Property(_)))
            .expect("property")
        else {
            unreachable!()
        };
        match &p.body {
            asv_verilog::ast::PropExpr::Seq(asv_verilog::ast::SeqExpr::Expr(e)) => e.clone(),
            other => panic!("expected plain expr, got {other:?}"),
        }
    }

    #[test]
    fn past_shifts_time() {
        let tr = trace();
        let e = expr("q == $past(d, 1)");
        assert!(holds_at(&e, &tr, 1).expect("eval"));
        assert!(holds_at(&e, &tr, 2).expect("eval"));
        // At t=0, $past clamps to t=0: q(0)=0 != d(0)=1.
        assert!(!holds_at(&e, &tr, 0).expect("eval"));
    }

    #[test]
    fn nested_past_expression() {
        let tr = trace();
        let e = expr("$past(d + 4'd1, 1) == d");
        // d(t-1)+1 == d(t) for the ramp 1,2,3.
        assert!(holds_at(&e, &tr, 1).expect("eval"));
        assert!(holds_at(&e, &tr, 2).expect("eval"));
    }

    #[test]
    fn rose_and_fell() {
        let tr = trace();
        assert!(holds_at(&expr("$rose(v)"), &tr, 1).expect("eval"));
        assert!(!holds_at(&expr("$rose(v)"), &tr, 2).expect("eval"));
        assert!(holds_at(&expr("$fell(v)"), &tr, 2).expect("eval"));
        assert!(!holds_at(&expr("$rose(v)"), &tr, 0).expect("eval"));
    }

    #[test]
    fn stable_checks_whole_value() {
        let tr = trace();
        assert!(!holds_at(&expr("$stable(d)"), &tr, 1).expect("eval"));
        assert!(holds_at(&expr("$stable(d) || d == $past(d) + 4'd1"), &tr, 1).expect("eval"));
        assert!(
            holds_at(&expr("$stable(d)"), &tr, 0).expect("eval"),
            "stable at t=0"
        );
    }

    #[test]
    fn unknown_signal_errors() {
        let tr = trace();
        let e = Expr::Ident {
            name: "ghost".into(),
            span: Span::default(),
        };
        assert!(matches!(
            holds_at(&e, &tr, 0),
            Err(EvalError::UnknownSignal(_))
        ));
    }
}
