//! Bounded model checking: the reproduction's substitute for SymbiYosys.
//!
//! The paper uses SymbiYosys twice: (1) to prove generated SVAs valid on
//! the golden design, and (2) to confirm injected bugs trip the SVAs and to
//! produce the failure logs. [`Verifier::check`] provides both through a
//! selectable [`Engine`]:
//!
//! * **Symbolic** — the `asv-sat` bounded model checker bit-blasts the
//!   compiled design, unrolls it over time frames and decides every
//!   assertion with an embedded CDCL SAT solver. Verdicts are exhaustive
//!   over the *entire* input space up to the depth, counterexamples are
//!   minimal-depth, and vacuity is proven rather than sampled.
//! * **Simulation** — the original oracle: exhaustive stimulus enumeration
//!   when the input space fits [`Verifier::exhaustive_limit`], otherwise
//!   seeded random sampling (parallelised across threads with a
//!   deterministic lowest-index-wins merge, identical stimuli
//!   deduplicated so no run repeats across threads).
//! * **Fuzz** — the `asv-fuzz` coverage-guided greybox fuzzer: branch,
//!   toggle and antecedent coverage recorded per run feeds an AFL-style
//!   corpus whose mutations (including design-constant dictionary
//!   substitution) direct the search toward rare triggers blind sampling
//!   misses. Deterministic from [`Verifier::seed`]; the stimulus budget
//!   is [`Verifier::random_runs`], making fuzz and sampling verdicts
//!   comparable at equal cost.
//! * **Auto** (default) — symbolic whenever the design is levelizable and
//!   2-state encodable. Outside that subset (cyclic/latch designs,
//!   non-constant division, dynamic bit indices) it enumerates the input
//!   space when small enough and otherwise runs the **fuzzer** — not
//!   blind sampling — over the same budget.
//!
//! * **Portfolio** — races the engines against each other with
//!   cooperative cancellation (the standard trick from portfolio SAT
//!   solving). The *canonical* engine is whatever **Auto** would pick;
//!   competitors run concurrently and a result counts as *decisive* only
//!   when it determines the canonical verdict: any canonical-engine
//!   result, or a bounded *proof* of `Holds` from another complete
//!   engine (exhaustive enumeration finishing before the symbolic prover
//!   — common on small input spaces, where simulating every stimulus is
//!   cheaper than bit-blasting). Losers are stopped through a
//!   [`CancelToken`] threaded into the CDCL search loop, the fuzzing
//!   round loop and the per-stimulus simulation loops, so they die
//!   within one check interval. Verdicts are therefore bit-identical to
//!   sequential [`Engine::Auto`] no matter which engine wins the race or
//!   how many service workers run — `debug_assertions` builds re-run
//!   Auto after every portfolio check and assert equivalence. (The one
//!   documented tolerance: when an enumeration proof pre-empts a
//!   symbolic run that *would have exhausted its conflict budget*, the
//!   `Holds` verdict's `stimuli` count metadata reads 0 where Auto's
//!   fallback would report the enumeration count — hold/fail,
//!   exhaustiveness and the vacuity set still match exactly, and an
//!   observed symbolic failure always routes to Auto's fallback verdict.
//!   The archetype suites never get near the budget and assert full
//!   bit-identity.)
//!
//! Every symbolic counterexample is replayed on the compiled simulator
//! before being reported, and every fuzzer finding additionally replays
//! on the `AstSimulator` interpreter oracle, so `Fails` verdicts carry
//! exactly the logs a concrete run produces.
//!
//! ## Budgets and the degradation ladder
//!
//! [`Verifier::check_budgeted`] threads a full [`Budget`] — cancellation
//! token, wall-clock (or injected-clock) deadline, and per-resource caps
//! — into every engine's hot loop. Forced single-engine modes surface a
//! blown budget as the structured [`VerifyError::Exhausted`];
//! [`Engine::Auto`] and [`Engine::Portfolio`] instead *degrade* down a
//! deterministic ladder (symbolic → exhaustive enumeration →
//! coverage-guided fuzzing → random sampling), isolating per-rung panics
//! and halving the stimulus budget per exhausted rung, and report
//! [`Verdict::Inconclusive`] with the full attempt trace only when every
//! rung fails. Fault-free unbudgeted checks take exactly the pre-ladder
//! path, so their verdicts are bit-identical to the sequential chain.

pub use asv_sim::compile::OptLevel;

use crate::monitor::{AssertionFailure, CheckOutcome, CompiledChecker, MonitorError};
use asv_fuzz::{AssertionOracle, FuzzError, FuzzOptions, FuzzVerdict};
use asv_sat::engine::{BmcError, BmcOptions, BmcVerdict};
use asv_sim::cancel::{Budget, CancelToken, Exhausted, Stop};
use asv_sim::compile::CompiledDesign;
use asv_sim::cover::CovMap;
use asv_sim::exec::{SimError, Simulator};
use asv_sim::run_stimulus_group;
use asv_sim::stimulus::{Stimulus, StimulusGen};
use asv_sim::trace::Trace;
use asv_trace::{probe, Cost, EndReason, EngineTag, SpanKind, TraceSink};
use asv_verilog::sema::Design;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Result of verifying a design's assertions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// No failure found. `exhaustive` is true when the whole input space up
    /// to the depth was covered — by enumeration (`stimuli > 0`) or by a
    /// symbolic bounded proof (`stimuli == 0`); false when sampled.
    Holds {
        /// Whether the search was exhaustive up to the depth.
        exhaustive: bool,
        /// Number of stimuli simulated (0 for a symbolic proof, which
        /// simulates none).
        stimuli: usize,
        /// Assertions that never fired non-vacuously on any stimulus
        /// (empty = every check was exercised).
        vacuous: Vec<String>,
    },
    /// A counterexample was found.
    Fails(CounterExample),
    /// No engine produced a verdict within its budget: every rung of the
    /// [`Engine::Auto`]/[`Engine::Portfolio`] degradation ladder failed
    /// recoverably (resource exhaustion, an isolated panic, a spurious
    /// cancellation). Never cached, never produced by a fault-free
    /// unbudgeted check.
    Inconclusive {
        /// Every engine attempt, in the order the ladder ran them.
        tried: Vec<TriedEngine>,
    },
}

/// One failed rung of the degradation ladder, recorded in
/// [`Verdict::Inconclusive`] so callers can see how far the check got
/// and why each engine gave up.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TriedEngine {
    /// The engine that ran.
    pub engine: Engine,
    /// Human-readable failure description: the exhaustion record, a
    /// caught panic payload, a spurious cancellation, or the
    /// out-of-subset reason.
    pub reason: String,
    /// Structured record when the rung ran out of a budgeted resource
    /// (`None` for panics, spurious cancellations and out-of-subset
    /// designs).
    pub exhausted: Option<Exhausted>,
}

impl Verdict {
    /// True for [`Verdict::Fails`].
    pub fn is_failure(&self) -> bool {
        matches!(self, Verdict::Fails(_))
    }

    /// True for [`Verdict::Inconclusive`] — no engine decided the check
    /// within its budget.
    pub fn is_inconclusive(&self) -> bool {
        matches!(self, Verdict::Inconclusive { .. })
    }

    /// True when the design holds and every assertion fired at least once
    /// (the correctness notion used by the evaluation judge).
    pub fn holds_non_vacuously(&self) -> bool {
        matches!(self, Verdict::Holds { vacuous, .. } if vacuous.is_empty())
    }

    /// True when the design holds but no assertion ever fired.
    pub fn all_vacuous(&self, total_assertions: usize) -> bool {
        matches!(self, Verdict::Holds { vacuous, .. } if vacuous.len() == total_assertions)
    }
}

/// A concrete failing run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterExample {
    /// The stimulus that exposed the failure.
    pub stimulus: Stimulus,
    /// All assertion failures observed on that stimulus.
    pub failures: Vec<AssertionFailure>,
    /// Rendered log lines (the `Logs` input of the repair task).
    pub logs: Vec<String>,
}

/// Errors raised during verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// Simulation failed (e.g. combinational divergence after a mutation).
    Sim(SimError),
    /// Monitoring failed.
    Monitor(MonitorError),
    /// The design has no assertions to check.
    NoAssertions,
    /// [`Engine::Symbolic`] was requested but the design falls outside the
    /// symbolic engine's subset (with [`Engine::Auto`] this silently falls
    /// back to a concrete engine instead).
    Symbolic(String),
    /// The fuzzing engine failed (oracle error or a finding that did not
    /// replay on the interpreter — harness bugs, not design verdicts).
    Fuzz(String),
    /// The check's [`CancelToken`] was poisoned before a verdict (the
    /// caller tore the work down; losing portfolio engines surface this
    /// internally and it never escapes a portfolio check).
    Cancelled,
    /// A budgeted resource ran out before a verdict. Forced single-engine
    /// modes surface this directly; [`Engine::Auto`] and
    /// [`Engine::Portfolio`] degrade down the ladder instead and only
    /// report [`Verdict::Inconclusive`] when every rung is exhausted.
    Exhausted(Exhausted),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Sim(e) => write!(f, "simulation error: {e}"),
            VerifyError::Monitor(e) => write!(f, "monitor error: {e}"),
            VerifyError::NoAssertions => write!(f, "design has no assertions"),
            VerifyError::Symbolic(m) => write!(f, "symbolic engine unavailable: {m}"),
            VerifyError::Fuzz(m) => write!(f, "fuzzing engine failed: {m}"),
            VerifyError::Cancelled => write!(f, "verification cancelled"),
            VerifyError::Exhausted(e) => write!(f, "verification {e}"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<SimError> for VerifyError {
    fn from(e: SimError) -> Self {
        VerifyError::Sim(e)
    }
}

impl From<MonitorError> for VerifyError {
    fn from(e: MonitorError) -> Self {
        VerifyError::Monitor(e)
    }
}

impl From<Stop> for VerifyError {
    fn from(stop: Stop) -> Self {
        match stop {
            Stop::Cancelled => VerifyError::Cancelled,
            Stop::Exhausted(e) => VerifyError::Exhausted(e),
        }
    }
}

/// Why the symbolic engine produced no verdict: the `Err` side of
/// [`Verifier::check_symbolic`], carrying enough structure for the ladder
/// to decide between a free fallback and a backed-off one.
#[derive(Debug, Clone)]
struct RungFailure {
    /// Human-readable description (the [`VerifyError::Symbolic`] message
    /// when the symbolic engine is forced).
    reason: String,
    /// Structured record when a budgeted resource ran out.
    exhausted: Option<Exhausted>,
    /// True when the design is outside the engine's subset: the fallback
    /// is the design's *canonical* engine, not a degraded one, so the
    /// stimulus budget is not backed off (today's silent `Auto` path).
    unsupported: bool,
}

impl RungFailure {
    /// A free-fallback failure (no structured exhaustion, no backoff):
    /// out-of-subset designs and witness-replay harness failures.
    fn fallback(reason: String) -> Self {
        RungFailure {
            reason,
            exhausted: None,
            unsupported: true,
        }
    }

    /// The forced-engine ([`Engine::Symbolic`]) error for this failure.
    fn into_error(self) -> VerifyError {
        match self.exhausted {
            Some(e) => VerifyError::Exhausted(e),
            None => VerifyError::Symbolic(self.reason),
        }
    }

    /// The ladder-trace record for this failure.
    fn tried(self, engine: Engine) -> TriedEngine {
        TriedEngine {
            engine,
            reason: self.reason,
            exhausted: self.exhausted,
        }
    }
}

/// Outcome of one degradation-ladder rung.
enum RungOutcome {
    /// The engine decided the check.
    Verdict(Verdict),
    /// Unrecoverable — propagate immediately: simulation/monitor errors
    /// (the design itself is broken, no engine will do better) and an
    /// external cancellation (the caller tore the work down).
    Hard(VerifyError),
    /// Recoverable with budget backoff: resource exhaustion, an isolated
    /// panic, or a spurious cancellation.
    Exhausted(TriedEngine),
    /// Recoverable without backoff: the engine cannot handle the design
    /// at all, so the next rung is the canonical one.
    Unsupported(TriedEngine),
}

/// Routes a failed symbolic racer to the concrete racer's result; when
/// the concrete ladder itself ended [`Verdict::Inconclusive`], the
/// symbolic attempt is prepended so the trace matches what sequential
/// [`Engine::Auto`] would have recorded.
fn merge_sym_failure(
    sym: TriedEngine,
    conc: &Result<Verdict, VerifyError>,
) -> Result<Verdict, VerifyError> {
    match conc {
        Ok(Verdict::Inconclusive { tried }) => {
            let mut full = vec![sym];
            full.extend(tried.iter().cloned());
            Ok(Verdict::Inconclusive { tried: full })
        }
        other => other.clone(),
    }
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(p) = payload.downcast_ref::<asv_sim::fault::InjectedPanic>() {
        return format!("injected fault at probe `{}`", p.0);
    }
    if let Some(s) = payload.downcast_ref::<&str>() {
        return (*s).to_string();
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return s.clone();
    }
    "opaque panic payload".into()
}

/// Runs one ladder rung with panic isolation and classifies the result.
///
/// The closure only touches per-call state (the rung rebuilds everything
/// it needs from the compiled design), so unwinding out of it leaves no
/// broken invariants behind — `AssertUnwindSafe` is sound here.
fn run_rung(
    engine: Engine,
    budget: &Budget,
    body: impl FnOnce() -> Result<Verdict, VerifyError>,
) -> RungOutcome {
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
    classify_rung(engine, budget, res)
}

/// Sorts a rung result into the [`RungOutcome`] taxonomy.
fn classify_rung(
    engine: Engine,
    budget: &Budget,
    res: std::thread::Result<Result<Verdict, VerifyError>>,
) -> RungOutcome {
    match res {
        Ok(Ok(v)) => RungOutcome::Verdict(v),
        Ok(Err(VerifyError::Exhausted(e))) => RungOutcome::Exhausted(TriedEngine {
            engine,
            reason: e.to_string(),
            exhausted: Some(e),
        }),
        // `Cancelled` without an actually poisoned caller token is
        // spurious (fault injection or an engine bug): degrade instead
        // of reporting a cancellation that never happened.
        Ok(Err(VerifyError::Cancelled)) if !budget.is_cancelled() => {
            RungOutcome::Exhausted(TriedEngine {
                engine,
                reason: "spurious cancellation".into(),
                exhausted: None,
            })
        }
        Ok(Err(e)) => RungOutcome::Hard(e),
        Err(payload) => RungOutcome::Exhausted(TriedEngine {
            engine,
            reason: format!("panicked: {}", panic_message(payload.as_ref())),
            exhausted: None,
        }),
    }
}

/// Stimulus budget for a fallback rung: halved per previously exhausted
/// rung (a budget that just ran out should not be re-spent at full
/// size), floored at one run. Zero penalties pass the budget through
/// untouched, so fault-free fallbacks are bit-identical to the
/// pre-ladder chain (including the degenerate `random_runs: 0`).
fn backoff(runs: usize, penalties: u32) -> usize {
    if penalties == 0 {
        return runs;
    }
    (runs >> penalties.min(usize::BITS - 1)).max(1)
}

/// Backoff increment for an exhausted rung. Under a *plain* budget the
/// only possible exhaustion is an engine-internal cap (SAT conflict
/// budget, AIG node limit) — the pre-ladder chain always fell back at
/// full stimulus budget there, and the portfolio's concrete racer (which
/// starts before the symbolic outcome is known) still does, so backoff
/// applies only when the caller set a budget or armed fault injection.
fn penalty_step(budget: &Budget) -> u32 {
    u32::from(!budget.is_plain())
}

/// [`EndReason`] of a finished verification attempt, for rung spans.
fn verdict_end(res: &Result<Verdict, VerifyError>) -> EndReason {
    match res {
        Ok(Verdict::Holds { .. }) => EndReason::Holds,
        Ok(Verdict::Fails(_)) => EndReason::Fails,
        Ok(Verdict::Inconclusive { .. }) => EndReason::Exhausted,
        Err(VerifyError::Cancelled) => EndReason::Cancelled,
        Err(VerifyError::Exhausted(_)) => EndReason::Exhausted,
        Err(_) => EndReason::Unknown,
    }
}

/// [`EndReason`] of a classified ladder rung.
fn rung_end(outcome: &RungOutcome) -> EndReason {
    match outcome {
        RungOutcome::Verdict(Verdict::Holds { .. }) => EndReason::Holds,
        RungOutcome::Verdict(Verdict::Fails(_)) => EndReason::Fails,
        RungOutcome::Verdict(Verdict::Inconclusive { .. }) => EndReason::Exhausted,
        RungOutcome::Hard(VerifyError::Cancelled) => EndReason::Cancelled,
        RungOutcome::Hard(_) => EndReason::Unknown,
        RungOutcome::Exhausted(t) if t.reason.starts_with("panicked") => EndReason::Panicked,
        RungOutcome::Exhausted(_) => EndReason::Exhausted,
        RungOutcome::Unsupported(_) => EndReason::Unsupported,
    }
}

/// [`EndReason`] of the portfolio's symbolic racer (the un-classified
/// [`Verifier::check_symbolic`] result shape).
fn sym_racer_end(res: &Result<Result<Verdict, VerifyError>, RungFailure>) -> EndReason {
    match res {
        Ok(inner) => verdict_end(inner),
        Err(fall) if fall.unsupported => EndReason::Unsupported,
        Err(fall) if fall.reason.starts_with("panicked") => EndReason::Panicked,
        Err(_) => EndReason::Exhausted,
    }
}

/// Wraps one ladder rung in its trace span.
///
/// The body runs under an engine-tagged copy of `budget`, so every child
/// span it emits (SAT solves, fuzz rounds, enumeration sweeps) carries
/// the rung's [`EngineTag`] — that tag, not time containment, is how
/// per-rung resource costs are attributed when rungs overlap (portfolio
/// racers run concurrently). The span itself records the rung's
/// [`EndReason`] on every exit path via its drop guard. With tracing
/// disabled the tagged budget is byte-identical in behaviour and the
/// span is inert, so verdicts cannot depend on instrumentation.
fn traced_rung<R>(
    name: &'static str,
    tag: EngineTag,
    budget: &Budget,
    body: impl FnOnce(&Budget) -> R,
    end: impl FnOnce(&R) -> EndReason,
) -> R {
    let sink = budget.trace().clone();
    let tagged = budget.clone().with_trace(sink.with_engine(tag));
    let mut span = sink.span(name, SpanKind::Rung);
    span.set_engine(tag);
    let out = body(&tagged);
    span.set_end(end(&out));
    out
}

/// Which verification engine [`Verifier::check`] runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Engine {
    /// Symbolic when the design is levelizable and 2-state encodable;
    /// otherwise exhaustive enumeration when the input space fits
    /// [`Verifier::exhaustive_limit`], and coverage-guided fuzzing beyond
    /// that.
    #[default]
    Auto,
    /// Symbolic only; out-of-subset designs are a [`VerifyError::Symbolic`].
    Symbolic,
    /// The enumeration/sampling oracle only.
    Simulation,
    /// The coverage-guided fuzzer only, with [`Verifier::random_runs`] as
    /// its execution budget.
    Fuzz,
    /// Races the engines concurrently with cooperative cancellation and
    /// returns the canonical ([`Engine::Auto`]-identical) verdict as soon
    /// as any racer determines it; losers stop within one cancellation
    /// check interval. See the module docs for the exact decision rule.
    Portfolio,
}

/// Bounded verifier configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Verifier {
    /// Post-reset cycles per run.
    pub depth: usize,
    /// Reset cycles at the head of every run.
    pub reset_cycles: usize,
    /// Cap on exhaustively enumerated stimuli before falling back to
    /// random sampling (simulation engine).
    pub exhaustive_limit: u64,
    /// Stimulus budget of the concrete non-exhaustive engines: the number
    /// of random samples (simulation engine) and the fuzzer's execution
    /// budget — the same number, so the two are comparable at equal cost.
    pub random_runs: usize,
    /// RNG seed for random stimulus and fuzzing campaigns.
    pub seed: u64,
    /// Engine selection.
    pub engine: Engine,
    /// IR optimization level the design is compiled at. `Full` (default)
    /// runs the `asv-ir` pass pipeline; `None` keeps the raw lowering as
    /// the differential reference. Verdicts are bit-identical either way
    /// (enforced by `tests/differential_opt.rs`); compiled-design and
    /// verdict caches key on the level, so mixed-opt workloads never
    /// alias.
    pub opt: OptLevel,
}

impl Default for Verifier {
    fn default() -> Self {
        Verifier {
            depth: 12,
            reset_cycles: 2,
            exhaustive_limit: 4096,
            random_runs: 48,
            seed: 0xA55E_7501,
            engine: Engine::Auto,
            opt: OptLevel::Full,
        }
    }
}

/// Compiled-design lookup through the process-wide **sharded** cache in
/// [`asv_sim::cache`]. An earlier revision kept a thread-local MRU slot
/// here, which re-lowered the same AST once per worker thread during
/// parallel sampling/fuzzing/portfolio runs; the shared cache compiles
/// each distinct design exactly once per process.
fn compiled_for(design: &Design, opt: OptLevel) -> Arc<CompiledDesign> {
    asv_sim::cache::global().get_or_compile_opt(design, opt)
}

/// [`compiled_for`] with compile-cost attribution: hits and misses both
/// land a `sim.compile` event on the caller's trace handle.
fn compiled_for_traced(
    design: &Design,
    opt: OptLevel,
    trace: &asv_trace::TraceHandle,
) -> Arc<CompiledDesign> {
    asv_sim::cache::global().get_or_compile_traced(design, opt, trace)
}

/// Exact equality, except the one documented tolerance of the portfolio
/// contract: two *exhaustive* `Holds` verdicts with identical vacuity
/// sets are equivalent even when their `stimuli` counts differ (an
/// enumeration proof that pre-empted a symbolic run which would have
/// exhausted its budget reports 0 where Auto's fallback reports the
/// enumeration count).
#[cfg(debug_assertions)]
fn portfolio_matches_auto(
    portfolio: &Result<Verdict, VerifyError>,
    auto: &Result<Verdict, VerifyError>,
) -> bool {
    if portfolio == auto {
        return true;
    }
    matches!(
        (portfolio, auto),
        (
            Ok(Verdict::Holds {
                exhaustive: true,
                vacuous: va,
                ..
            }),
            Ok(Verdict::Holds {
                exhaustive: true,
                vacuous: vb,
                ..
            }),
        ) if va == vb
    )
}

impl Verifier {
    /// Creates a verifier with default bounds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks all assertions of `design` with the configured [`Engine`].
    ///
    /// The design is compiled once (and cached across calls); assertions
    /// are compiled once per call. The symbolic engine decides the entire
    /// bounded input space; the simulation engine enumerates it when small
    /// enough and samples otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::NoAssertions`] when the design has no
    /// assertion directives, [`VerifyError::Symbolic`] when
    /// [`Engine::Symbolic`] is forced on an out-of-subset design, and
    /// propagates simulation/monitoring errors.
    pub fn check(&self, design: &Design) -> Result<Verdict, VerifyError> {
        self.check_budgeted(design, &Budget::unbounded())
    }

    /// [`Verifier::check`] with a cooperative [`CancelToken`] threaded
    /// into every engine's hot loop (CDCL search, fuzzing rounds,
    /// per-stimulus simulation): once the token is poisoned the check
    /// returns [`VerifyError::Cancelled`] within one check interval.
    ///
    /// # Errors
    ///
    /// As [`Verifier::check`], plus [`VerifyError::Cancelled`].
    pub fn check_cancellable(
        &self,
        design: &Design,
        cancel: Option<&CancelToken>,
    ) -> Result<Verdict, VerifyError> {
        self.check_budgeted(design, &Budget::from_cancel(cancel))
    }

    /// [`Verifier::check`] under a full resource [`Budget`]: cancellation
    /// token, wall-clock or injected-clock deadline, and per-resource
    /// caps (SAT conflicts, fuzz rounds, AIG nodes), all polled inside
    /// every engine's hot loop. The budget is *per call* — it is not part
    /// of the verifier's identity, so verdict caches keyed on
    /// [`Verifier`] stay valid across differently-budgeted calls.
    ///
    /// # Errors
    ///
    /// As [`Verifier::check`], plus [`VerifyError::Cancelled`] for a
    /// poisoned token and [`VerifyError::Exhausted`] when a forced
    /// single-engine mode runs out of a budgeted resource.
    /// [`Engine::Auto`]/[`Engine::Portfolio`] degrade down the ladder
    /// instead and report [`Verdict::Inconclusive`] when every rung
    /// fails.
    pub fn check_budgeted(&self, design: &Design, budget: &Budget) -> Result<Verdict, VerifyError> {
        if design.module.assertions().count() == 0 {
            return Err(VerifyError::NoAssertions);
        }
        let compiled = compiled_for_traced(design, self.opt, budget.trace());
        // State index == trace column: the checker can be built from the
        // compiled design's interner before any trace exists.
        let col = |name: &str| compiled.sig(name).map(|s| s.idx());
        let checker = CompiledChecker::new(&design.module, col)?;
        match self.engine {
            Engine::Simulation => self.check_simulation(design, &compiled, &checker, budget),
            Engine::Fuzz => traced_rung(
                probe::RUNG_FUZZ,
                EngineTag::Fuzz,
                budget,
                |b| self.check_fuzz(design, &compiled, &checker, b, false, self.random_runs),
                verdict_end,
            ),
            Engine::Symbolic => traced_rung(
                probe::RUNG_SYMBOLIC,
                EngineTag::Symbolic,
                budget,
                |b| match self.check_symbolic(&compiled, &checker, b) {
                    Ok(verdict) => verdict,
                    Err(fall) => Err(fall.into_error()),
                },
                verdict_end,
            ),
            Engine::Auto => self.check_auto(design, &compiled, &checker, budget),
            Engine::Portfolio => {
                let res = self.check_portfolio(design, &compiled, &checker, budget);
                // The cross-check the portfolio contract promises: in
                // debug builds every portfolio verdict is re-derived by
                // the sequential Auto chain and compared. Skipped unless
                // the budget is plain — a live token could be poisoned
                // between the two runs, a deadline burns down across
                // them, and armed fault injection makes either run
                // diverge by design.
                #[cfg(debug_assertions)]
                if budget.is_plain() {
                    // Re-derive without the trace handle: the cross-check
                    // is an implementation detail and must not double
                    // every rung span in debug builds.
                    let untraced = budget.without_trace();
                    let auto = self.check_auto(design, &compiled, &checker, &untraced);
                    debug_assert!(
                        portfolio_matches_auto(&res, &auto),
                        "portfolio verdict diverged from Engine::Auto: {res:?} vs {auto:?}"
                    );
                }
                res
            }
        }
    }

    /// The sequential [`Engine::Auto`] chain, now the top of the
    /// degradation ladder: symbolic first, then the concrete rungs. A
    /// fault-free unbudgeted run takes exactly the pre-ladder path
    /// (symbolic, else enumeration, else fuzzing at full budget); the
    /// portfolio mode reproduces exactly this verdict.
    fn check_auto(
        &self,
        design: &Design,
        compiled: &Arc<CompiledDesign>,
        checker: &CompiledChecker,
        budget: &Budget,
    ) -> Result<Verdict, VerifyError> {
        let mut tried: Vec<TriedEngine> = Vec::new();
        let mut penalties = 0u32;
        match traced_rung(
            probe::RUNG_SYMBOLIC,
            EngineTag::Symbolic,
            budget,
            |b| self.symbolic_rung(compiled, checker, b),
            rung_end,
        ) {
            RungOutcome::Verdict(v) => return Ok(v),
            RungOutcome::Hard(e) => return Err(e),
            RungOutcome::Exhausted(t) => {
                tried.push(t);
                penalties += penalty_step(budget);
            }
            RungOutcome::Unsupported(t) => tried.push(t),
        }
        self.check_concrete_ladder(design, compiled, checker, budget, tried, penalties)
    }

    /// The symbolic rung: [`Verifier::check_symbolic`] with panic
    /// isolation, classified for the ladder.
    fn symbolic_rung(
        &self,
        compiled: &Arc<CompiledDesign>,
        checker: &CompiledChecker,
        budget: &Budget,
    ) -> RungOutcome {
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.check_symbolic(compiled, checker, budget)
        }));
        match res {
            Ok(Ok(inner)) => classify_rung(Engine::Symbolic, budget, Ok(inner)),
            Ok(Err(fall)) if fall.unsupported => {
                RungOutcome::Unsupported(fall.tried(Engine::Symbolic))
            }
            Ok(Err(fall)) => RungOutcome::Exhausted(fall.tried(Engine::Symbolic)),
            Err(payload) => classify_rung(Engine::Symbolic, budget, Err(payload)),
        }
    }

    /// The concrete portion of [`Engine::Auto`]: exhaustive enumeration
    /// when the bounded input space is small enough, coverage-guided
    /// fuzzing (never blind sampling) otherwise.
    fn check_concrete(
        &self,
        design: &Design,
        compiled: &Arc<CompiledDesign>,
        checker: &CompiledChecker,
        budget: &Budget,
    ) -> Result<Verdict, VerifyError> {
        self.check_concrete_ladder(design, compiled, checker, budget, Vec::new(), 0)
    }

    /// The concrete rungs of the degradation ladder: enumeration (when
    /// feasible) → coverage-guided fuzzing → blind random sampling, each
    /// panic-isolated, the stimulus budget halved per exhausted rung.
    /// Returns [`Verdict::Inconclusive`] with the attempt trace when
    /// every rung fails recoverably.
    fn check_concrete_ladder(
        &self,
        design: &Design,
        compiled: &Arc<CompiledDesign>,
        checker: &CompiledChecker,
        budget: &Budget,
        mut tried: Vec<TriedEngine>,
        mut penalties: u32,
    ) -> Result<Verdict, VerifyError> {
        let gen = StimulusGen::new(design);
        if let Some(all) = gen.exhaustive(self.depth, self.reset_cycles, self.exhaustive_limit) {
            match traced_rung(
                probe::RUNG_ENUM,
                EngineTag::Enumeration,
                budget,
                |b| {
                    run_rung(Engine::Simulation, b, || {
                        self.check_enumerated(design, compiled, checker, all, b)
                    })
                },
                rung_end,
            ) {
                RungOutcome::Verdict(v) => return Ok(v),
                RungOutcome::Hard(e) => return Err(e),
                RungOutcome::Exhausted(t) => {
                    tried.push(t);
                    penalties += penalty_step(budget);
                }
                RungOutcome::Unsupported(t) => tried.push(t),
            }
        }
        let runs = backoff(self.random_runs, penalties);
        match traced_rung(
            probe::RUNG_FUZZ,
            EngineTag::Fuzz,
            budget,
            |b| {
                run_rung(Engine::Fuzz, b, || {
                    self.check_fuzz(design, compiled, checker, b, false, runs)
                })
            },
            rung_end,
        ) {
            RungOutcome::Verdict(v) => return Ok(v),
            RungOutcome::Hard(e) => return Err(e),
            RungOutcome::Exhausted(t) => {
                tried.push(t);
                penalties += penalty_step(budget);
            }
            RungOutcome::Unsupported(t) => tried.push(t),
        }
        // Last resort: blind sampling shares no infrastructure with the
        // fuzzer (no corpus, no coverage maps), so it survives failure
        // modes that take the fuzzer down.
        let runs = backoff(self.random_runs, penalties);
        match traced_rung(
            probe::RUNG_SAMPLE,
            EngineTag::Sampling,
            budget,
            |b| {
                run_rung(Engine::Simulation, b, || {
                    self.check_sampled(design, compiled, checker, b, runs)
                })
            },
            rung_end,
        ) {
            RungOutcome::Verdict(v) => Ok(v),
            RungOutcome::Hard(e) => Err(e),
            RungOutcome::Exhausted(t) | RungOutcome::Unsupported(t) => {
                tried.push(t);
                Ok(Verdict::Inconclusive { tried })
            }
        }
    }

    /// Runs the symbolic engine. The outer [`RungFailure`] means the
    /// engine could not produce a verdict (out-of-subset design or an
    /// exhausted budget) — the caller decides between fallback and a
    /// hard error.
    #[allow(clippy::result_large_err)]
    fn check_symbolic(
        &self,
        compiled: &Arc<CompiledDesign>,
        checker: &CompiledChecker,
        budget: &Budget,
    ) -> Result<Result<Verdict, VerifyError>, RungFailure> {
        let opts = BmcOptions {
            depth: self.depth,
            reset_cycles: self.reset_cycles,
            ..BmcOptions::default()
        };
        let bmc = match asv_sat::engine::check_budgeted(compiled, opts, budget) {
            Ok(v) => v,
            // Cancellation is a hard stop, never a fallback trigger: a
            // cancelled Auto/portfolio check must not silently run the
            // (expensive) concrete chain instead. (The ladder re-checks
            // the caller's token and degrades when the cancellation was
            // spurious.)
            Err(BmcError::Cancelled) => return Ok(Err(VerifyError::Cancelled)),
            Err(BmcError::Exhausted(e)) => {
                return Err(RungFailure {
                    reason: e.to_string(),
                    exhausted: Some(e),
                    unsupported: false,
                })
            }
            Err(e) => {
                return Err(RungFailure {
                    reason: e.to_string(),
                    exhausted: None,
                    unsupported: true,
                })
            }
        };
        match bmc {
            BmcVerdict::Holds { vacuous } => Ok(Ok(Verdict::Holds {
                exhaustive: true,
                stimuli: 0,
                vacuous,
            })),
            BmcVerdict::Fails { stimulus } => {
                // Replay the witness concretely: the reported failures and
                // logs must be exactly what a simulation run produces.
                let mut sim = Simulator::from_compiled(Arc::clone(compiled));
                for t in 0..stimulus.len() {
                    if let Err(e) = sim.step(&stimulus.cycle(t)) {
                        return Err(RungFailure::fallback(format!(
                            "witness replay raised `{e}`"
                        )));
                    }
                }
                let trace = sim.into_trace();
                let results = match checker.outcomes(&trace) {
                    Ok(r) => r,
                    Err(e) => {
                        return Err(RungFailure::fallback(format!(
                            "witness monitoring raised `{e}`"
                        )))
                    }
                };
                let mut failures = Vec::new();
                for (_, outcome) in results {
                    if let CheckOutcome::Failed(f) = outcome {
                        failures.extend(f);
                    }
                }
                if failures.is_empty() {
                    return Err(RungFailure::fallback(
                        "witness did not replay to a concrete failure".into(),
                    ));
                }
                let logs = failures.iter().map(ToString::to_string).collect();
                Ok(Ok(Verdict::Fails(CounterExample {
                    stimulus,
                    failures,
                    logs,
                })))
            }
        }
    }

    /// The enumeration/sampling oracle.
    fn check_simulation(
        &self,
        design: &Design,
        compiled: &Arc<CompiledDesign>,
        checker: &CompiledChecker,
        budget: &Budget,
    ) -> Result<Verdict, VerifyError> {
        let gen = StimulusGen::new(design);
        match gen.exhaustive(self.depth, self.reset_cycles, self.exhaustive_limit) {
            Some(all) => traced_rung(
                probe::RUNG_ENUM,
                EngineTag::Enumeration,
                budget,
                |b| self.check_enumerated(design, compiled, checker, all, b),
                verdict_end,
            ),
            None => traced_rung(
                probe::RUNG_SAMPLE,
                EngineTag::Sampling,
                budget,
                |b| self.check_sampled(design, compiled, checker, b, self.random_runs),
                verdict_end,
            ),
        }
    }

    /// Seeded random sampling: the non-exhaustive half of the simulation
    /// oracle and the ladder's last rung, at an explicit run count so
    /// fallback rungs can back the stimulus budget off.
    fn check_sampled(
        &self,
        design: &Design,
        compiled: &Arc<CompiledDesign>,
        checker: &CompiledChecker,
        budget: &Budget,
        runs: usize,
    ) -> Result<Verdict, VerifyError> {
        // The one sequential point of the sampling rung — fault probes
        // must not run inside the worker threads (concurrent draws would
        // make per-probe hit counters order-dependent).
        budget.probe(probe::SVA_SAMPLE)?;
        let sink = budget.trace().clone();
        let mut span = sink.span(probe::SVA_SAMPLE, SpanKind::Sampling);
        let gen = StimulusGen::new(design);
        // Per-stimulus RNG streams (SplitMix64-expanded seeds) are
        // decorrelated but can still collide on narrow inputs;
        // identical stimuli are deduplicated so no run repeats
        // across worker threads.
        let mut seen: std::collections::HashSet<Stimulus> =
            std::collections::HashSet::with_capacity(runs);
        let stimuli: Vec<Stimulus> = (0..runs)
            .map(|i| {
                gen.random_seeded(
                    self.depth,
                    self.reset_cycles,
                    self.seed.wrapping_add(i as u64),
                )
            })
            .filter(|s| seen.insert(s.clone()))
            .collect();
        let count = stimuli.len();
        span.add_cost(Cost {
            stimuli: count as u64,
            ..Cost::default()
        });
        // Scheduled-basis batch accounting, emitted at this sequential
        // point: the lane grouping is a pure function of the stimulus
        // count, so the cost vector is identical however many workers
        // drain the groups.
        if count > 0 {
            let batches = count.div_ceil(LANES) as u64;
            sink.instant(
                probe::SIM_BATCH,
                SpanKind::Batch,
                0,
                Cost {
                    batches,
                    lanes_occupied: count as u64,
                    lanes_total: batches * LANES as u64,
                    ..Cost::default()
                },
            );
        }
        let fired = match check_stimuli_parallel(compiled, checker, stimuli, budget)? {
            Ok(fired) => fired,
            Err(cex) => return Ok(Verdict::Fails(cex)),
        };
        Ok(self.holds(design, false, count, fired))
    }

    /// Checks a fully enumerated stimulus set (exhaustive coverage).
    fn check_enumerated(
        &self,
        design: &Design,
        compiled: &Arc<CompiledDesign>,
        checker: &CompiledChecker,
        all: Vec<Stimulus>,
        budget: &Budget,
    ) -> Result<Verdict, VerifyError> {
        let count = all.len();
        let sink = budget.trace().clone();
        let mut span = sink.span(probe::SVA_ENUM, SpanKind::Enumeration);
        let mut fired: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        // Count bytecode ops only when someone is listening — the
        // untraced sweep keeps the fully uninstrumented simulator.
        let counting = sink.is_enabled();
        for group in all.chunks(LANES) {
            // Fire the per-stimulus fault probes *before* the group runs —
            // one draw per stimulus, exactly the cardinality the scalar
            // sweep had, so deterministic fault schedules keyed on this
            // probe hit the same stimulus ordinals. (Under an injected
            // fault the batched sweep stops before the group's earlier
            // stimuli run, where the scalar sweep had already run and
            // accrued them — cost accounting under fault is the one
            // tolerated difference; verdicts and probe draws match.)
            for _ in group {
                budget.probe(probe::SVA_ENUM)?;
            }
            sink.instant(
                probe::SIM_BATCH,
                SpanKind::Batch,
                0,
                Cost {
                    batches: 1,
                    lanes_occupied: group.len() as u64,
                    lanes_total: LANES as u64,
                    ..Cost::default()
                },
            );
            let runs = run_stimulus_group(compiled, group, LANES, None, counting);
            // One shared monitor scratch stack for the whole group.
            let mut judged = checker
                .outcomes_lanes(
                    runs.iter()
                        .filter_map(|o| o.as_ref().ok())
                        .map(|r| &r.trace),
                )
                .into_iter();
            for (j, outcome) in runs.iter().enumerate() {
                let run = match outcome {
                    Ok(run) => run,
                    Err(e) => return Err(VerifyError::Sim(e.clone())),
                };
                let results = judged.next().expect("one judgment per surviving lane")?;
                match classify_outcomes(&results, &group[j]) {
                    StimulusOutcome::Fails(cex) => return Ok(Verdict::Fails(cex)),
                    StimulusOutcome::Passes(names) => fired.extend(names),
                }
                // Per-stimulus accrual keeps the count honest when a
                // failure or budget stop cuts the sweep short.
                span.add_cost(Cost {
                    stimuli: 1,
                    ops: run.ops,
                    ..Cost::default()
                });
            }
        }
        Ok(self.holds(design, true, count, fired))
    }

    /// The coverage-guided fuzzing engine, with [`Verifier::random_runs`]
    /// as its execution budget so its verdicts compare to sampling at
    /// equal cost. Non-vacuity is read off the merged coverage map's
    /// antecedent bits; failures replay through [`run_stimulus`] so the
    /// reported logs are exactly what a concrete run produces.
    fn check_fuzz(
        &self,
        design: &Design,
        compiled: &Arc<CompiledDesign>,
        checker: &CompiledChecker,
        budget: &Budget,
        single_thread: bool,
        runs: usize,
    ) -> Result<Verdict, VerifyError> {
        let oracle = CheckerOracle { checker };
        let opts = FuzzOptions {
            cycles: self.depth,
            reset_cycles: self.reset_cycles,
            budget: runs,
            seed: self.seed,
            // A portfolio racer must not multiply the service's worker
            // threads by the fuzzer's own pool (verdicts are
            // thread-count-independent; only wall time changes).
            threads: usize::from(single_thread),
            ..FuzzOptions::default()
        };
        let res =
            asv_fuzz::fuzz_budgeted(compiled, &oracle, &opts, budget).map_err(|e| match e {
                FuzzError::Sim(s) => VerifyError::Sim(s),
                FuzzError::Cancelled => VerifyError::Cancelled,
                FuzzError::Exhausted(ex) => VerifyError::Exhausted(ex),
                other => VerifyError::Fuzz(other.to_string()),
            })?;
        match res.verdict {
            FuzzVerdict::Failure { stimulus, .. } => {
                match run_stimulus(compiled, checker, stimulus)? {
                    StimulusOutcome::Fails(cex) => Ok(Verdict::Fails(cex)),
                    StimulusOutcome::Passes(_) => Err(VerifyError::Fuzz(
                        "fuzzer finding did not reproduce under the checker".into(),
                    )),
                }
            }
            FuzzVerdict::NoFailure => {
                let vacuous = design
                    .module
                    .assertions()
                    .enumerate()
                    .filter(|(i, _)| !res.coverage.antecedent_hit(*i))
                    .map(|(_, a)| a.log_name().to_string())
                    .collect();
                Ok(Verdict::Holds {
                    exhaustive: false,
                    stimuli: res.runs,
                    vacuous,
                })
            }
        }
    }

    /// [`Engine::Portfolio`]: race the symbolic prover against a
    /// concrete competitor, first *decisive* result wins.
    ///
    /// Canonical-verdict rule (what makes racing deterministic):
    ///
    /// * the canonical engine is whatever [`Engine::Auto`] would run —
    ///   symbolic when the [`asv_sat::engine::supports`] probe passes,
    ///   else enumeration when the bounded input space fits
    ///   [`Verifier::exhaustive_limit`], else the fuzzer;
    /// * a canonical-engine result is always decisive;
    /// * a bounded **proof** of `Holds` by exhaustive enumeration is
    ///   decisive even when symbolic is canonical: both engines decide
    ///   the same bounded space, so the vacuity sets coincide (the
    ///   differential suite enforces this agreement) and the verdict is
    ///   reported in symbolic form (`stimuli: 0`);
    /// * anything else — a concrete `Fails` (its counterexample would
    ///   differ from the canonical minimal-depth one) or a fuzz
    ///   `Holds` (not a proof) — is held as the fallback result in case
    ///   the symbolic engine exhausts a budget, exactly mirroring Auto's
    ///   fallback chain.
    ///
    /// Losers are cancelled and stop within one token-check interval.
    fn check_portfolio(
        &self,
        design: &Design,
        compiled: &Arc<CompiledDesign>,
        checker: &CompiledChecker,
        budget: &Budget,
    ) -> Result<Verdict, VerifyError> {
        budget.check()?;
        // Out-of-subset designs have no competing complete engine: the
        // canonical concrete chain runs directly, exactly like Auto.
        if asv_sat::engine::supports(compiled).is_err() {
            return self.check_concrete(design, compiled, checker, budget);
        }
        // Feasibility only — the stimulus set itself is materialised
        // inside the concrete racer thread, off the decision path.
        let enumerable =
            StimulusGen::new(design).exhaustive_feasible(self.depth, self.exhaustive_limit);

        // Each racer gets the caller's limits and fault session under its
        // own cancellation token, so losers can be stopped without
        // poisoning the caller's token. Concurrent racers draw from
        // disjoint fault-probe prefixes (`sat.*` vs `sva.*`/`fuzz.*`), so
        // per-probe hit sequences stay deterministic per racer.
        let sym_cancel = CancelToken::new();
        let conc_cancel = CancelToken::new();
        let sym_budget = budget.derive_with_cancel(sym_cancel.clone());
        let conc_budget = budget.derive_with_cancel(conc_cancel.clone());
        enum Msg {
            Sym(Result<Result<Verdict, VerifyError>, RungFailure>),
            Conc(Result<Verdict, VerifyError>),
        }
        let (tx, rx) = mpsc::channel::<Msg>();
        std::thread::scope(|scope| {
            let tx_sym = tx.clone();
            let sym_budget = &sym_budget;
            scope.spawn(move || {
                // A panic inside the prover (injected or genuine) must
                // not strand the decision loop or tear the scope down:
                // it is exactly a rung failure — the concrete racer
                // decides.
                let r = traced_rung(
                    probe::RUNG_SYMBOLIC,
                    EngineTag::Symbolic,
                    sym_budget,
                    |b| {
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            self.check_symbolic(compiled, checker, b)
                        }))
                        .unwrap_or_else(|payload| {
                            Err(RungFailure {
                                reason: format!("panicked: {}", panic_message(payload.as_ref())),
                                exhausted: None,
                                unsupported: false,
                            })
                        })
                    },
                    sym_racer_end,
                );
                let _ = tx_sym.send(Msg::Sym(r));
            });
            let conc_budget = &conc_budget;
            scope.spawn(move || {
                // Auto's exact concrete chain: enumeration when feasible,
                // the (single-threaded) fuzzer beyond it. Rung panics are
                // isolated inside the ladder itself.
                let r = self.check_concrete(design, compiled, checker, conc_budget);
                let _ = tx.send(Msg::Conc(r));
            });

            let mut sym: Option<Result<Result<Verdict, VerifyError>, RungFailure>> = None;
            let mut conc: Option<Result<Verdict, VerifyError>> = None;
            // Set once an enumeration Holds-proof has pre-empted the
            // symbolic racer (its vacuity set); the loop then only waits
            // to observe *why* symbolic stopped, so an actual symbolic
            // failure still routes to Auto's fallback verdict instead of
            // racing against it.
            let mut preempted: Option<Vec<String>> = None;
            let decision = loop {
                let msg = match rx.recv_timeout(Duration::from_millis(20)) {
                    Ok(msg) => msg,
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if budget.is_cancelled() {
                            break Err(VerifyError::Cancelled);
                        }
                        continue;
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        // Both racers reported and neither message was
                        // decisive — impossible, since a symbolic result
                        // always is; defend anyway.
                        break Err(VerifyError::Cancelled);
                    }
                };
                if budget.is_cancelled() {
                    break Err(VerifyError::Cancelled);
                }
                match msg {
                    Msg::Sym(r) => sym = Some(r),
                    Msg::Conc(r) => conc = Some(r),
                }
                if let (Some(vac), Some(s)) = (&preempted, &sym) {
                    break match s {
                        // Symbolic crossed the line despite the
                        // cancellation: its verdict is exact.
                        Ok(Ok(v)) => Ok(v.clone()),
                        // Stopped by our poison: report the enumeration
                        // proof in canonical (symbolic) form.
                        Ok(Err(VerifyError::Cancelled)) => Ok(Verdict::Holds {
                            exhaustive: true,
                            stimuli: 0,
                            vacuous: vac.clone(),
                        }),
                        Ok(Err(e)) => Err(e.clone()),
                        // Genuine symbolic failure (budget) observed
                        // before the poison landed: Auto would fall back
                        // to the concrete engine — report its verdict.
                        Err(_fallback) => {
                            conc.clone().expect("concrete result pre-empted the race")
                        }
                    };
                }
                if preempted.is_some() {
                    continue; // waiting for the symbolic racer's message
                }
                match &sym {
                    // A spurious cancellation (fault injection) without a
                    // poisoned caller token is a rung failure, not a
                    // decision: fall through to the concrete racer like
                    // any other symbolic failure.
                    Some(Ok(Err(VerifyError::Cancelled))) if !budget.is_cancelled() => {
                        if let Some(c) = &conc {
                            break merge_sym_failure(
                                TriedEngine {
                                    engine: Engine::Symbolic,
                                    reason: "spurious cancellation".into(),
                                    exhausted: None,
                                },
                                c,
                            );
                        }
                    }
                    // The canonical engine reported: decisive.
                    Some(Ok(verdict)) => break verdict.clone(),
                    // Symbolic fell over (budget): the concrete racer is
                    // now canonical; use its result once present.
                    Some(Err(fall)) => {
                        if let Some(c) = &conc {
                            break merge_sym_failure(fall.clone().tried(Engine::Symbolic), c);
                        }
                    }
                    None => {
                        // A bounded enumeration *proof* of Holds decides
                        // the same space symbolic would: pre-empt the
                        // prover, then wait one message to learn how it
                        // stopped. Everything else (a concrete `Fails`,
                        // a fuzz `Holds`) waits for the canonical
                        // engine.
                        if enumerable {
                            if let Some(Ok(Verdict::Holds { vacuous, .. })) = &conc {
                                sym_cancel.cancel();
                                preempted = Some(vacuous.clone());
                            }
                        }
                    }
                }
            };
            // Stop the losers; scope join waits for them to observe the
            // poison (one check interval).
            sym_cancel.cancel();
            conc_cancel.cancel();
            decision
        })
    }

    fn holds(
        &self,
        design: &Design,
        exhaustive: bool,
        stimuli: usize,
        fired: std::collections::BTreeSet<String>,
    ) -> Verdict {
        let vacuous: Vec<String> = design
            .module
            .assertions()
            .map(|a| a.log_name().to_string())
            .filter(|n| !fired.contains(n))
            .collect();
        Verdict::Holds {
            exhaustive,
            stimuli,
            vacuous,
        }
    }

    /// Simulates one stimulus, returning the trace. The design is compiled
    /// once and cached (an earlier revision re-lowered the AST on every
    /// call).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`].
    pub fn simulate(&self, design: &Design, stim: &Stimulus) -> Result<Trace, VerifyError> {
        let mut sim = Simulator::from_compiled(compiled_for(design, self.opt));
        for t in 0..stim.len() {
            sim.step(&stim.cycle(t))?;
        }
        Ok(sim.into_trace())
    }

    /// Replays a counterexample and returns its trace (for CoT evidence).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`].
    pub fn replay(&self, design: &Design, cex: &CounterExample) -> Result<Trace, VerifyError> {
        self.simulate(design, &cex.stimulus)
    }
}

/// Adapter giving the fuzzer assertion feedback through the compiled
/// checker (property semantics stay in this crate).
struct CheckerOracle<'a> {
    checker: &'a CompiledChecker,
}

impl AssertionOracle for CheckerOracle<'_> {
    fn assertions(&self) -> usize {
        self.checker.assertion_count()
    }

    fn failed(&self, trace: &Trace, cov: &mut CovMap) -> Result<bool, String> {
        let out = self
            .checker
            .outcomes_cov(trace, cov)
            .map_err(|e| e.to_string())?;
        Ok(out.iter().any(|(_, o)| o.is_failure()))
    }
}

/// Outcome of simulating and monitoring one stimulus.
enum StimulusOutcome {
    /// Assertion failures were observed.
    Fails(CounterExample),
    /// No failure; the named assertions completed non-vacuously.
    Passes(Vec<String>),
}

fn run_stimulus(
    compiled: &Arc<CompiledDesign>,
    checker: &CompiledChecker,
    stim: Stimulus,
) -> Result<StimulusOutcome, VerifyError> {
    run_stimulus_counted(compiled, checker, stim, None)
}

/// [`run_stimulus`] with optional bytecode op accounting: when `ops` is
/// given, the simulator counts dispatched ops into it (a pure function
/// of bytecode and stimulus, so deterministic). Only the sequential
/// enumeration sweep passes `Some` — parallel paths would make the sum
/// depend on how many stimuli each racing worker executed.
fn run_stimulus_counted(
    compiled: &Arc<CompiledDesign>,
    checker: &CompiledChecker,
    stim: Stimulus,
    ops: Option<&mut u64>,
) -> Result<StimulusOutcome, VerifyError> {
    let mut sim = Simulator::from_compiled(Arc::clone(compiled));
    if ops.is_some() {
        sim.enable_op_count();
    }
    for t in 0..stim.len() {
        sim.step(&stim.cycle(t))?;
    }
    if let Some(ops) = ops {
        *ops = ops.saturating_add(sim.ops_executed());
    }
    let trace = sim.into_trace();
    let results = checker.outcomes(&trace)?;
    Ok(classify_outcomes(&results, &stim))
}

/// Folds one stimulus's per-directive monitor outcomes into a
/// [`StimulusOutcome`], cloning the stimulus into the counterexample
/// only on failure. Shared between the scalar runner and the
/// lane-batched group paths so both classify identically.
fn classify_outcomes(
    results: &[(&asv_verilog::ast::AssertDirective, CheckOutcome)],
    stim: &Stimulus,
) -> StimulusOutcome {
    let mut failures = Vec::new();
    let mut passed = Vec::new();
    for (dir, outcome) in results {
        match outcome {
            CheckOutcome::Failed(f) => failures.extend(f.clone()),
            CheckOutcome::Passed { .. } => passed.push(dir.log_name().to_string()),
            CheckOutcome::Vacuous => {}
        }
    }
    if failures.is_empty() {
        StimulusOutcome::Passes(passed)
    } else {
        let logs = failures.iter().map(ToString::to_string).collect();
        StimulusOutcome::Fails(CounterExample {
            stimulus: stim.clone(),
            failures,
            logs,
        })
    }
}

/// Lane width for batched stimulus simulation: each group of this many
/// stimuli runs through one SoA bytecode pass
/// ([`asv_sim::run_stimulus_group`], bit-identical per lane to the
/// scalar loop it replaces). Deliberately a private constant rather
/// than a [`Verifier`] field — `Verifier` derives `Hash`/`Serialize`
/// as the service cache key, and the lane width must never affect
/// verdicts or cache identity.
const LANES: usize = 16;

/// Result of a worker's earliest "event" (error or failure) at a stimulus
/// index; the merge keeps the lowest index so the parallel fallback is
/// bit-identical to the sequential loop it replaced.
type WorkerEvent = (usize, Result<CounterExample, VerifyError>);

/// Checks random stimuli across `std::thread::scope` workers.
///
/// Returns `Ok(Ok(fired))` when every stimulus passes, `Ok(Err(cex))` for
/// the failure with the lowest stimulus index, and `Err(e)` for the error
/// with the lowest index (errors and failures compete on index, exactly
/// like the sequential loop).
#[allow(clippy::type_complexity)]
fn check_stimuli_parallel(
    compiled: &Arc<CompiledDesign>,
    checker: &CompiledChecker,
    stimuli: Vec<Stimulus>,
    budget: &Budget,
) -> Result<Result<std::collections::BTreeSet<String>, CounterExample>, VerifyError> {
    if stimuli.is_empty() {
        // `random_runs: 0` — the sequential loop checked nothing and held.
        return Ok(Ok(std::collections::BTreeSet::new()));
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(stimuli.len())
        .max(1);
    // Lowest stimulus index with an event so far: later indices can be
    // skipped by every worker (they can never win the merge).
    let best = AtomicUsize::new(usize::MAX);
    let chunk = stimuli.len().div_ceil(workers);
    let mut events: Vec<Option<WorkerEvent>> = Vec::new();
    let mut fired_sets: Vec<std::collections::BTreeSet<String>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for (p, part) in stimuli.chunks(chunk).enumerate() {
            let best = &best;
            let part_start = p * chunk;
            handles.push(scope.spawn(move || {
                let mut fired = std::collections::BTreeSet::new();
                let mut event: Option<WorkerEvent> = None;
                // Lane-batched drain: each group of LANES stimuli runs as
                // one SoA bytecode pass, then every lane's trace is judged
                // in stimulus-index order. Lanes past a failing one are
                // simulated but their outcomes discarded — wasted work at
                // most once per worker, never an observable difference.
                'groups: for (g, group) in part.chunks(LANES).enumerate() {
                    let start = part_start + g * LANES;
                    // Plain poll, never a fault probe: concurrent workers
                    // drawing from one per-probe hit counter would be
                    // order-dependent.
                    if budget.check().is_err() {
                        break; // the whole check is being torn down
                    }
                    if start >= best.load(Ordering::Relaxed) {
                        break; // an earlier event already wins the merge
                    }
                    let runs = run_stimulus_group(compiled, group, LANES, None, false);
                    // One shared monitor scratch stack for the whole group.
                    let mut judged = checker
                        .outcomes_lanes(
                            runs.iter()
                                .filter_map(|o| o.as_ref().ok())
                                .map(|r| &r.trace),
                        )
                        .into_iter();
                    for (j, outcome) in runs.iter().enumerate() {
                        let idx = start + j;
                        let res = match outcome {
                            Ok(_) => judged
                                .next()
                                .expect("one judgment per surviving lane")
                                .map(|results| classify_outcomes(&results, &group[j]))
                                .map_err(VerifyError::from),
                            Err(e) => Err(VerifyError::Sim(e.clone())),
                        };
                        match res {
                            Ok(StimulusOutcome::Passes(names)) => fired.extend(names),
                            Ok(StimulusOutcome::Fails(cex)) => {
                                event = Some((idx, Ok(cex)));
                                best.fetch_min(idx, Ordering::Relaxed);
                                break 'groups;
                            }
                            Err(e) => {
                                event = Some((idx, Err(e)));
                                best.fetch_min(idx, Ordering::Relaxed);
                                break 'groups;
                            }
                        }
                    }
                }
                (event, fired)
            }));
        }
        for h in handles {
            let (event, fired) = h.join().expect("verification worker panicked");
            events.push(event);
            fired_sets.push(fired);
        }
    });
    // A poisoned token or blown deadline means whatever was merged so far
    // is a partial view and must not be reported.
    budget.check()?;
    let earliest = events.into_iter().flatten().min_by_key(|(idx, _)| *idx);
    match earliest {
        Some((_, Ok(cex))) => Ok(Err(cex)),
        Some((_, Err(e))) => Err(e),
        None => {
            let mut fired = std::collections::BTreeSet::new();
            for set in fired_sets {
                fired.extend(set);
            }
            Ok(Ok(fired))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_verilog::compile;

    const GOOD: &str = r#"
module latch1(input clk, input rst_n, input d, output reg q);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) q <= 1'b0;
    else q <= d;
  end
  property follow;
    @(posedge clk) disable iff (!rst_n) d |-> ##1 q;
  endproperty
  chk: assert property (follow) else $error("q must follow d");
endmodule
"#;

    const BAD: &str = r#"
module latch1(input clk, input rst_n, input d, output reg q);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) q <= 1'b0;
    else q <= !d;
  end
  property follow;
    @(posedge clk) disable iff (!rst_n) d |-> ##1 q;
  endproperty
  chk: assert property (follow) else $error("q must follow d");
endmodule
"#;

    #[test]
    fn good_design_holds_exhaustively() {
        let d = compile(GOOD).expect("compile");
        let v = Verifier {
            depth: 6,
            ..Verifier::default()
        };
        match v.check(&d).expect("verify") {
            Verdict::Holds {
                exhaustive,
                vacuous,
                ..
            } => {
                assert!(exhaustive, "symbolic engine proves the bound");
                assert!(vacuous.is_empty());
            }
            Verdict::Fails(cex) => panic!("unexpected failure: {:?}", cex.logs),
            Verdict::Inconclusive { tried } => panic!("unexpected inconclusive: {tried:?}"),
        }
    }

    #[test]
    fn simulation_engine_still_enumerates() {
        let d = compile(GOOD).expect("compile");
        let v = Verifier {
            depth: 6,
            engine: Engine::Simulation,
            ..Verifier::default()
        };
        match v.check(&d).expect("verify") {
            Verdict::Holds {
                exhaustive,
                stimuli,
                vacuous,
            } => {
                assert!(exhaustive, "1-bit input over 6 cycles is enumerable");
                assert_eq!(stimuli, 64);
                assert!(vacuous.is_empty());
            }
            Verdict::Fails(cex) => panic!("unexpected failure: {:?}", cex.logs),
            Verdict::Inconclusive { tried } => panic!("unexpected inconclusive: {tried:?}"),
        }
    }

    #[test]
    fn bad_design_yields_counterexample_with_logs() {
        let d = compile(BAD).expect("compile");
        let v = Verifier {
            depth: 6,
            ..Verifier::default()
        };
        let Verdict::Fails(cex) = v.check(&d).expect("verify") else {
            panic!("bug must be found");
        };
        assert!(!cex.logs.is_empty());
        assert!(cex.logs[0].contains("failed assertion latch1.chk"));
        // Counterexample must replay to the same failure.
        let trace = v.replay(&d, &cex).expect("replay");
        let logs = crate::monitor::failure_logs(&d.module, &trace).expect("monitor");
        assert_eq!(logs, cex.logs);
    }

    #[test]
    fn symbolic_and_simulation_agree_on_the_latch() {
        let d = compile(BAD).expect("compile");
        let sym = Verifier {
            depth: 6,
            engine: Engine::Symbolic,
            ..Verifier::default()
        };
        let sim = Verifier {
            depth: 6,
            engine: Engine::Simulation,
            ..Verifier::default()
        };
        assert!(sym.check(&d).expect("symbolic").is_failure());
        assert!(sim.check(&d).expect("simulation").is_failure());
    }

    #[test]
    fn no_assertions_is_an_error() {
        let d = compile("module m(input a, output y); assign y = a; endmodule").expect("compile");
        assert_eq!(Verifier::new().check(&d), Err(VerifyError::NoAssertions));
    }

    #[test]
    fn wide_inputs_fall_back_to_random() {
        // Under Engine::Auto this scenario is no longer statistically
        // hollow: the symbolic engine proves the whole 8-bit × 8-cycle
        // space. Engine::Simulation preserves the old sampling behaviour.
        let src = r#"
module add1(input clk, input rst_n, input [7:0] a, output reg [8:0] s);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) s <= 9'd0;
    else s <= a + 9'd1;
  end
  p_inc: assert property (@(posedge clk) disable iff (!rst_n)
    1'b1 |-> ##1 s == $past(a, 1) + 9'd1) else $error("bad sum");
endmodule
"#;
        let d = compile(src).expect("compile");
        let auto = Verifier {
            depth: 8,
            random_runs: 8,
            ..Verifier::default()
        };
        match auto.check(&d).expect("verify") {
            Verdict::Holds {
                exhaustive,
                stimuli,
                ..
            } => {
                assert!(exhaustive, "symbolic engine must prove the bound");
                assert_eq!(stimuli, 0, "no simulation needed for the proof");
            }
            Verdict::Fails(cex) => panic!("unexpected failure: {:?}", cex.logs),
            Verdict::Inconclusive { tried } => panic!("unexpected inconclusive: {tried:?}"),
        }
        let sampled = Verifier {
            engine: Engine::Simulation,
            ..auto
        };
        match sampled.check(&d).expect("verify") {
            Verdict::Holds {
                exhaustive,
                stimuli,
                ..
            } => {
                assert!(!exhaustive, "8-bit × 8 cycles cannot be enumerated");
                assert_eq!(stimuli, 8);
            }
            Verdict::Fails(cex) => panic!("unexpected failure: {:?}", cex.logs),
            Verdict::Inconclusive { tried } => panic!("unexpected inconclusive: {tried:?}"),
        }
    }

    #[test]
    fn rare_trigger_bug_is_refuted_by_auto() {
        // The buggy consequent fires only when a == 8'hA5 — a 1-in-256
        // event per cycle that seeded sampling misses, but Engine::Auto
        // refutes symbolically with a replaying counterexample.
        let src = r#"
module rare(input clk, input rst_n, input [7:0] a, output reg bad);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) bad <= 1'b0;
    else bad <= (a == 8'hA5);
  end
  p_rare: assert property (@(posedge clk) disable iff (!rst_n)
    a == 8'hA5 |-> ##1 !bad) else $error("rare trigger");
endmodule
"#;
        let d = compile(src).expect("compile");
        let sampled = Verifier {
            depth: 8,
            random_runs: 8,
            engine: Engine::Simulation,
            ..Verifier::default()
        };
        match sampled.check(&d).expect("verify") {
            Verdict::Holds { vacuous, .. } => {
                assert_eq!(
                    vacuous,
                    vec!["p_rare".to_string()],
                    "sampling must miss the rare trigger entirely"
                );
            }
            Verdict::Fails(_) => panic!("8 random runs cannot hit a 1/256 trigger with this seed"),
            Verdict::Inconclusive { tried } => panic!("unexpected inconclusive: {tried:?}"),
        }
        let auto = Verifier {
            depth: 8,
            random_runs: 8,
            ..Verifier::default()
        };
        let Verdict::Fails(cex) = auto.check(&d).expect("verify") else {
            panic!("symbolic engine must refute the rare-trigger bug");
        };
        assert!(cex.logs[0].contains("failed assertion rare.p_rare"));
        // Bit-identical replay on the compiled simulator.
        let trace = auto.replay(&d, &cex).expect("replay");
        let logs = crate::monitor::failure_logs(&d.module, &trace).expect("monitor");
        assert_eq!(logs, cex.logs);
    }

    #[test]
    fn forced_symbolic_engine_rejects_latch_designs() {
        let src = r#"
module lat(input clk, input en, input d, output reg q);
  always @(*) begin if (en) q = d; end
  p: assert property (@(posedge clk) 1'b1 |-> 1'b1);
endmodule
"#;
        let d = compile(src).expect("compile");
        let v = Verifier {
            engine: Engine::Symbolic,
            ..Verifier::default()
        };
        assert!(matches!(v.check(&d), Err(VerifyError::Symbolic(_))));
        // Auto falls back to simulation and still produces a verdict.
        let auto = Verifier::default();
        assert!(auto.check(&d).is_ok());
    }

    #[test]
    fn verdict_is_deterministic() {
        let d = compile(BAD).expect("compile");
        let v = Verifier::default();
        assert_eq!(v.check(&d).expect("a"), v.check(&d).expect("b"));
    }

    #[test]
    fn zero_random_runs_hold_trivially() {
        // Wide inputs + random_runs: 0 must reproduce the sequential
        // loop's "checked nothing, held vacuously" verdict, not panic.
        let src = "module z(input clk, input [9:0] a, output reg [9:0] q);\n\
             always @(posedge clk) q <= a;\n\
             p: assert property (@(posedge clk) 1'b1 |-> 1'b1);\nendmodule";
        let d = compile(src).expect("compile");
        let v = Verifier {
            random_runs: 0,
            engine: Engine::Simulation,
            ..Verifier::default()
        };
        match v.check(&d).expect("verify") {
            Verdict::Holds {
                exhaustive,
                stimuli,
                vacuous,
            } => {
                assert!(!exhaustive);
                assert_eq!(stimuli, 0);
                assert_eq!(vacuous, vec!["p".to_string()]);
            }
            Verdict::Fails(cex) => panic!("nothing was checked: {:?}", cex.logs),
            Verdict::Inconclusive { tried } => panic!("unexpected inconclusive: {tried:?}"),
        }
    }

    /// Rare trigger (`a == 16'hBEEF`) in a design the symbolic engine
    /// rejects (latch-style combinational block): the scenario class the
    /// fuzzing engine exists for.
    const LATCH_RARE: &str = r#"
module lrare(input clk, input rst_n, input [15:0] a, output reg bad);
  reg shadow;
  always @(*) begin if (a[0]) shadow = a[1]; end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) bad <= 1'b0;
    else bad <= (a == 16'hBEEF);
  end
  p_rare: assert property (@(posedge clk) disable iff (!rst_n)
    a == 16'hBEEF |-> ##1 !bad) else $error("rare trigger");
endmodule
"#;

    #[test]
    fn fuzz_finds_rare_trigger_where_sampling_misses() {
        let d = compile(LATCH_RARE).expect("compile");
        assert!(
            matches!(
                Verifier {
                    engine: Engine::Symbolic,
                    ..Verifier::default()
                }
                .check(&d),
                Err(VerifyError::Symbolic(_))
            ),
            "scenario must be outside the symbolic subset"
        );
        let budget = Verifier {
            depth: 8,
            random_runs: 64,
            ..Verifier::default()
        };
        // Blind sampling at this budget cannot hit a 1/65536 trigger...
        let sampled = Verifier {
            engine: Engine::Simulation,
            ..budget
        };
        match sampled.check(&d).expect("verify") {
            Verdict::Holds { vacuous, .. } => assert_eq!(vacuous, vec!["p_rare".to_string()]),
            Verdict::Fails(_) => panic!("sampling cannot hit a 1/65536 trigger at budget 64"),
            Verdict::Inconclusive { tried } => panic!("unexpected inconclusive: {tried:?}"),
        }
        // ...the dictionary-guided fuzzer refutes it at the same budget.
        let fuzzed = Verifier {
            engine: Engine::Fuzz,
            ..budget
        };
        let Verdict::Fails(cex) = fuzzed.check(&d).expect("verify") else {
            panic!("fuzzer must find the rare trigger");
        };
        assert!(cex.logs[0].contains("failed assertion lrare.p_rare"));
        // Counterexamples replay bit-identically, like every engine's.
        let trace = fuzzed.replay(&d, &cex).expect("replay");
        let logs = crate::monitor::failure_logs(&d.module, &trace).expect("monitor");
        assert_eq!(logs, cex.logs);
        // Engine::Auto routes this out-of-subset design to the fuzzer too.
        assert!(budget.check(&d).expect("auto").is_failure());
    }

    #[test]
    fn fuzz_verdict_is_deterministic() {
        let d = compile(LATCH_RARE).expect("compile");
        let v = Verifier {
            depth: 8,
            random_runs: 48,
            engine: Engine::Fuzz,
            ..Verifier::default()
        };
        assert_eq!(v.check(&d).expect("a"), v.check(&d).expect("b"));
    }

    #[test]
    fn fuzz_reports_non_vacuous_holds_on_safe_designs() {
        // Same rare antecedent, correct consequent: the fuzzer still digs
        // up the trigger, so the hold is non-vacuous where sampling's is
        // vacuous.
        let src = LATCH_RARE.replace("bad <= (a == 16'hBEEF);", "bad <= 1'b0;");
        let d = compile(&src).expect("compile");
        let v = Verifier {
            depth: 8,
            random_runs: 64,
            engine: Engine::Fuzz,
            ..Verifier::default()
        };
        match v.check(&d).expect("verify") {
            Verdict::Holds {
                exhaustive,
                stimuli,
                vacuous,
            } => {
                assert!(!exhaustive);
                assert_eq!(stimuli, 64);
                assert!(
                    vacuous.is_empty(),
                    "fuzzer must exercise the rare antecedent: {vacuous:?}"
                );
            }
            Verdict::Fails(cex) => panic!("safe design failed: {:?}", cex.logs),
            Verdict::Inconclusive { tried } => panic!("unexpected inconclusive: {tried:?}"),
        }
    }

    #[test]
    fn portfolio_is_bit_identical_to_auto() {
        // In-subset Holds (symbolic vs enumeration race), in-subset Fails
        // (symbolic canonical), and out-of-subset rare trigger (concrete
        // chain): every verdict must equal sequential Engine::Auto's.
        // (Debug builds additionally re-assert this inside every
        // portfolio check.)
        for (src, depth, runs) in [(GOOD, 6, 48), (BAD, 6, 48), (LATCH_RARE, 8, 64)] {
            let d = compile(src).expect("compile");
            let auto = Verifier {
                depth,
                random_runs: runs,
                ..Verifier::default()
            };
            let portfolio = Verifier {
                engine: Engine::Portfolio,
                ..auto
            };
            assert_eq!(
                portfolio.check(&d),
                auto.check(&d),
                "portfolio must reproduce Auto's verdict"
            );
            // And it is stable across repeated races.
            assert_eq!(portfolio.check(&d), portfolio.check(&d));
        }
    }

    #[test]
    fn poisoned_token_cancels_every_engine() {
        let d = compile(BAD).expect("compile");
        let token = CancelToken::new();
        token.cancel();
        for engine in [
            Engine::Auto,
            Engine::Symbolic,
            Engine::Fuzz,
            Engine::Portfolio,
        ] {
            let v = Verifier {
                depth: 6,
                engine,
                ..Verifier::default()
            };
            assert_eq!(
                v.check_cancellable(&d, Some(&token)),
                Err(VerifyError::Cancelled),
                "{engine:?} must observe the poisoned token"
            );
        }
    }

    #[test]
    fn expired_deadline_degrades_to_inconclusive() {
        // Deadline semantics without sleeps: an injected clock already
        // past its limit exhausts every ladder rung before it simulates
        // or solves anything, and Auto reports the full attempt trace.
        use asv_sim::cancel::{ManualClock, Resource};
        let d = compile(BAD).expect("compile");
        let clock = ManualClock::new();
        let budget = Budget::unbounded().with_manual_deadline(clock.clone(), 3);
        clock.advance(4);
        let v = Verifier {
            depth: 6,
            ..Verifier::default()
        };
        let verdict = v.check_budgeted(&d, &budget).expect("degrades, not errors");
        let Verdict::Inconclusive { tried } = &verdict else {
            panic!("expired deadline must be inconclusive, got {verdict:?}");
        };
        let engines: Vec<Engine> = tried.iter().map(|t| t.engine).collect();
        assert_eq!(
            engines,
            vec![
                Engine::Symbolic,
                Engine::Simulation,
                Engine::Fuzz,
                Engine::Simulation
            ],
            "ladder order: symbolic, enumeration, fuzzing, sampling"
        );
        for t in tried {
            match t.exhausted {
                Some(e) => assert_eq!(e.resource, Resource::WallClock, "{t:?}"),
                None => panic!("every rung must report structured exhaustion: {t:?}"),
            }
        }
        // Same expired budget, same trace: the ladder is deterministic.
        assert_eq!(v.check_budgeted(&d, &budget), Ok(verdict));
    }

    #[test]
    fn forced_engines_surface_structured_exhaustion() {
        use asv_sim::cancel::{ManualClock, Resource};
        let d = compile(BAD).expect("compile");
        let clock = ManualClock::new();
        let budget = Budget::unbounded().with_manual_deadline(clock.clone(), 2);
        clock.advance(3);
        for engine in [Engine::Symbolic, Engine::Simulation, Engine::Fuzz] {
            let v = Verifier {
                depth: 6,
                engine,
                ..Verifier::default()
            };
            match v.check_budgeted(&d, &budget) {
                Err(VerifyError::Exhausted(e)) => {
                    assert_eq!(e.resource, Resource::WallClock, "{engine:?}");
                    assert_eq!((e.spent, e.limit), (3, 2), "{engine:?}");
                }
                other => panic!("{engine:?} must exhaust, got {other:?}"),
            }
        }
    }

    #[test]
    fn roomy_budget_matches_unbudgeted_verdict() {
        // A budget with headroom must not perturb any verdict.
        for src in [GOOD, BAD] {
            let d = compile(src).expect("compile");
            let budget = Budget::unbounded()
                .with_deadline(Duration::from_secs(3600))
                .with_max_conflicts(1 << 30)
                .with_max_fuzz_rounds(1 << 20)
                .with_max_aig_nodes(1 << 30);
            for engine in [Engine::Auto, Engine::Portfolio, Engine::Simulation] {
                let v = Verifier {
                    depth: 6,
                    engine,
                    ..Verifier::default()
                };
                assert_eq!(v.check_budgeted(&d, &budget), v.check(&d), "{engine:?}");
            }
        }
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_panics_degrade_every_rung_to_inconclusive() {
        // A plan that fires a panic at every probe takes out all four
        // rungs; the ladder isolates each one and reports the trace
        // instead of unwinding.
        use asv_sim::fault::{FaultKinds, FaultPlan};
        asv_sim::fault::silence_injected_panics();
        let d = compile(BAD).expect("compile");
        let plan = FaultPlan {
            rate_per_1024: 1024,
            victims_per_16: 16,
            kinds: FaultKinds::PANIC,
            ..FaultPlan::new(7)
        };
        let budget = Budget::unbounded().with_fault(plan.session(1));
        let v = Verifier {
            depth: 6,
            ..Verifier::default()
        };
        let verdict = v.check_budgeted(&d, &budget).expect("degrades, not errors");
        let Verdict::Inconclusive { tried } = &verdict else {
            panic!("all-panic plan must be inconclusive, got {verdict:?}");
        };
        assert_eq!(tried.len(), 4, "{tried:?}");
        for t in tried {
            assert!(
                t.reason.contains("injected fault at probe"),
                "panic payloads must be preserved: {t:?}"
            );
        }
        // Same plan, same seed: the chaos outcome is reproducible.
        assert_eq!(v.check_budgeted(&d, &budget), Ok(verdict));
    }

    #[test]
    fn sampling_deduplicates_repeated_stimuli() {
        // One 1-bit input over 2 cycles: only 4 distinct stimuli exist, so
        // 32 sampled runs must collapse below 32 (no repeated runs across
        // threads).
        let src = "module n(input clk, input rst_n, input d, output reg q);\n\
             always @(posedge clk or negedge rst_n) begin\n\
               if (!rst_n) q <= 1'b0; else q <= d;\n\
             end\n\
             p: assert property (@(posedge clk) disable iff (!rst_n) d |-> ##1 q);\nendmodule";
        let d = compile(src).expect("compile");
        let v = Verifier {
            depth: 2,
            random_runs: 32,
            exhaustive_limit: 1, // force the sampling path
            engine: Engine::Simulation,
            ..Verifier::default()
        };
        match v.check(&d).expect("verify") {
            Verdict::Holds { stimuli, .. } => {
                assert!(stimuli <= 4, "4 distinct stimuli exist, ran {stimuli}");
                assert!(stimuli >= 2, "dedup must not collapse everything");
            }
            Verdict::Fails(cex) => panic!("design holds: {:?}", cex.logs),
            Verdict::Inconclusive { tried } => panic!("unexpected inconclusive: {tried:?}"),
        }
    }

    #[test]
    fn parallel_sampling_is_deterministic() {
        // Wide inputs force the random path; a bug that fires on nearly
        // every stimulus exercises the lowest-index-wins merge.
        let src = r#"
module wsum(input clk, input rst_n, input [9:0] a, output reg [9:0] s);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) s <= 10'd0;
    else s <= a + 10'd2;
  end
  p_sum: assert property (@(posedge clk) disable iff (!rst_n)
    1'b1 |-> ##1 s == $past(a, 1) + 10'd1) else $error("bad sum");
endmodule
"#;
        let d = compile(src).expect("compile");
        let v = Verifier {
            depth: 6,
            random_runs: 16,
            engine: Engine::Simulation,
            ..Verifier::default()
        };
        let a = v.check(&d).expect("a");
        let b = v.check(&d).expect("b");
        assert_eq!(a, b, "parallel merge must be deterministic");
        assert!(a.is_failure());
    }
}
