//! Bounded model checking: the reproduction's substitute for SymbiYosys.
//!
//! The paper uses SymbiYosys twice: (1) to prove generated SVAs valid on
//! the golden design, and (2) to confirm injected bugs trip the SVAs and to
//! produce the failure logs. Both uses only need a *refutation oracle with
//! traces*. [`Verifier::check`] provides that by driving the design with
//! the complete input space up to a bounded depth when the space is small
//! (a genuine bounded proof), and with seeded random stimulus otherwise.

use crate::monitor::{AssertionFailure, CheckOutcome, CompiledChecker, MonitorError};
use asv_sim::compile::CompiledDesign;
use asv_sim::exec::{SimError, Simulator};
use asv_sim::stimulus::{Stimulus, StimulusGen};
use asv_sim::trace::Trace;
use asv_verilog::sema::Design;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Result of verifying a design's assertions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// No failure found. `exhaustive` is true when the whole input space up
    /// to the depth was enumerated (bounded proof), false when sampled.
    Holds {
        /// Whether the search was exhaustive up to the depth.
        exhaustive: bool,
        /// Number of stimuli simulated.
        stimuli: usize,
        /// Assertions that never fired non-vacuously on any stimulus
        /// (empty = every check was exercised).
        vacuous: Vec<String>,
    },
    /// A counterexample was found.
    Fails(CounterExample),
}

impl Verdict {
    /// True for [`Verdict::Fails`].
    pub fn is_failure(&self) -> bool {
        matches!(self, Verdict::Fails(_))
    }

    /// True when the design holds and every assertion fired at least once
    /// (the correctness notion used by the evaluation judge).
    pub fn holds_non_vacuously(&self) -> bool {
        matches!(self, Verdict::Holds { vacuous, .. } if vacuous.is_empty())
    }

    /// True when the design holds but no assertion ever fired.
    pub fn all_vacuous(&self, total_assertions: usize) -> bool {
        matches!(self, Verdict::Holds { vacuous, .. } if vacuous.len() == total_assertions)
    }
}

/// A concrete failing run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterExample {
    /// The stimulus that exposed the failure.
    pub stimulus: Stimulus,
    /// All assertion failures observed on that stimulus.
    pub failures: Vec<AssertionFailure>,
    /// Rendered log lines (the `Logs` input of the repair task).
    pub logs: Vec<String>,
}

/// Errors raised during verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// Simulation failed (e.g. combinational divergence after a mutation).
    Sim(SimError),
    /// Monitoring failed.
    Monitor(MonitorError),
    /// The design has no assertions to check.
    NoAssertions,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Sim(e) => write!(f, "simulation error: {e}"),
            VerifyError::Monitor(e) => write!(f, "monitor error: {e}"),
            VerifyError::NoAssertions => write!(f, "design has no assertions"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<SimError> for VerifyError {
    fn from(e: SimError) -> Self {
        VerifyError::Sim(e)
    }
}

impl From<MonitorError> for VerifyError {
    fn from(e: MonitorError) -> Self {
        VerifyError::Monitor(e)
    }
}

/// Bounded verifier configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Verifier {
    /// Post-reset cycles per run.
    pub depth: usize,
    /// Reset cycles at the head of every run.
    pub reset_cycles: usize,
    /// Cap on exhaustively enumerated stimuli before falling back to
    /// random sampling.
    pub exhaustive_limit: u64,
    /// Number of random stimuli when sampling.
    pub random_runs: usize,
    /// RNG seed for random stimulus.
    pub seed: u64,
}

impl Default for Verifier {
    fn default() -> Self {
        Verifier {
            depth: 12,
            reset_cycles: 2,
            exhaustive_limit: 4096,
            random_runs: 48,
            seed: 0xA55E_7501,
        }
    }
}

impl Verifier {
    /// Creates a verifier with default bounds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks all assertions of `design`.
    ///
    /// The design is compiled once ([`CompiledDesign`]) and its assertions
    /// are compiled once ([`CompiledChecker`]); each stimulus then restarts
    /// the simulator with an O(#signals) state reset and evaluates
    /// properties as bytecode over the trace.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::NoAssertions`] when the design has no
    /// assertion directives, and propagates simulation/monitoring errors.
    pub fn check(&self, design: &Design) -> Result<Verdict, VerifyError> {
        if design.module.assertions().count() == 0 {
            return Err(VerifyError::NoAssertions);
        }
        let compiled = Arc::new(CompiledDesign::compile(design));
        // State index == trace column: the checker can be built from the
        // compiled design's interner before any trace exists.
        let col = |name: &str| compiled.sig(name).map(|s| s.idx());
        let checker = CompiledChecker::new(&design.module, col)?;
        let gen = StimulusGen::new(design);
        let (stimuli, exhaustive) =
            match gen.exhaustive(self.depth, self.reset_cycles, self.exhaustive_limit) {
                Some(all) => (all, true),
                None => {
                    let mut runs = Vec::with_capacity(self.random_runs);
                    for i in 0..self.random_runs {
                        runs.push(gen.random_seeded(
                            self.depth,
                            self.reset_cycles,
                            self.seed.wrapping_add(i as u64),
                        ));
                    }
                    (runs, false)
                }
            };
        let count = stimuli.len();
        let mut fired: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for stim in stimuli {
            let mut sim = Simulator::from_compiled(Arc::clone(&compiled));
            for t in 0..stim.len() {
                sim.step(&stim.cycle(t))?;
            }
            let trace = sim.into_trace();
            let results = checker.outcomes(&trace)?;
            let mut failures = Vec::new();
            for (dir, outcome) in &results {
                match outcome {
                    CheckOutcome::Failed(f) => failures.extend(f.clone()),
                    CheckOutcome::Passed { .. } => {
                        fired.insert(dir.log_name().to_string());
                    }
                    CheckOutcome::Vacuous => {}
                }
            }
            if !failures.is_empty() {
                let logs = failures.iter().map(ToString::to_string).collect();
                return Ok(Verdict::Fails(CounterExample {
                    stimulus: stim,
                    failures,
                    logs,
                }));
            }
        }
        let vacuous: Vec<String> = design
            .module
            .assertions()
            .map(|a| a.log_name().to_string())
            .filter(|n| !fired.contains(n))
            .collect();
        Ok(Verdict::Holds {
            exhaustive,
            stimuli: count,
            vacuous,
        })
    }

    /// Simulates one stimulus, returning the trace.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`].
    pub fn simulate(&self, design: &Design, stim: &Stimulus) -> Result<Trace, VerifyError> {
        let mut sim = Simulator::new(design);
        for t in 0..stim.len() {
            sim.step(&stim.cycle(t))?;
        }
        Ok(sim.into_trace())
    }

    /// Replays a counterexample and returns its trace (for CoT evidence).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`].
    pub fn replay(&self, design: &Design, cex: &CounterExample) -> Result<Trace, VerifyError> {
        self.simulate(design, &cex.stimulus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_verilog::compile;

    const GOOD: &str = r#"
module latch1(input clk, input rst_n, input d, output reg q);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) q <= 1'b0;
    else q <= d;
  end
  property follow;
    @(posedge clk) disable iff (!rst_n) d |-> ##1 q;
  endproperty
  chk: assert property (follow) else $error("q must follow d");
endmodule
"#;

    const BAD: &str = r#"
module latch1(input clk, input rst_n, input d, output reg q);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) q <= 1'b0;
    else q <= !d;
  end
  property follow;
    @(posedge clk) disable iff (!rst_n) d |-> ##1 q;
  endproperty
  chk: assert property (follow) else $error("q must follow d");
endmodule
"#;

    #[test]
    fn good_design_holds_exhaustively() {
        let d = compile(GOOD).expect("compile");
        let v = Verifier {
            depth: 6,
            ..Verifier::default()
        };
        match v.check(&d).expect("verify") {
            Verdict::Holds {
                exhaustive,
                stimuli,
                vacuous,
            } => {
                assert!(exhaustive, "1-bit input over 6 cycles is enumerable");
                assert_eq!(stimuli, 64);
                assert!(vacuous.is_empty());
            }
            Verdict::Fails(cex) => panic!("unexpected failure: {:?}", cex.logs),
        }
    }

    #[test]
    fn bad_design_yields_counterexample_with_logs() {
        let d = compile(BAD).expect("compile");
        let v = Verifier {
            depth: 6,
            ..Verifier::default()
        };
        let Verdict::Fails(cex) = v.check(&d).expect("verify") else {
            panic!("bug must be found");
        };
        assert!(!cex.logs.is_empty());
        assert!(cex.logs[0].contains("failed assertion latch1.chk"));
        // Counterexample must replay to the same failure.
        let trace = v.replay(&d, &cex).expect("replay");
        let logs = crate::monitor::failure_logs(&d.module, &trace).expect("monitor");
        assert_eq!(logs, cex.logs);
    }

    #[test]
    fn no_assertions_is_an_error() {
        let d = compile("module m(input a, output y); assign y = a; endmodule").expect("compile");
        assert_eq!(Verifier::new().check(&d), Err(VerifyError::NoAssertions));
    }

    #[test]
    fn wide_inputs_fall_back_to_random() {
        let src = r#"
module add1(input clk, input rst_n, input [7:0] a, output reg [8:0] s);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) s <= 9'd0;
    else s <= a + 9'd1;
  end
  p_inc: assert property (@(posedge clk) disable iff (!rst_n)
    1'b1 |-> ##1 s == $past(a, 1) + 9'd1) else $error("bad sum");
endmodule
"#;
        let d = compile(src).expect("compile");
        let v = Verifier {
            depth: 8,
            random_runs: 8,
            ..Verifier::default()
        };
        match v.check(&d).expect("verify") {
            Verdict::Holds {
                exhaustive,
                stimuli,
                ..
            } => {
                assert!(!exhaustive, "8-bit × 8 cycles cannot be enumerated");
                assert_eq!(stimuli, 8);
            }
            Verdict::Fails(cex) => panic!("unexpected failure: {:?}", cex.logs),
        }
    }

    #[test]
    fn verdict_is_deterministic() {
        let d = compile(BAD).expect("compile");
        let v = Verifier::default();
        assert_eq!(v.check(&d).expect("a"), v.check(&d).expect("b"));
    }
}
