//! Invariant mining: proposes SVA candidates from golden-design traces and
//! keeps only those the bounded verifier proves.
//!
//! This is the reproduction's substitute for Claude-3.5's SVA generation in
//! the paper's Stage 2 (rationale in DESIGN.md): the paper validates every
//! LLM-proposed SVA with SymbiYosys anyway, so the generator only needs to
//! *propose* plausible properties; the verifier is the arbiter either way.
//!
//! Templates mined:
//!
//! 1. implication between 1-bit signals: `a |-> b`, `a |-> ##1 b`,
//!    `a |-> ##1 !b` (and with `$rose(a)` antecedents);
//! 2. range bounds on multi-bit signals: `1 |-> sig <= K` for the maximum
//!    `K` observed;
//! 3. register follow: `1 |-> q == $past(q)` variants are deliberately not
//!    mined (they are almost always false); instead `en |-> ##1 q == K`
//!    one-hot style checks are covered by template 1 on decoded bits.

use crate::bmc::Verifier;
use crate::monitor::{CheckOutcome, CompiledChecker};
use asv_sim::stimulus::StimulusGen;
use asv_sim::trace::Trace;
use asv_verilog::ast::*;
use asv_verilog::sema::{Design, DriverKind};
use asv_verilog::Span;

/// Configuration for the miner.
#[derive(Debug, Clone, Copy)]
pub struct Miner {
    /// Random traces mined before proposing.
    pub mining_runs: usize,
    /// Cycles per mining trace.
    pub depth: usize,
    /// Seed for mining stimulus.
    pub seed: u64,
    /// Maximum number of surviving properties returned.
    pub max_properties: usize,
}

impl Default for Miner {
    fn default() -> Self {
        Miner {
            mining_runs: 12,
            depth: 16,
            seed: 0x51F7_ED01,
            max_properties: 8,
        }
    }
}

impl Miner {
    /// Creates a miner with default parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mines and verifies properties for a golden design.
    ///
    /// Returned properties all hold (bounded) and fired non-vacuously on at
    /// least one mining trace.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors from trace collection; candidate
    /// verification errors silently drop the candidate (a candidate that
    /// cannot be evaluated is not a valid SVA).
    pub fn mine(
        &self,
        design: &Design,
        verifier: &Verifier,
    ) -> Result<Vec<PropertyDecl>, asv_sim::SimError> {
        let traces = self.collect_traces(design)?;
        let candidates = self.propose(design, &traces);
        let mut kept = Vec::new();
        for prop in candidates {
            if kept.len() >= self.max_properties {
                break;
            }
            if !self.survives_traces(design, &prop, &traces) {
                continue;
            }
            // Formal gate: attach to the design and check.
            let checked = attach_property(design, &prop);
            match verifier.check(&checked) {
                Ok(v) if v.holds_non_vacuously() => kept.push(prop),
                _ => {}
            }
        }
        Ok(kept)
    }

    fn collect_traces(&self, design: &Design) -> Result<Vec<Trace>, asv_sim::SimError> {
        let gen = StimulusGen::new(design);
        let compiled = std::sync::Arc::new(asv_sim::CompiledDesign::compile(design));
        let mut traces = Vec::with_capacity(self.mining_runs);
        for i in 0..self.mining_runs {
            let stim = gen.random_seeded(self.depth, 2, self.seed.wrapping_add(i as u64));
            let mut sim = asv_sim::Simulator::from_compiled(std::sync::Arc::clone(&compiled));
            for t in 0..stim.len() {
                sim.step(&stim.cycle(t))?;
            }
            traces.push(sim.into_trace());
        }
        Ok(traces)
    }

    /// Generates candidate properties from templates.
    fn propose(&self, design: &Design, traces: &[Trace]) -> Vec<PropertyDecl> {
        let Some(clock) = design.clock().map(str::to_string) else {
            return Vec::new();
        };
        let reset = design.reset().map(|(n, al)| (n.to_string(), al));
        let special: Vec<&str> = {
            let mut v = vec![clock.as_str()];
            if let Some((r, _)) = &reset {
                v.push(r.as_str());
            }
            v
        };
        let one_bit: Vec<String> = design
            .signals
            .values()
            .filter(|s| s.width == 1 && !special.contains(&s.name.as_str()))
            .map(|s| s.name.clone())
            .collect();
        let multi_bit: Vec<(String, u32)> = design
            .signals
            .values()
            .filter(|s| s.width > 1 && s.driver != DriverKind::Input)
            .map(|s| (s.name.clone(), s.width))
            .collect();

        let mut props = Vec::new();
        let mut idx = 0usize;
        let mut push = |name_hint: &str, disable: Option<Expr>, body: PropExpr| {
            props.push(PropertyDecl {
                name: format!("mined_{name_hint}_{idx}"),
                clock: ClockSpec {
                    posedge: true,
                    signal: clock.clone(),
                },
                disable,
                body,
                span: Span::default(),
            });
            idx += 1;
        };
        let disable_expr = reset.as_ref().map(|(r, active_low)| {
            let id = ident(r);
            if *active_low {
                Expr::Unary {
                    op: UnaryOp::LogicNot,
                    operand: Box::new(id),
                    span: Span::default(),
                }
            } else {
                id
            }
        });

        // Template 1: 1-bit implications (same-cycle and next-cycle).
        for a in &one_bit {
            for b in &one_bit {
                if a == b {
                    continue;
                }
                for (delay, negated) in [(0u32, false), (1, false), (1, true)] {
                    let consequent_expr = if negated {
                        Expr::Unary {
                            op: UnaryOp::LogicNot,
                            operand: Box::new(ident(b)),
                            span: Span::default(),
                        }
                    } else {
                        ident(b)
                    };
                    let consequent = if delay == 0 {
                        SeqExpr::Expr(consequent_expr)
                    } else {
                        SeqExpr::Delay {
                            lhs: Box::new(SeqExpr::Expr(const_one())),
                            cycles: delay,
                            rhs: Box::new(SeqExpr::Expr(consequent_expr)),
                            span: Span::default(),
                        }
                    };
                    push(
                        "impl",
                        disable_expr.clone(),
                        PropExpr::Implication {
                            antecedent: SeqExpr::Expr(ident(a)),
                            overlapping: true,
                            consequent,
                            span: Span::default(),
                        },
                    );
                }
            }
        }

        // Template 2: observed upper bounds for multi-bit signals. Only
        // propose when the observed max is strictly below the type max
        // (otherwise the bound is trivial).
        for (name, width) in &multi_bit {
            let mut max_seen = 0u64;
            for tr in traces {
                for t in 0..tr.len() {
                    if let Some(v) = tr.value(t, name) {
                        max_seen = max_seen.max(v.bits());
                    }
                }
            }
            let type_max = if *width >= 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            if max_seen < type_max {
                let body = PropExpr::Implication {
                    antecedent: SeqExpr::Expr(const_one()),
                    overlapping: true,
                    consequent: SeqExpr::Expr(Expr::Binary {
                        op: BinaryOp::Le,
                        lhs: Box::new(ident(name)),
                        rhs: Box::new(Expr::Number {
                            value: max_seen,
                            width: Some(*width),
                            base: Some('d'),
                            span: Span::default(),
                        }),
                        span: Span::default(),
                    }),
                    span: Span::default(),
                };
                push("bound", disable_expr.clone(), body);
            }
        }
        props
    }

    /// Checks a candidate passes (non-vacuously somewhere) on all traces.
    fn survives_traces(&self, design: &Design, prop: &PropertyDecl, traces: &[Trace]) -> bool {
        let module = attach_property(design, prop).module;
        // All mining traces come from one design and share a column
        // layout: compile the candidate's assertions once.
        let Some(first) = traces.first() else {
            return false;
        };
        let Ok(checker) = CompiledChecker::new(&module, |name| first.col(name)) else {
            return false;
        };
        let mut fired = false;
        for tr in traces {
            match checker.outcomes(tr) {
                Ok(results) => {
                    for (_, outcome) in results {
                        match outcome {
                            CheckOutcome::Failed(_) => return false,
                            CheckOutcome::Passed { .. } => fired = true,
                            CheckOutcome::Vacuous => {}
                        }
                    }
                }
                Err(_) => return false,
            }
        }
        fired
    }
}

/// Returns a copy of `design` with `prop` declared and asserted. The copy
/// is used for candidate checking and for building the final SVA list.
pub fn attach_property(design: &Design, prop: &PropertyDecl) -> Design {
    let mut d = design.clone();
    d.module.items.push(Item::Property(prop.clone()));
    d.module.items.push(Item::Assert(AssertDirective {
        label: Some(format!("{}_assert", prop.name)),
        target: AssertTarget::Named(prop.name.clone()),
        message: Some(format!("property {} violated", prop.name)),
        span: Span::default(),
    }));
    d
}

fn ident(name: &str) -> Expr {
    Expr::Ident {
        name: name.to_string(),
        span: Span::default(),
    }
}

fn const_one() -> Expr {
    Expr::Number {
        value: 1,
        width: Some(1),
        base: Some('b'),
        span: Span::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_verilog::compile;

    /// A handshake where `gnt` always follows `req` one cycle later.
    const HANDSHAKE: &str = r#"
module hs(input clk, input rst_n, input req, output reg gnt);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) gnt <= 1'b0;
    else gnt <= req;
  end
endmodule
"#;

    #[test]
    fn mines_req_implies_next_gnt() {
        let d = compile(HANDSHAKE).expect("compile");
        let miner = Miner::default();
        let verifier = Verifier {
            depth: 8,
            ..Verifier::default()
        };
        let props = miner.mine(&d, &verifier).expect("mine");
        assert!(!props.is_empty(), "must mine at least one property");
        // One of the mined properties must be req |-> ##1 gnt.
        let found = props.iter().any(|p| {
            let PropExpr::Implication {
                antecedent,
                consequent,
                ..
            } = &p.body
            else {
                return false;
            };
            matches!(antecedent, SeqExpr::Expr(Expr::Ident { name, .. }) if name == "req")
                && consequent.duration() == 1
                && consequent.idents().contains(&"gnt".to_string())
        });
        assert!(found, "req |-> ##1 gnt expected among {props:?}");
    }

    #[test]
    fn mined_properties_all_hold() {
        let d = compile(HANDSHAKE).expect("compile");
        let verifier = Verifier {
            depth: 8,
            ..Verifier::default()
        };
        let props = Miner::default().mine(&d, &verifier).expect("mine");
        for p in props {
            let attached = attach_property(&d, &p);
            let verdict = verifier.check(&attached).expect("verify");
            assert!(!verdict.is_failure(), "mined property {p:?} fails");
        }
    }

    #[test]
    fn bound_template_fires_for_saturating_counter() {
        let src = r#"
module sat(input clk, input rst_n, input en, output reg [3:0] q);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) q <= 4'd0;
    else if (en && q < 4'd10) q <= q + 4'd1;
  end
endmodule
"#;
        let d = compile(src).expect("compile");
        let verifier = Verifier {
            depth: 16,
            random_runs: 16,
            ..Verifier::default()
        };
        let props = Miner {
            mining_runs: 8,
            depth: 24,
            ..Miner::default()
        }
        .mine(&d, &verifier)
        .expect("mine");
        let has_bound = props.iter().any(|p| p.name.contains("bound"));
        assert!(
            has_bound,
            "saturating counter should yield a bound: {props:?}"
        );
    }

    #[test]
    fn no_properties_for_pure_comb_without_clock() {
        let d = compile("module m(input a, output y); assign y = ~a; endmodule").expect("ok");
        let props = Miner::default()
            .mine(&d, &Verifier::default())
            .expect("mine");
        assert!(props.is_empty());
    }
}
