//! Sharded verdict memoisation.
//!
//! Keys are [`JobKey`]s — `(design, property set, engine, budget)` — and
//! values are finished [`JobOutcome`]s. Because every engine is
//! deterministic in that key, memoised re-verification is exact: a hit
//! returns bit-identically what re-running the engine would, in O(hash)
//! instead of O(solve).
//!
//! The map is sharded by key so concurrent workers finishing different
//! jobs never contend on one lock; each shard is a small MRU-ordered
//! vector with LRU eviction, bounding memory under sustained traffic.
//!
//! The cache is *poison-proof*: shard locks recover from
//! [`PoisonError`](std::sync::PoisonError) instead of propagating it.
//! Every critical section leaves the shard structurally valid at every
//! intermediate point (entries are removed and re-pushed whole), so a
//! thread that panics while holding the lock — as injected faults under
//! `fault-inject` deliberately do — can never wedge the cache for the
//! rest of the service.

use crate::job::{JobKey, JobOutcome};
use asv_trace::{Counter, Histogram, Registry};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// Locks a shard, recovering from poisoning: a panic in another worker
/// must not take the memo down with it (the data is always structurally
/// valid — see the module docs).
fn lock_shard<T>(shard: &Mutex<T>) -> MutexGuard<'_, T> {
    shard
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Number of independent shards (power of two).
const SHARDS: usize = 16;
/// Entries per shard; total capacity is `SHARDS * SHARD_CAP`.
const SHARD_CAP: usize = 512;

/// A point-in-time snapshot of [`VerdictCache`] activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a memoised outcome.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Outcomes newly memoised (idempotent re-inserts excluded).
    pub inserts: u64,
    /// Entries dropped by per-shard LRU eviction.
    pub evictions: u64,
}

/// A sharded LRU verdict memo.
///
/// Counters are [`Counter`] views: a cache built by
/// [`VerdictCache::with_registry`] registers them under `asv_memo_*`
/// names, so [`CacheStats`] reads the very same values a metrics scrape
/// sees — one bookkeeping site, two consumers. [`VerdictCache::new`]
/// uses detached counters (no registry, same behaviour).
pub struct VerdictCache {
    shards: Vec<Mutex<Vec<(JobKey, JobOutcome, Instant)>>>,
    hits: Counter,
    misses: Counter,
    inserts: Counter,
    evictions: Counter,
    eviction_age: Histogram,
}

impl VerdictCache {
    /// An empty cache with detached (registry-less) counters.
    pub fn new() -> Self {
        VerdictCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            hits: Counter::detached(),
            misses: Counter::detached(),
            inserts: Counter::detached(),
            evictions: Counter::detached(),
            eviction_age: Histogram::detached(),
        }
    }

    /// An empty cache whose counters live in `registry` (names
    /// `asv_memo_hits_total`, `asv_memo_misses_total`,
    /// `asv_memo_inserts_total`, `asv_memo_evictions_total`, plus the
    /// `asv_memo_eviction_age_ns` residency histogram).
    pub fn with_registry(registry: &Registry) -> Self {
        VerdictCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            hits: registry.counter("asv_memo_hits_total", "Verdict memo lookups that hit"),
            misses: registry.counter("asv_memo_misses_total", "Verdict memo lookups that missed"),
            inserts: registry.counter("asv_memo_inserts_total", "Outcomes newly memoised"),
            evictions: registry.counter(
                "asv_memo_evictions_total",
                "Memo entries dropped by per-shard LRU eviction",
            ),
            eviction_age: registry.histogram(
                "asv_memo_eviction_age_ns",
                "Residency (insert to eviction) of evicted memo entries in nanoseconds",
            ),
        }
    }

    fn shard(&self, key: JobKey) -> &Mutex<Vec<(JobKey, JobOutcome, Instant)>> {
        &self.shards[(key.0 as usize) & (SHARDS - 1)]
    }

    /// Looks up a finished verdict, bumping the entry to
    /// most-recently-used on a hit.
    pub fn get(&self, key: JobKey) -> Option<JobOutcome> {
        let mut shard = lock_shard(self.shard(key));
        if let Some(pos) = shard.iter().position(|(k, ..)| *k == key) {
            let entry = shard.remove(pos);
            let outcome = entry.1.clone();
            shard.push(entry); // most recently used last
            self.hits.inc();
            Some(outcome)
        } else {
            self.misses.inc();
            None
        }
    }

    /// Records a finished verdict (idempotent; later insertions of the
    /// same key are ignored since outcomes are deterministic in the key).
    pub fn insert(&self, key: JobKey, outcome: JobOutcome) {
        let mut shard = lock_shard(self.shard(key));
        if shard.iter().any(|(k, ..)| *k == key) {
            return;
        }
        if shard.len() == SHARD_CAP {
            // Least recently used first. The evicted entry's residency
            // (insert to eviction — MRU bumps do not refresh it) feeds
            // the age histogram: a short residency means the shard is
            // churning and the cache is undersized for the workload.
            let evicted = shard.remove(0);
            self.evictions.inc();
            self.eviction_age.observe(evicted.2.elapsed());
        }
        shard.push((key, outcome, Instant::now()));
        self.inserts.inc();
    }

    /// Activity counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            inserts: self.inserts.get(),
            evictions: self.evictions.get(),
        }
    }

    /// Number of memoised verdicts.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_shard(s).len()).sum()
    }

    /// True when nothing is memoised.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every memoised verdict (benchmarks use this for cache-cold
    /// measurements; counters are preserved).
    pub fn clear(&self) {
        for shard in &self.shards {
            lock_shard(shard).clear();
        }
    }
}

impl Default for VerdictCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_sva::bmc::Verdict;

    fn outcome(n: usize) -> JobOutcome {
        Ok(Verdict::Holds {
            exhaustive: true,
            stimuli: n,
            vacuous: Vec::new(),
        })
    }

    #[test]
    fn get_after_insert_round_trips() {
        let c = VerdictCache::new();
        assert_eq!(c.get(JobKey(7)), None);
        c.insert(JobKey(7), outcome(1));
        assert_eq!(c.get(JobKey(7)), Some(outcome(1)));
        assert_eq!(
            c.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                inserts: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn duplicate_insert_keeps_the_first_entry() {
        let c = VerdictCache::new();
        c.insert(JobKey(3), outcome(1));
        c.insert(JobKey(3), outcome(2));
        assert_eq!(c.get(JobKey(3)), Some(outcome(1)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lock_shard_recovers_from_poisoning() {
        let m = Mutex::new(vec![(JobKey(1), outcome(1))]);
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("worker died holding the shard");
        }));
        assert!(unwound.is_err());
        assert!(m.lock().is_err(), "mutex must actually be poisoned");
        // The cache shrugs it off and the data is still there.
        assert_eq!(lock_shard(&m).len(), 1);
    }

    #[test]
    fn eviction_bounds_each_shard() {
        let c = VerdictCache::new();
        // 4x capacity of one shard, all landing in shard 0.
        for i in 0..(4 * SHARD_CAP) as u64 {
            c.insert(JobKey(u128::from(i * SHARDS as u64)), outcome(0));
        }
        assert!(c.len() <= SHARD_CAP);
        // The most recent entries survive.
        let last = u128::from((4 * SHARD_CAP - 1) as u64 * SHARDS as u64);
        assert_eq!(c.get(JobKey(last)), Some(outcome(0)));
        let stats = c.stats();
        assert_eq!(stats.inserts, 4 * SHARD_CAP as u64);
        assert_eq!(stats.evictions, 3 * SHARD_CAP as u64);
    }

    #[test]
    fn registry_backed_counters_are_views_not_copies() {
        let r = Registry::new();
        let c = VerdictCache::with_registry(&r);
        c.insert(JobKey(1), outcome(1));
        assert!(c.get(JobKey(1)).is_some());
        assert!(c.get(JobKey(2)).is_none());
        // One bookkeeping site: the registry scrape and `stats()` agree.
        assert_eq!(r.counter_value("asv_memo_hits_total"), Some(1));
        assert_eq!(r.counter_value("asv_memo_misses_total"), Some(1));
        assert_eq!(r.counter_value("asv_memo_inserts_total"), Some(1));
        assert_eq!(
            c.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                inserts: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn eviction_age_histogram_records_residency() {
        let r = Registry::new();
        let c = VerdictCache::with_registry(&r);
        // Overflow one shard so exactly one eviction happens.
        for i in 0..=SHARD_CAP as u64 {
            c.insert(JobKey(u128::from(i * SHARDS as u64)), outcome(0));
        }
        assert_eq!(c.stats().evictions, 1);
        let h = r.histogram("asv_memo_eviction_age_ns", "");
        assert_eq!(h.count(), 1, "one eviction, one residency observation");
    }

    #[test]
    fn duplicate_insert_counts_neither_insert_nor_eviction() {
        let c = VerdictCache::new();
        c.insert(JobKey(5), outcome(1));
        c.insert(JobKey(5), outcome(2));
        let stats = c.stats();
        assert_eq!(stats.inserts, 1);
        assert_eq!(stats.evictions, 0);
    }
}
