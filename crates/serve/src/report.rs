//! Per-job provenance: which cache tier answered, which ladder rungs
//! ran, why each rung ended, and what each rung cost.
//!
//! A [`JobReport`] is assembled at *collection* time from the trace
//! events a batch emitted — the engines know nothing about reports, and
//! a service without a tracer produces reports with correct tiers and
//! empty rung lists. Rung resource costs are attributed by **engine
//! tag**, not time containment: portfolio racers overlap in time, but
//! every child span (SAT solve, fuzz round, enumeration sweep) carries
//! the [`EngineTag`] of the rung whose budget it ran under, so the
//! grouping is exact even for concurrent rungs.
//!
//! Wall-clock numbers appear *only* here and in the trace output;
//! verdicts, job keys and cache contents never see a timestamp.

use crate::job::JobKey;
use asv_trace::{Cost, EndReason, EngineTag, Event, SpanKind};

/// Which tier of the service answered a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnswerTier {
    /// The in-memory verdict memo (including in-flight collapses).
    Memo,
    /// The persistent artifact store.
    Store,
    /// An engine actually ran.
    Engine,
    /// In-batch duplicate: copied from its owner's slot.
    Deduped,
}

impl AnswerTier {
    /// Short lowercase label for tables and trace args.
    pub fn label(self) -> &'static str {
        match self {
            AnswerTier::Memo => "memo",
            AnswerTier::Store => "store",
            AnswerTier::Engine => "engine",
            AnswerTier::Deduped => "deduped",
        }
    }
}

/// One degradation-ladder rung a job tried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RungReport {
    /// Which engine the rung ran.
    pub engine: EngineTag,
    /// Why the rung ended.
    pub end: EndReason,
    /// Rung wall time in nanoseconds.
    pub wall_ns: u64,
    /// Resources the rung's children spent (conflicts, rounds, AIG
    /// nodes, stimuli), summed by engine tag.
    pub cost: Cost,
}

/// Provenance of one job in a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobReport {
    /// The job's key (submission identity).
    pub key: JobKey,
    /// Which tier answered.
    pub tier: AnswerTier,
    /// Ladder rungs tried, in start order. Empty unless an engine ran
    /// under a live tracer (memo/store answers try no rungs; duplicates
    /// report through their owner).
    pub rungs: Vec<RungReport>,
    /// End-to-end engine wall time in nanoseconds (the `serve.job`
    /// span), 0 when no engine ran or no tracer was attached.
    pub wall_ns: u64,
}

impl JobReport {
    /// Total resources across all rungs.
    pub fn total_cost(&self) -> Cost {
        let mut total = Cost::default();
        for rung in &self.rungs {
            total.add(rung.cost);
        }
        total
    }
}

/// Assembles one report per batch slot from the batch's trace events.
///
/// `keys` and `tiers` are parallel to the submission order. Events are
/// matched to slots by job key; duplicate slots ([`AnswerTier::Deduped`])
/// get empty rung lists — their owner's slot carries the engine work.
pub fn assemble_reports(keys: &[JobKey], tiers: &[AnswerTier], events: &[Event]) -> Vec<JobReport> {
    debug_assert_eq!(keys.len(), tiers.len());
    keys.iter()
        .zip(tiers)
        .enumerate()
        .map(|(i, (&key, &tier))| {
            // Only the first slot of a key owns its events.
            let owner = keys.iter().position(|k| *k == key) == Some(i);
            if !owner || tier == AnswerTier::Deduped {
                return JobReport {
                    key,
                    tier,
                    rungs: Vec::new(),
                    wall_ns: 0,
                };
            }
            let mine: Vec<&Event> = events.iter().filter(|e| e.job == key.0).collect();
            let mut rungs: Vec<(u64, RungReport)> = mine
                .iter()
                .filter(|e| e.kind == SpanKind::Rung)
                .filter_map(|rung| {
                    let engine = rung.engine?;
                    let mut cost = rung.cost;
                    for child in &mine {
                        if child.engine == Some(engine)
                            && child.kind != SpanKind::Rung
                            && child.kind != SpanKind::Job
                        {
                            cost.add(child.cost);
                        }
                    }
                    Some((
                        rung.start_ns,
                        RungReport {
                            engine,
                            end: EndReason::from_code(rung.code),
                            wall_ns: rung.dur_ns,
                            cost,
                        },
                    ))
                })
                .collect();
            rungs.sort_by_key(|(start, _)| *start);
            let wall_ns = mine
                .iter()
                .filter(|e| e.kind == SpanKind::Job)
                .map(|e| e.dur_ns)
                .max()
                .unwrap_or(0);
            JobReport {
                key,
                tier,
                rungs: rungs.into_iter().map(|(_, r)| r).collect(),
                wall_ns,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(job: u128, kind: SpanKind, engine: Option<EngineTag>, code: u64, cost: Cost) -> Event {
        Event {
            name: "test",
            kind,
            job,
            engine,
            start_ns: 0,
            dur_ns: 10,
            code,
            cost,
        }
    }

    #[test]
    fn rung_costs_group_by_engine_tag_not_time() {
        let keys = [JobKey(1)];
        let tiers = [AnswerTier::Engine];
        let events = vec![
            event(
                1,
                SpanKind::Rung,
                Some(EngineTag::Symbolic),
                EndReason::Holds.code(),
                Cost::default(),
            ),
            event(
                1,
                SpanKind::SatSolve,
                Some(EngineTag::Symbolic),
                0,
                Cost {
                    conflicts: 5,
                    ..Cost::default()
                },
            ),
            // A concurrent fuzz child (overlapping in time) must not
            // leak into the symbolic rung's cost.
            event(
                1,
                SpanKind::FuzzRound,
                Some(EngineTag::Fuzz),
                0,
                Cost {
                    rounds: 3,
                    ..Cost::default()
                },
            ),
        ];
        let reports = assemble_reports(&keys, &tiers, &events);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].rungs.len(), 1);
        let rung = &reports[0].rungs[0];
        assert_eq!(rung.engine, EngineTag::Symbolic);
        assert_eq!(rung.end, EndReason::Holds);
        assert_eq!(rung.cost.conflicts, 5);
        assert_eq!(rung.cost.rounds, 0, "fuzz child belongs to a fuzz rung");
    }

    #[test]
    fn duplicates_and_foreign_events_stay_out() {
        let keys = [JobKey(1), JobKey(1), JobKey(2)];
        let tiers = [AnswerTier::Engine, AnswerTier::Deduped, AnswerTier::Memo];
        let events = vec![event(
            1,
            SpanKind::Rung,
            Some(EngineTag::Fuzz),
            EndReason::Fails.code(),
            Cost::default(),
        )];
        let reports = assemble_reports(&keys, &tiers, &events);
        assert_eq!(reports[0].rungs.len(), 1);
        assert!(reports[1].rungs.is_empty(), "duplicate slot owns no events");
        assert_eq!(reports[1].tier, AnswerTier::Deduped);
        assert!(reports[2].rungs.is_empty(), "memo answer ran no rungs");
    }

    #[test]
    fn no_tracer_means_empty_rungs_never_a_panic() {
        let reports = assemble_reports(&[JobKey(9)], &[AnswerTier::Engine], &[]);
        assert_eq!(reports.len(), 1);
        assert!(reports[0].rungs.is_empty());
        assert_eq!(reports[0].wall_ns, 0);
    }
}
