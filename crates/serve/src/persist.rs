//! Bridging jobs and outcomes to the persistent artifact store.
//!
//! This module owns the serve-side key derivation and admission rules
//! for `asv-store`'s second cache tier:
//!
//! * **Exact keys** ([`exact_outcome_key`]) fingerprint the whole job —
//!   the rendered module, its parameters, and the complete
//!   [`Verifier`](asv_sva::bmc::Verifier)
//!   configuration — with [`StableHasher`], the workspace's
//!   process-stable hash. Any job may be stored and looked up under its
//!   exact key; two jobs share one iff they are byte-equivalent work.
//! * **Cone keys** ([`cone_outcome_key`]) fingerprint only what a
//!   *symbolic* verdict can observe: the design's assertion-cone hash
//!   ([`asv_sat::cone::design_cone_hash`]) plus the unrolling depth and
//!   reset protocol. They exist so a candidate repair that edits logic
//!   *outside* every assertion cone re-uses the stored verdict — the
//!   O(diff) half of incremental re-verification.
//!
//! ## Cone-key soundness
//!
//! A cone key certifies a verdict only when the verdict is a pure
//! function of the cone. Three gates enforce that:
//!
//! 1. **Eligibility** — the job must be one whose canonical verdict is
//!    the symbolic engine's: `OptLevel::Full`, an engine whose decision
//!    rule is symbolic-first ([`Engine::Auto`] / [`Engine::Symbolic`] /
//!    [`Engine::Portfolio`]), and a design inside the symbolic subset
//!    ([`asv_sat::engine::supports`]). Fuzz and enumeration verdicts
//!    depend on whole-design coverage feedback and budgets, never on the
//!    cone alone.
//! 2. **Shape** ([`symbolic_shaped`]) — only outcomes the symbolic
//!    engine itself produces are persisted under a cone key: `Fails`
//!    counterexamples and exhaustive `Holds { stimuli: 0 }` proofs. An
//!    eligible Auto job that *degraded* (symbolic rung exhausted its
//!    budget, enumeration answered instead) yields a cacheable verdict
//!    whose metadata differs from the symbolic one — it goes under the
//!    exact key only, so a warm cone hit is always bit-identical to a
//!    cold symbolic solve.
//! 3. **Key material** — the cone hash includes the full signal table,
//!    the module/directive identity a `Fails` report embeds, and the
//!    clock/reset/opt facts (see `asv_sat::cone`); depth and
//!    reset-cycles are mixed here. Verifier knobs that cannot influence
//!    a symbolic verdict (seed, fuzz budget, enumeration limit, the
//!    Auto-vs-Portfolio engine choice) are deliberately *excluded*, so
//!    e.g. a Portfolio job warm-hits a verdict stored by an Auto job —
//!    sound because both define their result as the canonical symbolic
//!    verdict.

use crate::job::{JobOutcome, VerdictError, VerifyJob};
use asv_ir::StableHasher;
use asv_sim::OptLevel;
use asv_store::{ArtifactKind, PersistedOutcome, StoreKey};
use asv_sva::bmc::{Engine, Verdict};
use std::hash::Hash;

/// The exact (whole-job) store key for a job's outcome.
///
/// Unlike [`VerifyJob::key`] (a `DefaultHasher` fingerprint valid only
/// within one process), this key is derived with [`StableHasher`] over
/// the *rendered* module — stable across processes, so it can name
/// on-disk artifacts. The store key embeds `SCHEMA_VERSION`, so a codec
/// change retires every old entry wholesale.
pub fn exact_outcome_key(job: &VerifyJob) -> StoreKey {
    let mut h = StableHasher::with_domain("asv-serve-exact");
    asv_verilog::pretty::render_module(&job.design.module).hash(&mut h);
    for (name, value) in &job.design.params {
        name.hash(&mut h);
        value.hash(&mut h);
    }
    job.verifier.hash(&mut h);
    StoreKey::exact(ArtifactKind::Outcome, h.finish128())
}

/// The cone store key for a job's outcome, or `None` when the job is
/// not cone-eligible (see the module docs for the soundness gates).
///
/// Compiles the design through the process-wide
/// [`asv_sim::cache`] — on the service's read path the engine needs the
/// same compiled form moments later, so this costs one shared lowering,
/// not two.
pub fn cone_outcome_key(job: &VerifyJob) -> Option<StoreKey> {
    if job.verifier.opt != OptLevel::Full {
        return None;
    }
    if !matches!(
        job.verifier.engine,
        Engine::Auto | Engine::Symbolic | Engine::Portfolio
    ) {
        return None;
    }
    let cd = asv_sim::cache::global().get_or_compile_opt(&job.design, job.verifier.opt);
    asv_sat::engine::supports(&cd).ok()?;
    let design = asv_sat::cone::design_cone_hash(&cd).ok()?;
    let mut h = StableHasher::with_domain("asv-serve-cone");
    design.hash(&mut h);
    job.verifier.depth.hash(&mut h);
    job.verifier.reset_cycles.hash(&mut h);
    Some(StoreKey::cone(ArtifactKind::Outcome, h.finish128()))
}

/// True when `outcome` is shaped like a symbolic verdict: a
/// counterexample, or an exhaustive proof with no enumerated stimuli.
/// Only such outcomes may be persisted under a cone key.
pub fn symbolic_shaped(outcome: &JobOutcome) -> bool {
    matches!(
        outcome,
        Ok(Verdict::Fails(_)) | Ok(Verdict::Holds { stimuli: 0, .. })
    )
}

/// Converts a job outcome into its persistable form. `None` for
/// outcomes outside the deterministic subset (inconclusive verdicts,
/// panics, cancellations, budget exhaustion) — exactly the outcomes the
/// in-memory memo also refuses.
pub fn to_persisted(outcome: &JobOutcome) -> Option<PersistedOutcome> {
    match outcome {
        Ok(v) => PersistedOutcome::admit(&Ok(v.clone())),
        Err(VerdictError::Verify(e)) => PersistedOutcome::admit(&Err(e.clone())),
        Err(_) => None,
    }
}

/// Re-inflates a stored outcome into the service's job-outcome type.
pub fn from_persisted(stored: PersistedOutcome) -> JobOutcome {
    stored.into_result().map_err(VerdictError::Verify)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_sim::cancel::{Exhausted, Resource};
    use asv_sva::bmc::{Verifier, VerifyError};

    fn job(src: &str, verifier: Verifier) -> VerifyJob {
        VerifyJob::new(asv_verilog::compile(src).expect("compile"), verifier)
    }

    fn simple(rhs: &str) -> String {
        format!(
            "module m(input clk, input rst_n, input d, output reg q);\n\
             always @(posedge clk or negedge rst_n) begin\n\
               if (!rst_n) q <= 1'b0; else q <= {rhs};\n\
             end\n\
             p: assert property (@(posedge clk) disable iff (!rst_n) d |-> ##1 q);\n\
             endmodule"
        )
    }

    #[test]
    fn exact_keys_are_stable_and_discriminating() {
        let v = Verifier::default();
        assert_eq!(
            exact_outcome_key(&job(&simple("d"), v)),
            exact_outcome_key(&job(&simple("d"), v))
        );
        assert_ne!(
            exact_outcome_key(&job(&simple("d"), v)),
            exact_outcome_key(&job(&simple("!d"), v))
        );
        // Any verifier knob separates exact keys — even symbolically
        // irrelevant ones (exact means exact).
        let other_seed = Verifier { seed: 7, ..v };
        assert_ne!(
            exact_outcome_key(&job(&simple("d"), v)),
            exact_outcome_key(&job(&simple("d"), other_seed))
        );
    }

    #[test]
    fn cone_keys_require_symbolic_canonical_jobs() {
        let v = Verifier::default();
        assert!(cone_outcome_key(&job(&simple("d"), v)).is_some());
        let fuzz = Verifier {
            engine: Engine::Fuzz,
            ..v
        };
        assert!(cone_outcome_key(&job(&simple("d"), fuzz)).is_none());
        let unopt = Verifier {
            opt: OptLevel::None,
            ..v
        };
        assert!(cone_outcome_key(&job(&simple("d"), unopt)).is_none());
    }

    #[test]
    fn cone_keys_ignore_symbolically_irrelevant_knobs() {
        let v = Verifier::default();
        let base = cone_outcome_key(&job(&simple("d"), v)).unwrap();
        let portfolio = Verifier {
            engine: Engine::Portfolio,
            seed: 99,
            random_runs: 3,
            exhaustive_limit: 17,
            ..v
        };
        assert_eq!(
            base,
            cone_outcome_key(&job(&simple("d"), portfolio)).unwrap(),
            "engine choice and sampling budgets must not split cone keys"
        );
        let deeper = Verifier {
            depth: v.depth + 1,
            ..v
        };
        assert_ne!(
            base,
            cone_outcome_key(&job(&simple("d"), deeper)).unwrap(),
            "depth is symbolic key material"
        );
    }

    #[test]
    fn symbolic_shape_admits_proofs_and_counterexamples_only() {
        let proof: JobOutcome = Ok(Verdict::Holds {
            exhaustive: true,
            stimuli: 0,
            vacuous: Vec::new(),
        });
        assert!(symbolic_shaped(&proof));
        let enumerated: JobOutcome = Ok(Verdict::Holds {
            exhaustive: true,
            stimuli: 16,
            vacuous: Vec::new(),
        });
        assert!(!symbolic_shaped(&enumerated), "degraded-ladder holds");
        assert!(!symbolic_shaped(&Err(VerdictError::Verify(
            VerifyError::NoAssertions
        ))));
    }

    #[test]
    fn persistable_subset_matches_the_memo_rules() {
        let holds: JobOutcome = Ok(Verdict::Holds {
            exhaustive: true,
            stimuli: 0,
            vacuous: Vec::new(),
        });
        let stored = to_persisted(&holds).expect("verdicts persist");
        assert_eq!(from_persisted(stored), holds);

        let verify_err: JobOutcome = Err(VerdictError::Verify(VerifyError::NoAssertions));
        let stored = to_persisted(&verify_err).expect("deterministic errors persist");
        assert_eq!(from_persisted(stored), verify_err);

        assert!(to_persisted(&Err(VerdictError::Panic("boom".into()))).is_none());
        assert!(to_persisted(&Err(VerdictError::Cancelled)).is_none());
        assert!(to_persisted(&Err(VerdictError::Exhausted(Exhausted {
            resource: Resource::WallClock,
            spent: 1,
            limit: 1,
        })))
        .is_none());
        assert!(to_persisted(&Ok(Verdict::Inconclusive { tried: Vec::new() })).is_none());
    }
}
