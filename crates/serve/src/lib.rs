//! # asv-serve
//!
//! The serving layer of the verification stack: a batched, concurrent
//! job service in front of the four verification engines (compiled
//! simulation, exhaustive enumeration, symbolic BMC, coverage-guided
//! fuzzing).
//!
//! Every caller used to drive `asv_sva::Verifier` one design at a time —
//! the eval runner's `n = 20` pass@k protocol, the datagen pipeline's
//! golden-SVA validation and bug confirmation, the bench tables. This
//! crate turns those call sites into batch submitters:
//!
//! * **[`VerifyJob`]** — one design plus the verifier bounds/engine to
//!   check it with, hashed into a stable [`JobKey`] of
//!   `(design, property set, engine, budget)`.
//! * **[`VerifyService`]** — a self-scheduling worker pool: jobs are
//!   claimed index-by-index from a shared atomic cursor (idle workers
//!   steal the next unclaimed job, so a slow symbolic proof never blocks
//!   the rest of the batch) and results are collected in
//!   submission-index order, making the returned verdict vector
//!   *deterministic in the batch alone* — worker count changes wall
//!   time, never output.
//! * **[`VerdictCache`]** — a sharded memo of finished verdicts. Repeat
//!   jobs — which dominate repair evaluation, where 20 candidate repairs
//!   share one design and candidates repeat across samples — are
//!   answered in O(hash) without touching an engine. Compiled designs
//!   are additionally shared process-wide through the sharded
//!   [`asv_sim::cache`], so a design submitted under several engines or
//!   budgets is lowered once.
//! * **Portfolio racing** — jobs submitted with
//!   [`Engine::Portfolio`](asv_sva::bmc::Engine) race symbolic BMC
//!   against bounded enumeration/fuzzing per job with cooperative
//!   [`CancelToken`](asv_sim::cancel::CancelToken)s; first decisive
//!   verdict wins and losers stop within one check interval. Verdicts
//!   stay bit-identical to sequential `Engine::Auto` (see
//!   `asv_sva::bmc` for the canonical-verdict rule).
//! * **Fault tolerance** — each job runs under its own
//!   [`Budget`](asv_sim::cancel::Budget) (deadline, SAT-conflict /
//!   fuzz-round / AIG-node caps from [`ServeOptions`]) behind a
//!   `catch_unwind` barrier: a job that panics, exhausts its budget or
//!   is cancelled yields a [`VerdictError`] in its own slot while its
//!   batch siblings finish normally. Only deterministic outcomes are
//!   memoised, so degraded runs never poison the verdict cache, and the
//!   whole schedule is reproducible under the seeded fault-injection
//!   plans of the `fault-inject` feature (see `asv_sim::fault`).
//! * **Persistence** — with [`ServeOptions::store_dir`] set, cacheable
//!   outcomes also land in an on-disk content-addressed
//!   [`ArtifactStore`](asv_store::ArtifactStore), making it a second
//!   cache tier under the in-memory memo: a fresh process re-verifying
//!   known work answers from disk without running an engine. Symbolic
//!   verdicts are additionally stored under *cone keys* that survive
//!   edits outside every assertion cone, so incremental re-verification
//!   of a patched design re-runs only what the patch can affect (see
//!   [`persist`]).
//!
//! ```
//! use asv_serve::{ServeOptions, VerifyJob, VerifyService};
//! use asv_sva::bmc::{Engine, Verifier};
//!
//! let design = asv_verilog::compile(
//!     "module m(input clk, input rst_n, input d, output reg q);\n\
//!      always @(posedge clk or negedge rst_n) begin\n\
//!        if (!rst_n) q <= 1'b0; else q <= d;\n\
//!      end\n\
//!      p: assert property (@(posedge clk) disable iff (!rst_n) d |-> ##1 q);\n\
//!      endmodule",
//! )?;
//! let verifier = Verifier { engine: Engine::Portfolio, ..Verifier::default() };
//! let service = VerifyService::new(ServeOptions::default());
//! let verdicts = service.verify_batch(&[VerifyJob::new(design, verifier)]);
//! assert!(verdicts[0].as_ref().expect("verdict").holds_non_vacuously());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cache;
pub mod job;
pub mod persist;
pub mod report;
pub mod service;

pub use cache::{CacheStats, VerdictCache};
pub use job::{JobKey, JobOutcome, VerdictError, VerifyJob};
pub use report::{AnswerTier, JobReport, RungReport};
pub use service::{ServeOptions, ServeStats, VerifyService};

/// Clears the process-wide compiled-design cache (`asv_sim::cache`).
///
/// Benchmarks measuring *cold* verification call this between runs: a
/// warm compile cache would let a "cold" run skip design lowering and
/// understate the speedup of the persistent store tier. Verdict memos
/// are per-service (drop the service or use
/// [`VerifyService::verdict_cache`]`().clear()`); the compile cache is
/// the one shared piece of process state, and this is its one reset.
pub fn clear_design_cache() {
    asv_sim::cache::global().clear();
}
