//! Verification jobs, their cache keys, and the job failure taxonomy.

use asv_sim::cancel::Exhausted;
use asv_sva::bmc::{Verdict, Verifier, VerifyError};
use asv_verilog::ast::AssertTarget;
use asv_verilog::sema::Design;
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// What one job returns: the verifier's verdict, or a structured failure.
///
/// Every job in a batch gets its own outcome — one job erroring (or
/// panicking, or blowing its budget) never poisons its batch siblings.
pub type JobOutcome = Result<Verdict, VerdictError>;

/// Why a job produced no verdict: the service's failure taxonomy.
///
/// The split matters for memoisation: [`VerdictError::Verify`] failures
/// are deterministic in the job key and may be cached; the other
/// variants depend on the per-call budget, scheduling, or injected
/// faults, and are never cached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerdictError {
    /// The verifier itself failed deterministically (no assertions,
    /// simulation/monitor error, forced engine out of subset).
    Verify(VerifyError),
    /// The engine panicked; the worker caught the unwind and isolated it
    /// to this job. Carries the rendered panic payload.
    Panic(String),
    /// The job's cancellation token was poisoned before a verdict.
    Cancelled,
    /// The job ran out of a budgeted resource in a forced single-engine
    /// mode (auto/portfolio jobs degrade to
    /// [`Verdict::Inconclusive`](asv_sva::bmc::Verdict) instead).
    Exhausted(Exhausted),
}

impl fmt::Display for VerdictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerdictError::Verify(e) => write!(f, "{e}"),
            VerdictError::Panic(m) => write!(f, "verification panicked: {m}"),
            VerdictError::Cancelled => write!(f, "job cancelled"),
            VerdictError::Exhausted(e) => write!(f, "job {e}"),
        }
    }
}

impl std::error::Error for VerdictError {}

impl From<VerifyError> for VerdictError {
    fn from(e: VerifyError) -> Self {
        match e {
            VerifyError::Cancelled => VerdictError::Cancelled,
            VerifyError::Exhausted(ex) => VerdictError::Exhausted(ex),
            other => VerdictError::Verify(other),
        }
    }
}

/// One unit of verification work: a design plus the bounds and engine to
/// check it with. The `verifier.engine` field is the job's mode —
/// `Engine::Portfolio` races engines per job, any other engine runs
/// sequentially inside the worker.
///
/// The design is held behind an [`Arc`] so building a job from an
/// already-shared design (or cloning a job) never deep-copies the AST.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyJob {
    /// The elaborated design whose assertions are checked.
    pub design: Arc<Design>,
    /// Bounds, budget, seed and engine for this job.
    pub verifier: Verifier,
}

/// Memo key of a job: a 128-bit fingerprint over `(design, property
/// set, engine, budget, OptLevel)` — two independent 64-bit hashes of
/// the full tuple, domain-separated so the halves never cancel together.
///
/// Two jobs share a key iff they would produce the same verdict: every
/// engine is deterministic in `(design, Verifier)`, and the `Verifier`
/// hash covers depth, reset protocol, enumeration limit, stimulus
/// budget, seed, engine selection and IR optimization level (so a
/// mixed-opt workload can never alias one level's verdict — or its
/// cached compiled artifact — to the other's). The property set is hashed
/// explicitly (directive names plus rendered inline bodies) on top of
/// the structural design hash, so assertion-only edits never alias.
/// A wrong verdict-memo hit would be an *unsound verification result*,
/// hence the 128-bit width: an accidental collision is beyond
/// plausibility (a deliberate one is outside this tool's threat model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobKey(pub u128);

/// Domain tags making the two key halves independent hash functions.
const KEY_TAG_HI: u64 = 0x9E37_79B9_7F4A_7C15;
const KEY_TAG_LO: u64 = 0xC2B2_AE3D_27D4_EB4F;

impl VerifyJob {
    /// Creates a job (accepts an owned design or an `Arc` to one).
    pub fn new(design: impl Into<Arc<Design>>, verifier: Verifier) -> Self {
        VerifyJob {
            design: design.into(),
            verifier,
        }
    }

    /// The job's memo key (see [`JobKey`]), under the current on-disk
    /// schema version. The schema is mixed into both halves so bumping
    /// [`asv_store::SCHEMA_VERSION`] retires every key derived under the
    /// old encoding — in-memory and on disk alike.
    pub fn key(&self) -> JobKey {
        self.key_with_schema(asv_store::SCHEMA_VERSION)
    }

    /// [`VerifyJob::key`] under an explicit schema version (tests use
    /// this to prove a bump actually separates keys).
    pub fn key_with_schema(&self, schema: u32) -> JobKey {
        let design = asv_sim::cache::design_hash(&self.design);
        let props = property_set_hash(&self.design);
        let half = |tag: u64| {
            let mut h = DefaultHasher::new();
            tag.hash(&mut h);
            schema.hash(&mut h);
            design.hash(&mut h);
            props.hash(&mut h);
            self.verifier.hash(&mut h);
            h.finish()
        };
        JobKey((u128::from(half(KEY_TAG_HI)) << 64) | u128::from(half(KEY_TAG_LO)))
    }
}

impl JobKey {
    /// The job's fault-injection salt: the XOR of the key's two 64-bit
    /// halves. A [`FaultPlan`](asv_sim::FaultPlan) derives the job's
    /// fault session from this value, so the fault schedule is a pure
    /// function of `(plan, job)`. Chaos tests use the same value with
    /// `FaultPlan::is_victim` to predict which jobs a plan targets.
    pub fn fault_salt(self) -> u64 {
        ((self.0 >> 64) as u64) ^ (self.0 as u64)
    }
}

/// Hash of the design's assertion directives: log names, messages, and
/// rendered inline property bodies (named properties are covered by the
/// structural design hash; their *binding* is covered by the name).
fn property_set_hash(design: &Design) -> u64 {
    let mut h = DefaultHasher::new();
    for dir in design.module.assertions() {
        dir.log_name().hash(&mut h);
        dir.message.hash(&mut h);
        match &dir.target {
            AssertTarget::Named(n) => n.hash(&mut h),
            AssertTarget::Inline(p) => {
                asv_verilog::pretty::render_prop(&p.body).hash(&mut h);
                if let Some(d) = &p.disable {
                    asv_verilog::pretty::render_expr(d).hash(&mut h);
                }
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_sva::bmc::Engine;

    fn design(body: &str, prop: &str) -> Design {
        asv_verilog::compile(&format!(
            "module m(input clk, input rst_n, input d, output reg q);\n\
             always @(posedge clk or negedge rst_n) begin\n\
               if (!rst_n) q <= 1'b0; else q <= {body};\n\
             end\n\
             p: assert property (@(posedge clk) disable iff (!rst_n) {prop});\n\
             endmodule"
        ))
        .expect("compile")
    }

    #[test]
    fn equal_jobs_share_a_key() {
        let v = Verifier::default();
        let a = VerifyJob::new(design("d", "d |-> ##1 q"), v);
        let b = VerifyJob::new(design("d", "d |-> ##1 q"), v);
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn design_property_engine_and_budget_all_separate_keys() {
        let v = Verifier::default();
        let base = VerifyJob::new(design("d", "d |-> ##1 q"), v);
        let other_logic = VerifyJob::new(design("!d", "d |-> ##1 q"), v);
        let other_prop = VerifyJob::new(design("d", "d |-> ##1 !q"), v);
        let other_engine = VerifyJob::new(
            base.design.clone(),
            Verifier {
                engine: Engine::Fuzz,
                ..v
            },
        );
        let other_budget = VerifyJob::new(
            base.design.clone(),
            Verifier {
                random_runs: v.random_runs + 1,
                ..v
            },
        );
        let other_opt = VerifyJob::new(
            base.design.clone(),
            Verifier {
                opt: asv_sva::bmc::OptLevel::None,
                ..v
            },
        );
        for (name, job) in [
            ("logic", &other_logic),
            ("property", &other_prop),
            ("engine", &other_engine),
            ("budget", &other_budget),
            ("opt level", &other_opt),
        ] {
            assert_ne!(base.key(), job.key(), "{name} change must change the key");
        }
    }

    #[test]
    fn schema_bump_retires_every_key() {
        let job = VerifyJob::new(design("d", "d |-> ##1 q"), Verifier::default());
        assert_eq!(job.key(), job.key_with_schema(asv_store::SCHEMA_VERSION));
        let bumped = job.key_with_schema(asv_store::SCHEMA_VERSION + 1);
        assert_ne!(job.key(), bumped, "a schema bump must separate keys");
        // Both halves move independently — neither half may survive.
        assert_ne!((job.key().0 >> 64) as u64, (bumped.0 >> 64) as u64);
        assert_ne!(job.key().0 as u64, bumped.0 as u64);
    }
}
