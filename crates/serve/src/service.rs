//! The batched verification job service.
//!
//! [`VerifyService::verify_batch`] takes a slice of [`VerifyJob`]s and
//! returns their outcomes **in submission order**. Internally:
//!
//! 1. jobs are deduplicated by [`JobKey`] — only the first occurrence of
//!    a key is executed, later occurrences copy its verdict (repair
//!    evaluation submits the same patched design many times across the
//!    20-sample protocol);
//! 2. keys already in the [`VerdictCache`] are answered in O(hash);
//! 3. the remaining jobs go to a self-scheduling worker pool: each
//!    worker claims the next unclaimed job from a shared atomic cursor,
//!    so a batch mixing microsecond enumerations with millisecond
//!    symbolic proofs stays load-balanced without any up-front
//!    partitioning (idle workers steal whatever is left);
//! 4. results land in their submission slot and new verdicts are
//!    memoised.
//!
//! Every engine is deterministic in `(design, Verifier)`, outcomes are
//! keyed per job, and the collection order is the submission order — so
//! the returned vector is a pure function of the batch, whatever the
//! worker count and however the OS schedules the race.

use crate::cache::VerdictCache;
use crate::job::{JobKey, JobOutcome, VerifyJob};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Service configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// Worker threads; 0 means `std::thread::available_parallelism`.
    ///
    /// Portfolio jobs spawn their own short-lived racer pair on top;
    /// racers are cancelled as soon as a verdict is decisive, so the
    /// oversubscription is transient.
    pub workers: usize,
    /// Memoise verdicts across batches (disable for cache-cold
    /// benchmarking; in-batch deduplication always applies).
    pub memoize: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 0,
            memoize: true,
        }
    }
}

/// Cumulative service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Jobs submitted across all batches (including duplicates and
    /// cache hits).
    pub submitted: u64,
    /// Jobs that actually ran an engine.
    pub executed: u64,
    /// Jobs answered from the verdict memo.
    pub memo_hits: u64,
    /// Jobs answered by in-batch deduplication.
    pub deduped: u64,
}

/// A verification job service with sharded verdict memoisation.
pub struct VerifyService {
    opts: ServeOptions,
    verdicts: VerdictCache,
    submitted: AtomicU64,
    executed: AtomicU64,
    memo_hits: AtomicU64,
    deduped: AtomicU64,
}

impl VerifyService {
    /// Creates a service.
    pub fn new(opts: ServeOptions) -> Self {
        VerifyService {
            opts,
            verdicts: VerdictCache::new(),
            submitted: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            deduped: AtomicU64::new(0),
        }
    }

    /// A service with an explicit worker count (0 = all cores).
    pub fn with_workers(workers: usize) -> Self {
        Self::new(ServeOptions {
            workers,
            ..ServeOptions::default()
        })
    }

    /// The resolved worker count.
    pub fn workers(&self) -> usize {
        if self.opts.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.opts.workers
        }
    }

    /// Verifies one job (a batch of one).
    pub fn verify_one(&self, job: &VerifyJob) -> JobOutcome {
        self.verify_batch(std::slice::from_ref(job))
            .pop()
            .expect("one job in, one outcome out")
    }

    /// Verifies a batch, returning outcomes in submission order.
    ///
    /// The result vector is deterministic in the batch: worker count and
    /// scheduling change wall time only. Jobs sharing a [`JobKey`] are
    /// executed once.
    pub fn verify_batch(&self, jobs: &[VerifyJob]) -> Vec<JobOutcome> {
        self.submitted
            .fetch_add(jobs.len() as u64, Ordering::Relaxed);
        let mut results: Vec<Option<JobOutcome>> = vec![None; jobs.len()];
        // In-batch dedup: first submission index per key runs the job.
        let mut first_of: HashMap<JobKey, usize> = HashMap::with_capacity(jobs.len());
        let mut owners: Vec<usize> = Vec::with_capacity(jobs.len());
        let keys: Vec<JobKey> = jobs.iter().map(VerifyJob::key).collect();
        for (i, &key) in keys.iter().enumerate() {
            owners.push(*first_of.entry(key).or_insert(i));
        }
        // Memo lookups for the unique jobs.
        let mut pending: Vec<usize> = Vec::new();
        for (i, &owner) in owners.iter().enumerate() {
            if owner != i {
                continue; // duplicate; filled from its owner below
            }
            if self.opts.memoize {
                if let Some(hit) = self.verdicts.get(keys[i]) {
                    self.memo_hits.fetch_add(1, Ordering::Relaxed);
                    results[i] = Some(hit);
                    continue;
                }
            }
            pending.push(i);
        }
        // Self-scheduling pool over the pending jobs.
        if !pending.is_empty() {
            let workers = self.workers().min(pending.len()).max(1);
            let cursor = AtomicUsize::new(0);
            let mut per_worker: Vec<Vec<(usize, JobOutcome)>> = Vec::with_capacity(workers);
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for _ in 0..workers {
                    let cursor = &cursor;
                    let pending = &pending;
                    handles.push(scope.spawn(move || {
                        let mut done = Vec::new();
                        loop {
                            let at = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(&job_idx) = pending.get(at) else {
                                break;
                            };
                            let job = &jobs[job_idx];
                            done.push((job_idx, job.verifier.check(&job.design)));
                        }
                        done
                    }));
                }
                for h in handles {
                    per_worker.push(h.join().expect("verification worker panicked"));
                }
            });
            for (job_idx, outcome) in per_worker.into_iter().flatten() {
                self.executed.fetch_add(1, Ordering::Relaxed);
                if self.opts.memoize {
                    self.verdicts.insert(keys[job_idx], outcome.clone());
                }
                results[job_idx] = Some(outcome);
            }
        }
        // Copy duplicates from their owners, in submission order.
        for i in 0..jobs.len() {
            if results[i].is_none() {
                let owner = owners[i];
                self.deduped.fetch_add(1, Ordering::Relaxed);
                results[i] = Some(
                    results[owner]
                        .clone()
                        .expect("owner job resolved before its duplicates"),
                );
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every slot resolved"))
            .collect()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            deduped: self.deduped.load(Ordering::Relaxed),
        }
    }

    /// The verdict memo (benchmarks clear it between cold runs).
    pub fn verdict_cache(&self) -> &VerdictCache {
        &self.verdicts
    }
}

impl Default for VerifyService {
    fn default() -> Self {
        Self::new(ServeOptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_sva::bmc::{Engine, Verdict, Verifier};
    use asv_verilog::sema::Design;

    fn design(follow: bool, tag: u64) -> Design {
        let rhs = if follow { "d" } else { "!d" };
        asv_verilog::compile(&format!(
            "module m{tag}(input clk, input rst_n, input d, output reg q);\n\
             always @(posedge clk or negedge rst_n) begin\n\
               if (!rst_n) q <= 1'b0; else q <= {rhs};\n\
             end\n\
             p: assert property (@(posedge clk) disable iff (!rst_n) d |-> ##1 q);\n\
             endmodule"
        ))
        .expect("compile")
    }

    fn batch(n: usize, engine: Engine) -> Vec<VerifyJob> {
        let verifier = Verifier {
            depth: 6,
            engine,
            ..Verifier::default()
        };
        (0..n)
            .map(|i| VerifyJob::new(design(i % 3 != 0, (i % 5) as u64), verifier))
            .collect()
    }

    #[test]
    fn outcomes_follow_submission_order() {
        let service = VerifyService::default();
        let jobs = batch(10, Engine::Auto);
        let out = service.verify_batch(&jobs);
        assert_eq!(out.len(), 10);
        for (i, o) in out.iter().enumerate() {
            let fails = i % 3 == 0;
            match o.as_ref().expect("verdict") {
                Verdict::Fails(_) => assert!(fails, "job {i} must hold"),
                Verdict::Holds { .. } => assert!(!fails, "job {i} must fail"),
            }
        }
    }

    #[test]
    fn verdicts_are_identical_across_worker_counts() {
        let jobs = batch(12, Engine::Auto);
        let reference = VerifyService::with_workers(1).verify_batch(&jobs);
        for workers in [2, 8] {
            let out = VerifyService::with_workers(workers).verify_batch(&jobs);
            assert_eq!(out, reference, "worker count {workers} changed verdicts");
        }
    }

    #[test]
    fn batch_deduplicates_identical_jobs() {
        let service = VerifyService::default();
        let one = batch(1, Engine::Auto).remove(0);
        let jobs: Vec<VerifyJob> = (0..20).map(|_| one.clone()).collect();
        let out = service.verify_batch(&jobs);
        assert!(out.iter().all(|o| o == &out[0]));
        let stats = service.stats();
        assert_eq!(stats.executed, 1, "one engine run for 20 identical jobs");
        assert_eq!(stats.deduped, 19);
    }

    #[test]
    fn memo_answers_repeat_batches_without_executing() {
        let service = VerifyService::default();
        let jobs = batch(6, Engine::Auto);
        let first = service.verify_batch(&jobs);
        let executed_cold = service.stats().executed;
        let second = service.verify_batch(&jobs);
        assert_eq!(first, second, "memoised verdicts must be bit-identical");
        assert_eq!(
            service.stats().executed,
            executed_cold,
            "warm batch must not run any engine"
        );
        assert!(service.stats().memo_hits > 0);
    }

    #[test]
    fn memoize_false_always_executes() {
        let service = VerifyService::new(ServeOptions {
            memoize: false,
            ..ServeOptions::default()
        });
        let jobs = batch(4, Engine::Auto);
        let a = service.verify_batch(&jobs);
        let b = service.verify_batch(&jobs);
        assert_eq!(a, b);
        assert_eq!(service.stats().memo_hits, 0);
        assert!(service.stats().executed >= 2 * 3); // unique jobs per batch
    }

    #[test]
    fn portfolio_batches_match_auto_batches() {
        let auto = VerifyService::default().verify_batch(&batch(12, Engine::Auto));
        let portfolio = VerifyService::default().verify_batch(&batch(12, Engine::Portfolio));
        assert_eq!(portfolio, auto, "portfolio must be bit-identical to Auto");
    }

    #[test]
    fn no_assertions_error_propagates_per_job() {
        let d =
            asv_verilog::compile("module n(input a, output y); assign y = a; endmodule").unwrap();
        let service = VerifyService::default();
        let out = service.verify_one(&VerifyJob::new(d, Verifier::default()));
        assert_eq!(out, Err(asv_sva::bmc::VerifyError::NoAssertions));
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(VerifyService::default().verify_batch(&[]).is_empty());
    }
}
