//! The batched verification job service.
//!
//! [`VerifyService::verify_batch`] takes a slice of [`VerifyJob`]s and
//! returns their outcomes **in submission order**. Internally:
//!
//! 1. jobs are deduplicated by [`JobKey`] — only the first occurrence of
//!    a key is executed, later occurrences copy its verdict (repair
//!    evaluation submits the same patched design many times across the
//!    20-sample protocol);
//! 2. keys already in the [`VerdictCache`] are answered in O(hash);
//! 3. the remaining jobs go to a self-scheduling worker pool: each
//!    worker claims the next unclaimed job from a shared atomic cursor,
//!    so a batch mixing microsecond enumerations with millisecond
//!    symbolic proofs stays load-balanced without any up-front
//!    partitioning (idle workers steal whatever is left);
//! 4. results land in their submission slot and *cacheable* verdicts are
//!    memoised.
//!
//! Every engine is deterministic in `(design, Verifier)`, outcomes are
//! keyed per job, and the collection order is the submission order — so
//! the returned vector is a pure function of the batch, whatever the
//! worker count and however the OS schedules the race.
//!
//! ## Failure semantics
//!
//! The service is fault-tolerant per job:
//!
//! * each job runs under its own [`Budget`] built from the service's
//!   [`ServeOptions`] (wall-clock deadline measured from the job's own
//!   start, SAT-conflict / fuzz-round / AIG-node caps, and — under the
//!   `fault-inject` feature — a per-job fault session salted by the job
//!   key);
//! * every engine invocation is wrapped in `catch_unwind`: a panicking
//!   job yields [`VerdictError::Panic`] in its own slot and its batch
//!   siblings are untouched;
//! * only *deterministic* outcomes are memoised — verdicts and
//!   [`VerdictError::Verify`] errors, which are pure functions of the
//!   job key. `Inconclusive` verdicts, panics, cancellations and budget
//!   exhaustion depend on the per-call budget or injected faults and are
//!   never cached, so a degraded run can never poison a later, healthier
//!   one;
//! * concurrent submissions of the same key (within or across batches)
//!   are collapsed through an in-flight table: one caller executes, the
//!   rest wait and reuse the memoised outcome. If the owner's outcome
//!   was not cacheable, a waiter re-executes rather than inheriting the
//!   degraded result — and the table's leases are drop-guarded, so a
//!   panicking owner always releases its claim and can never strand a
//!   waiter.

use crate::cache::VerdictCache;
use crate::job::{JobKey, JobOutcome, VerdictError, VerifyJob};
use crate::persist;
use crate::report::{assemble_reports, AnswerTier, JobReport};
use asv_sim::cancel::Budget;
use asv_sim::FaultPlan;
use asv_store::{ArtifactStore, StoreKey};
use asv_sva::bmc::Verdict;
use asv_trace::{probe, Counter, EndReason, Registry, SpanKind, TraceHandle, TraceSink, Tracer};
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Service configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOptions {
    /// Worker threads; 0 means `std::thread::available_parallelism`.
    ///
    /// Portfolio jobs spawn their own short-lived racer pair on top;
    /// racers are cancelled as soon as a verdict is decisive, so the
    /// oversubscription is transient.
    pub workers: usize,
    /// Memoise verdicts across batches (disable for cache-cold
    /// benchmarking; in-batch deduplication always applies).
    pub memoize: bool,
    /// Per-job wall-clock deadline, measured from the moment a worker
    /// starts the job (`None` = unbounded). Auto/portfolio jobs that
    /// run out degrade to `Verdict::Inconclusive`; forced single-engine
    /// jobs report [`VerdictError::Exhausted`].
    pub deadline: Option<Duration>,
    /// Per-job cap on SAT solver conflicts (`None` = unbounded).
    pub max_conflicts: Option<u64>,
    /// Per-job cap on fuzzing rounds (`None` = unbounded).
    pub max_fuzz_rounds: Option<u64>,
    /// Per-job cap on symbolic-unrolling AIG nodes (`None` = unbounded).
    pub max_aig_nodes: Option<u64>,
    /// Deterministic fault-injection plan for the chaos suite. Each job
    /// gets a session salted by [`JobKey::fault_salt`], so the fault
    /// schedule is a pure function of `(plan, job)` — independent of
    /// worker count and scheduling. Inert unless the `fault-inject`
    /// feature is enabled (probes compile to plain budget polls).
    pub fault_plan: Option<FaultPlan>,
    /// Root directory of the persistent artifact store (`None` = no
    /// second tier). When set, deterministic outcomes survive process
    /// restarts: misses in the in-memory memo fall through to the
    /// [`ArtifactStore`] before any engine runs, and store hits are
    /// promoted back into the memo. The directory is created on demand;
    /// a store that fails to open is a hard error at service
    /// construction (a silently absent tier would turn every warm
    /// restart into a cold one).
    pub store_dir: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 0,
            memoize: true,
            deadline: None,
            max_conflicts: None,
            max_fuzz_rounds: None,
            max_aig_nodes: None,
            fault_plan: None,
            store_dir: None,
        }
    }
}

/// Cumulative service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Jobs submitted across all batches (including duplicates and
    /// cache hits).
    pub submitted: u64,
    /// Jobs that actually ran an engine.
    pub executed: u64,
    /// Jobs answered from the verdict memo.
    pub memo_hits: u64,
    /// Jobs answered by in-batch deduplication.
    pub deduped: u64,
    /// Jobs answered from the persistent store tier (subset of
    /// `executed`'s complement: a store hit runs no engine).
    pub store_hits: u64,
    /// Store lookups that found nothing (the job went to an engine).
    pub store_misses: u64,
    /// Outcomes written to the persistent store.
    pub store_puts: u64,
}

/// Cross-batch in-flight job table: collapses concurrent executions of
/// one key into a single engine run.
///
/// A worker either *claims* a key (getting a [`InflightLease`]) or
/// waits on the condvar until the current owner finishes. Leases release
/// on drop — including panic unwinds — so an owner can never strand its
/// waiters; waiters re-check the verdict memo on wake-up and re-execute
/// themselves if the owner's outcome was not cacheable.
#[derive(Default)]
struct InflightTable {
    keys: Mutex<HashSet<JobKey>>,
    done: Condvar,
}

/// What [`InflightTable::claim`] resolved to.
enum Claim<'a> {
    /// Another owner finished first; here is its memoised outcome.
    Hit(JobOutcome),
    /// The caller owns the key until the lease drops.
    Claimed(InflightLease<'a>),
}

/// Drop-guarded ownership of an in-flight key.
struct InflightLease<'a> {
    table: &'a InflightTable,
    key: JobKey,
}

impl InflightTable {
    /// Claims `key` for execution, or waits for the current owner and
    /// returns its memoised outcome. Recovers from lock poisoning: the
    /// set is structurally valid at every point, and leases release on
    /// unwind.
    fn claim<'a>(&'a self, key: JobKey, memo: &VerdictCache) -> Claim<'a> {
        let mut keys = lock_inflight(&self.keys);
        loop {
            if let Some(hit) = memo.get(key) {
                return Claim::Hit(hit);
            }
            if keys.insert(key) {
                return Claim::Claimed(InflightLease { table: self, key });
            }
            keys = self.done.wait(keys).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl Drop for InflightLease<'_> {
    fn drop(&mut self) {
        let mut keys = lock_inflight(&self.table.keys);
        keys.remove(&self.key);
        self.table.done.notify_all();
    }
}

/// Locks the in-flight set, recovering from poisoning (a worker panic
/// between `insert` and `remove` leaves the set valid — the lease's
/// drop guard still runs and removes the key).
fn lock_inflight(m: &Mutex<HashSet<JobKey>>) -> MutexGuard<'_, HashSet<JobKey>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A verification job service with sharded verdict memoisation.
///
/// Counters are [`Counter`] views over the service's private metrics
/// [`Registry`] (one registry per service keeps concurrent services and
/// tests isolated): [`VerifyService::stats`] and a
/// [`Registry::dump_prometheus`] scrape read the same values from one
/// bookkeeping site. An optional [`Tracer`] (see
/// [`VerifyService::traced`]) adds structured spans and per-job
/// [`JobReport`] provenance on top.
pub struct VerifyService {
    opts: ServeOptions,
    registry: Registry,
    tracer: Option<Tracer>,
    verdicts: VerdictCache,
    store: Option<ArtifactStore>,
    inflight: InflightTable,
    submitted: Counter,
    executed: Counter,
    memo_hits: Counter,
    deduped: Counter,
    store_hits: Counter,
    store_misses: Counter,
    store_puts: Counter,
}

/// True if `outcome` is a pure function of the job key and may be
/// memoised. Degraded outcomes (inconclusive verdicts, panics,
/// cancellations, budget exhaustion) depend on the per-call budget,
/// scheduling, or injected faults — caching one would poison every
/// later call with this key.
fn cacheable(outcome: &JobOutcome) -> bool {
    match outcome {
        Ok(Verdict::Inconclusive { .. }) => false,
        Ok(_) => true,
        Err(VerdictError::Verify(_)) => true,
        Err(_) => false,
    }
}

/// Renders a caught panic payload for [`VerdictError::Panic`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(injected) = payload.downcast_ref::<asv_sim::fault::InjectedPanic>() {
        format!("injected fault at probe `{}`", injected.0)
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// [`EndReason`] of a finished job, recorded on its `serve.job` span.
fn job_end(outcome: &JobOutcome) -> EndReason {
    match outcome {
        Ok(Verdict::Holds { .. }) => EndReason::Holds,
        Ok(Verdict::Fails(_)) => EndReason::Fails,
        Ok(Verdict::Inconclusive { .. }) => EndReason::Exhausted,
        Err(VerdictError::Panic(_)) => EndReason::Panicked,
        Err(VerdictError::Cancelled) => EndReason::Cancelled,
        Err(VerdictError::Exhausted(_)) => EndReason::Exhausted,
        Err(VerdictError::Verify(_)) => EndReason::Unknown,
    }
}

/// Runs one job under `budget`, catching panics so one bad job never
/// takes down its worker (or the batch).
fn run_job(job: &VerifyJob, budget: &Budget) -> JobOutcome {
    let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        job.verifier.check_budgeted(&job.design, budget)
    }));
    match unwound {
        Ok(Ok(verdict)) => Ok(verdict),
        Ok(Err(e)) => Err(VerdictError::from(e)),
        Err(payload) => Err(VerdictError::Panic(panic_message(payload.as_ref()))),
    }
}

impl VerifyService {
    /// Creates a service.
    ///
    /// # Panics
    ///
    /// When `opts.store_dir` is set but the store cannot be opened
    /// (unwritable directory, undeletable corruption). Persistence is
    /// opt-in; asking for it and silently not getting it would be worse
    /// than failing loudly.
    pub fn new(opts: ServeOptions) -> Self {
        let store = opts.store_dir.as_deref().map(|dir| {
            ArtifactStore::open(dir)
                .unwrap_or_else(|e| panic!("opening artifact store at {}: {e}", dir.display()))
        });
        let registry = Registry::new();
        VerifyService {
            verdicts: VerdictCache::with_registry(&registry),
            submitted: registry.counter(
                "asv_jobs_submitted_total",
                "Jobs submitted across all batches (duplicates and cache hits included)",
            ),
            executed: registry.counter("asv_jobs_executed_total", "Jobs that ran an engine"),
            memo_hits: registry.counter(
                "asv_jobs_memo_hits_total",
                "Jobs answered from the verdict memo",
            ),
            deduped: registry.counter(
                "asv_jobs_deduped_total",
                "Jobs answered by in-batch deduplication",
            ),
            store_hits: registry.counter(
                "asv_store_hits_total",
                "Jobs answered from the persistent store tier",
            ),
            store_misses: registry
                .counter("asv_store_misses_total", "Store lookups that found nothing"),
            store_puts: registry.counter(
                "asv_store_puts_total",
                "Outcomes written to the persistent store",
            ),
            registry,
            tracer: None,
            opts,
            store,
            inflight: InflightTable::default(),
        }
    }

    /// Attaches a [`Tracer`]: engines emit spans into it, span-derived
    /// metrics land in this service's registry, and
    /// [`VerifyService::verify_batch_reported`] can assemble per-job
    /// provenance. Tracing never affects verdicts — only observes them.
    pub fn traced(mut self, tracer: Tracer) -> Self {
        tracer.bind_metrics(&self.registry);
        self.tracer = Some(tracer);
        self
    }

    /// This service's metrics registry (scrape with
    /// [`Registry::dump_prometheus`] or [`Registry::dump_json`]).
    pub fn metrics(&self) -> &Registry {
        &self.registry
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// The root trace handle jobs derive from (disabled when no tracer
    /// is attached — all span emission compiles down to no-ops).
    fn trace_handle(&self) -> TraceHandle {
        self.tracer
            .as_ref()
            .map_or_else(TraceHandle::disabled, Tracer::handle)
    }

    /// A service with an explicit worker count (0 = all cores).
    pub fn with_workers(workers: usize) -> Self {
        Self::new(ServeOptions {
            workers,
            ..ServeOptions::default()
        })
    }

    /// The resolved worker count.
    pub fn workers(&self) -> usize {
        if self.opts.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.opts.workers
        }
    }

    /// Builds the per-job budget from the service options. Called at
    /// job start inside the worker, so a wall-clock deadline measures
    /// the job's own runtime, not its queueing delay.
    fn job_budget(&self, key: JobKey) -> Budget {
        let mut budget = Budget::unbounded();
        if let Some(limit) = self.opts.deadline {
            budget = budget.with_deadline(limit);
        }
        if let Some(n) = self.opts.max_conflicts {
            budget = budget.with_max_conflicts(n);
        }
        if let Some(n) = self.opts.max_fuzz_rounds {
            budget = budget.with_max_fuzz_rounds(n);
        }
        if let Some(n) = self.opts.max_aig_nodes {
            budget = budget.with_max_aig_nodes(n);
        }
        if let Some(plan) = self.opts.fault_plan {
            budget = budget.with_fault(plan.session(key.fault_salt()));
        }
        // The trace handle is observational only: `Budget::is_plain`
        // ignores it, so traced and untraced runs take identical paths.
        budget.with_trace(self.trace_handle().for_job(key.0))
    }

    /// Looks up `job` in the persistent store tier: the cone key first
    /// (maximal reuse — it survives edits outside every assertion
    /// cone), then the exact key. Returns `None` on miss *or* when no
    /// store is configured; counters move only when a store exists.
    fn store_get(&self, job: &VerifyJob, trace: &TraceHandle) -> Option<JobOutcome> {
        let store = self.store.as_ref()?;
        let mut span = trace.span(probe::STORE_GET, SpanKind::StoreGet);
        let stored = persist::cone_outcome_key(job)
            .and_then(|k| store.get_outcome(k))
            .or_else(|| store.get_outcome(persist::exact_outcome_key(job)));
        match stored {
            Some(outcome) => {
                span.set_code(1); // hit
                self.store_hits.inc();
                Some(persist::from_persisted(outcome))
            }
            None => {
                self.store_misses.inc();
                None
            }
        }
    }

    /// Persists a deterministic outcome. Symbolic-shaped outcomes of
    /// cone-eligible jobs go under the cone key (warm hits stay
    /// bit-identical to a cold symbolic solve — see `persist`);
    /// everything else deterministic goes under the exact key. Write
    /// errors are swallowed: persistence is an accelerator, and a full
    /// disk must degrade to cold verification, not failed verification.
    fn store_put(&self, job: &VerifyJob, outcome: &JobOutcome, trace: &TraceHandle) {
        let Some(store) = self.store.as_ref() else {
            return;
        };
        let Some(persisted) = persist::to_persisted(outcome) else {
            return;
        };
        let mut span = trace.span(probe::STORE_PUT, SpanKind::StorePut);
        let key: StoreKey = persist::symbolic_shaped(outcome)
            .then(|| persist::cone_outcome_key(job))
            .flatten()
            .unwrap_or_else(|| persist::exact_outcome_key(job));
        if let Ok(Some(_)) = store.put_outcome(key, &persisted) {
            span.set_code(1); // newly written
            self.store_puts.inc();
        }
    }

    /// Executes one pending job: claims it in the in-flight table (when
    /// memoising), consults the persistent store tier, runs the engine
    /// under the per-job budget, and memoises/persists cacheable
    /// outcomes before releasing the claim.
    fn execute(&self, job: &VerifyJob, key: JobKey) -> (JobOutcome, AnswerTier) {
        let trace = self.trace_handle().for_job(key.0);
        if !self.opts.memoize {
            // `memoize: false` means *always execute* — both cache
            // tiers are bypassed (cache-cold benchmarking relies on it).
            self.executed.inc();
            return (self.run_job_traced(job, key, &trace), AnswerTier::Engine);
        }
        match self.inflight.claim(key, &self.verdicts) {
            Claim::Hit(outcome) => {
                self.memo_hits.inc();
                (outcome, AnswerTier::Memo)
            }
            Claim::Claimed(lease) => {
                // Second tier: the persistent store. A hit is promoted
                // into the in-memory memo (waiters and repeat batches
                // then hit tier one) and runs no engine.
                if let Some(outcome) = self.store_get(job, &trace) {
                    self.verdicts.insert(key, outcome.clone());
                    drop(lease);
                    return (outcome, AnswerTier::Store);
                }
                self.executed.inc();
                let outcome = self.run_job_traced(job, key, &trace);
                // Memoise before releasing the claim so woken waiters
                // find the result; a non-cacheable outcome leaves the
                // memo untouched and waiters execute for themselves.
                if cacheable(&outcome) {
                    self.verdicts.insert(key, outcome.clone());
                    self.store_put(job, &outcome, &trace);
                }
                drop(lease);
                (outcome, AnswerTier::Engine)
            }
        }
    }

    /// [`run_job`] under a `serve.job` span carrying the outcome's
    /// [`EndReason`] — the root of the job's trace tree.
    fn run_job_traced(&self, job: &VerifyJob, key: JobKey, trace: &TraceHandle) -> JobOutcome {
        let mut span = trace.span(probe::SERVE_JOB, SpanKind::Job);
        let outcome = run_job(job, &self.job_budget(key));
        span.set_end(job_end(&outcome));
        outcome
    }

    /// Verifies one job (a batch of one).
    pub fn verify_one(&self, job: &VerifyJob) -> JobOutcome {
        self.verify_batch(std::slice::from_ref(job))
            .pop()
            .expect("one job in, one outcome out")
    }

    /// Alias of [`VerifyService::verify_batch`]: submits a batch and
    /// returns per-job outcomes in submission order. A job that errors
    /// (panics, exhausts its budget, is cancelled) fills only its own
    /// slot — the rest of the batch completes normally.
    pub fn submit_batch(&self, jobs: &[VerifyJob]) -> Vec<JobOutcome> {
        self.verify_batch(jobs)
    }

    /// Verifies a batch, returning outcomes in submission order.
    ///
    /// The result vector is deterministic in the batch: worker count and
    /// scheduling change wall time only. Jobs sharing a [`JobKey`] are
    /// executed once.
    pub fn verify_batch(&self, jobs: &[VerifyJob]) -> Vec<JobOutcome> {
        self.verify_batch_tiered(jobs)
            .into_iter()
            .map(|(outcome, _)| outcome)
            .collect()
    }

    /// [`VerifyService::verify_batch`] plus per-job provenance: one
    /// [`JobReport`] per submission slot recording which tier answered,
    /// which ladder rungs ran (with engine, end reason, wall time, and
    /// engine-tagged resource costs), and the engine wall time.
    ///
    /// Rung detail requires an attached tracer ([`VerifyService::traced`])
    /// and drains its event buffer, so interleaving this call with other
    /// traced batches on the same service attributes spans to whichever
    /// call drains first. Without a tracer the reports still carry
    /// correct tiers — the rung lists are simply empty.
    pub fn verify_batch_reported(&self, jobs: &[VerifyJob]) -> (Vec<JobOutcome>, Vec<JobReport>) {
        let (outcomes, reports, _) = self.verify_batch_traced(jobs);
        (outcomes, reports)
    }

    /// [`VerifyService::verify_batch_reported`] plus the raw trace
    /// events the batch emitted, for export (e.g. to
    /// [`asv_trace::chrome_trace_json`]). Empty without a tracer.
    pub fn verify_batch_traced(
        &self,
        jobs: &[VerifyJob],
    ) -> (Vec<JobOutcome>, Vec<JobReport>, Vec<asv_trace::Event>) {
        let keys: Vec<JobKey> = jobs.iter().map(VerifyJob::key).collect();
        let tiered = self.verify_batch_tiered(jobs);
        let events = self.tracer.as_ref().map(Tracer::drain).unwrap_or_default();
        let tiers: Vec<AnswerTier> = tiered.iter().map(|(_, tier)| *tier).collect();
        let reports = assemble_reports(&keys, &tiers, &events);
        (
            tiered.into_iter().map(|(outcome, _)| outcome).collect(),
            reports,
            events,
        )
    }

    /// The batch pipeline, returning each slot's outcome and the tier
    /// that answered it.
    fn verify_batch_tiered(&self, jobs: &[VerifyJob]) -> Vec<(JobOutcome, AnswerTier)> {
        self.submitted.add(jobs.len() as u64);
        let root_trace = self.trace_handle();
        let mut results: Vec<Option<(JobOutcome, AnswerTier)>> = vec![None; jobs.len()];
        // In-batch dedup: first submission index per key runs the job.
        let mut first_of: HashMap<JobKey, usize> = HashMap::with_capacity(jobs.len());
        let mut owners: Vec<usize> = Vec::with_capacity(jobs.len());
        let keys: Vec<JobKey> = jobs.iter().map(VerifyJob::key).collect();
        for (i, &key) in keys.iter().enumerate() {
            owners.push(*first_of.entry(key).or_insert(i));
        }
        // Memo lookups for the unique jobs.
        let mut pending: Vec<usize> = Vec::new();
        for (i, &owner) in owners.iter().enumerate() {
            if owner != i {
                continue; // duplicate; filled from its owner below
            }
            if self.opts.memoize {
                if let Some(hit) = self.verdicts.get(keys[i]) {
                    self.memo_hits.inc();
                    root_trace.for_job(keys[i].0).instant(
                        probe::SERVE_MEMO,
                        SpanKind::MemoLookup,
                        1, // hit
                        asv_trace::Cost::default(),
                    );
                    results[i] = Some((hit, AnswerTier::Memo));
                    continue;
                }
                // The miss is observable too: deterministic cost
                // accounting (asv_trace::cost) reads hit *and* miss
                // counts off the event stream alone.
                root_trace.for_job(keys[i].0).instant(
                    probe::SERVE_MEMO,
                    SpanKind::MemoLookup,
                    0, // miss
                    asv_trace::Cost::default(),
                );
            }
            pending.push(i);
        }
        // Self-scheduling pool over the pending jobs.
        if !pending.is_empty() {
            let workers = self.workers().min(pending.len()).max(1);
            let cursor = AtomicUsize::new(0);
            let mut per_worker: Vec<Vec<(usize, (JobOutcome, AnswerTier))>> =
                Vec::with_capacity(workers);
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for _ in 0..workers {
                    let cursor = &cursor;
                    let pending = &pending;
                    let keys = &keys;
                    handles.push(scope.spawn(move || {
                        let mut done = Vec::new();
                        loop {
                            let at = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(&job_idx) = pending.get(at) else {
                                break;
                            };
                            done.push((job_idx, self.execute(&jobs[job_idx], keys[job_idx])));
                        }
                        done
                    }));
                }
                for h in handles {
                    // Engine panics are caught inside `execute`; a panic
                    // escaping here is a bug in the service itself.
                    per_worker.push(h.join().expect("verification worker panicked"));
                }
            });
            for (job_idx, outcome) in per_worker.into_iter().flatten() {
                results[job_idx] = Some(outcome);
            }
        }
        // Copy duplicates from their owners, in submission order.
        for i in 0..jobs.len() {
            if results[i].is_none() {
                let owner = owners[i];
                self.deduped.inc();
                let outcome = results[owner]
                    .as_ref()
                    .expect("owner job resolved before its duplicates")
                    .0
                    .clone();
                results[i] = Some((outcome, AnswerTier::Deduped));
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every slot resolved"))
            .collect()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            submitted: self.submitted.get(),
            executed: self.executed.get(),
            memo_hits: self.memo_hits.get(),
            deduped: self.deduped.get(),
            store_hits: self.store_hits.get(),
            store_misses: self.store_misses.get(),
            store_puts: self.store_puts.get(),
        }
    }

    /// The verdict memo (benchmarks clear it between cold runs).
    pub fn verdict_cache(&self) -> &VerdictCache {
        &self.verdicts
    }

    /// The persistent store tier, when configured (eval's incremental
    /// path garbage-collects and inspects it through this).
    pub fn store(&self) -> Option<&ArtifactStore> {
        self.store.as_ref()
    }
}

impl Default for VerifyService {
    fn default() -> Self {
        Self::new(ServeOptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_sim::cancel::Resource;
    use asv_sva::bmc::{Engine, Verdict, Verifier, VerifyError};
    use asv_verilog::sema::Design;

    fn design(follow: bool, tag: u64) -> Design {
        let rhs = if follow { "d" } else { "!d" };
        asv_verilog::compile(&format!(
            "module m{tag}(input clk, input rst_n, input d, output reg q);\n\
             always @(posedge clk or negedge rst_n) begin\n\
               if (!rst_n) q <= 1'b0; else q <= {rhs};\n\
             end\n\
             p: assert property (@(posedge clk) disable iff (!rst_n) d |-> ##1 q);\n\
             endmodule"
        ))
        .expect("compile")
    }

    fn batch(n: usize, engine: Engine) -> Vec<VerifyJob> {
        let verifier = Verifier {
            depth: 6,
            engine,
            ..Verifier::default()
        };
        (0..n)
            .map(|i| VerifyJob::new(design(i % 3 != 0, (i % 5) as u64), verifier))
            .collect()
    }

    #[test]
    fn outcomes_follow_submission_order() {
        let service = VerifyService::default();
        let jobs = batch(10, Engine::Auto);
        let out = service.verify_batch(&jobs);
        assert_eq!(out.len(), 10);
        for (i, o) in out.iter().enumerate() {
            let fails = i % 3 == 0;
            match o.as_ref().expect("verdict") {
                Verdict::Fails(_) => assert!(fails, "job {i} must hold"),
                Verdict::Holds { .. } => assert!(!fails, "job {i} must fail"),
                Verdict::Inconclusive { tried } => panic!("unexpected inconclusive: {tried:?}"),
            }
        }
    }

    #[test]
    fn verdicts_are_identical_across_worker_counts() {
        let jobs = batch(12, Engine::Auto);
        let reference = VerifyService::with_workers(1).verify_batch(&jobs);
        for workers in [2, 8] {
            let out = VerifyService::with_workers(workers).verify_batch(&jobs);
            assert_eq!(out, reference, "worker count {workers} changed verdicts");
        }
    }

    #[test]
    fn batch_deduplicates_identical_jobs() {
        let service = VerifyService::default();
        let one = batch(1, Engine::Auto).remove(0);
        let jobs: Vec<VerifyJob> = (0..20).map(|_| one.clone()).collect();
        let out = service.verify_batch(&jobs);
        assert!(out.iter().all(|o| o == &out[0]));
        let stats = service.stats();
        assert_eq!(stats.executed, 1, "one engine run for 20 identical jobs");
        assert_eq!(stats.deduped, 19);
    }

    #[test]
    fn memo_answers_repeat_batches_without_executing() {
        let service = VerifyService::default();
        let jobs = batch(6, Engine::Auto);
        let first = service.verify_batch(&jobs);
        let executed_cold = service.stats().executed;
        let second = service.verify_batch(&jobs);
        assert_eq!(first, second, "memoised verdicts must be bit-identical");
        assert_eq!(
            service.stats().executed,
            executed_cold,
            "warm batch must not run any engine"
        );
        assert!(service.stats().memo_hits > 0);
    }

    #[test]
    fn memoize_false_always_executes() {
        let service = VerifyService::new(ServeOptions {
            memoize: false,
            ..ServeOptions::default()
        });
        let jobs = batch(4, Engine::Auto);
        let a = service.verify_batch(&jobs);
        let b = service.verify_batch(&jobs);
        assert_eq!(a, b);
        assert_eq!(service.stats().memo_hits, 0);
        assert!(service.stats().executed >= 2 * 3); // unique jobs per batch
    }

    #[test]
    fn portfolio_batches_match_auto_batches() {
        let auto = VerifyService::default().verify_batch(&batch(12, Engine::Auto));
        let portfolio = VerifyService::default().verify_batch(&batch(12, Engine::Portfolio));
        assert_eq!(portfolio, auto, "portfolio must be bit-identical to Auto");
    }

    #[test]
    fn no_assertions_error_propagates_per_job() {
        let d =
            asv_verilog::compile("module n(input a, output y); assign y = a; endmodule").unwrap();
        let service = VerifyService::default();
        let out = service.verify_one(&VerifyJob::new(d, Verifier::default()));
        assert_eq!(out, Err(VerdictError::Verify(VerifyError::NoAssertions)));
    }

    #[test]
    fn deterministic_errors_are_memoised_but_degraded_outcomes_are_not() {
        let d =
            asv_verilog::compile("module n(input a, output y); assign y = a; endmodule").unwrap();
        let service = VerifyService::default();
        let job = VerifyJob::new(d, Verifier::default());
        let cold = service.verify_one(&job);
        assert!(matches!(cold, Err(VerdictError::Verify(_))));
        let warm = service.verify_one(&job);
        assert_eq!(cold, warm);
        assert!(
            service.stats().memo_hits >= 1,
            "deterministic errors memoise like verdicts"
        );
    }

    #[test]
    fn expired_deadline_degrades_auto_jobs_without_caching() {
        let service = VerifyService::new(ServeOptions {
            deadline: Some(Duration::ZERO),
            ..ServeOptions::default()
        });
        let jobs = batch(4, Engine::Auto);
        let out = service.verify_batch(&jobs);
        for (i, o) in out.iter().enumerate() {
            assert!(
                matches!(o, Ok(Verdict::Inconclusive { .. })),
                "job {i}: expected inconclusive under an expired deadline, got {o:?}"
            );
        }
        assert!(
            service.verdict_cache().is_empty(),
            "degraded outcomes must not be memoised"
        );
    }

    #[test]
    fn expired_deadline_on_forced_engine_reports_structured_exhaustion() {
        let service = VerifyService::new(ServeOptions {
            deadline: Some(Duration::ZERO),
            ..ServeOptions::default()
        });
        let out = service.verify_one(&batch(1, Engine::Symbolic).remove(0));
        match out {
            Err(VerdictError::Exhausted(e)) => assert_eq!(e.resource, Resource::WallClock),
            other => panic!("expected wall-clock exhaustion, got {other:?}"),
        }
        assert!(service.verdict_cache().is_empty());
    }

    #[test]
    fn mixed_ok_and_error_batches_fill_every_slot() {
        let verifier = Verifier {
            depth: 6,
            ..Verifier::default()
        };
        let holds = VerifyJob::new(design(true, 0), verifier);
        let empty =
            asv_verilog::compile("module n(input a, output y); assign y = a; endmodule").unwrap();
        let broken = VerifyJob::new(empty, verifier);
        let service = VerifyService::default();
        let out = service.submit_batch(&[holds.clone(), broken.clone(), holds, broken]);
        assert_eq!(out.len(), 4);
        assert!(matches!(&out[0], Ok(Verdict::Holds { .. })));
        assert_eq!(out[1], Err(VerdictError::Verify(VerifyError::NoAssertions)));
        assert_eq!(out[2], out[0]);
        assert_eq!(out[3], out[1]);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_panics_in_forced_engines_are_isolated_per_job() {
        use asv_sim::{FaultKinds, FaultPlan};
        asv_sim::fault::silence_injected_panics();
        let plan = FaultPlan {
            rate_per_1024: 1024,
            victims_per_16: 16,
            kinds: FaultKinds::PANIC,
            ..FaultPlan::new(11)
        };
        let service = VerifyService::new(ServeOptions {
            fault_plan: Some(plan),
            ..ServeOptions::default()
        });
        let jobs = batch(4, Engine::Fuzz);
        let out = service.verify_batch(&jobs);
        for (i, o) in out.iter().enumerate() {
            match o {
                Err(VerdictError::Panic(m)) => assert!(
                    m.contains("injected fault at probe"),
                    "job {i}: unexpected panic message {m:?}"
                ),
                other => panic!("job {i}: expected isolated panic, got {other:?}"),
            }
        }
        assert!(
            service.verdict_cache().is_empty(),
            "panic outcomes must not be memoised"
        );
        // The service survives and still answers healthy jobs.
        let healthy = VerifyService::default().verify_batch(&batch(2, Engine::Auto));
        assert!(healthy.iter().all(|o| o.is_ok()));
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(VerifyService::default().verify_batch(&[]).is_empty());
    }

    #[test]
    fn traced_batches_report_provenance_and_identical_verdicts() {
        let jobs = batch(8, Engine::Auto);
        let untraced = VerifyService::default().verify_batch(&jobs);
        let service = VerifyService::default().traced(asv_trace::Tracer::new());
        let (out, reports) = service.verify_batch_reported(&jobs);
        assert_eq!(out, untraced, "tracing must never change verdicts");
        assert_eq!(reports.len(), jobs.len());
        // Cold batch: every unique job ran an engine and has rung detail.
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.key, jobs[i].key());
            match r.tier {
                crate::report::AnswerTier::Engine => {
                    assert!(!r.rungs.is_empty(), "slot {i}: engine run without rungs");
                    assert!(r.wall_ns > 0, "slot {i}: engine run without wall time");
                }
                crate::report::AnswerTier::Deduped => assert!(r.rungs.is_empty()),
                other => panic!("slot {i}: unexpected tier {other:?} on a cold batch"),
            }
        }
        // A warm repeat answers from the memo — no rungs anywhere.
        let (_, warm) = service.verify_batch_reported(&jobs);
        assert!(warm.iter().all(|r| matches!(
            r.tier,
            crate::report::AnswerTier::Memo | crate::report::AnswerTier::Deduped
        )));
        assert!(warm.iter().all(|r| r.rungs.is_empty()));
        // Span-derived metrics landed in the service registry.
        let dump = service.metrics().dump_prometheus();
        assert!(dump.contains("asv_jobs_executed_total"));
        assert!(dump.contains("asv_span_job_total"));
    }

    /// A scratch store directory, removed on drop.
    struct ScratchDir(std::path::PathBuf);

    impl ScratchDir {
        fn new(tag: &str) -> Self {
            use std::sync::atomic::AtomicU32;
            static SEQ: AtomicU32 = AtomicU32::new(0);
            let dir = std::env::temp_dir().join(format!(
                "asv-serve-{tag}-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).expect("scratch dir");
            ScratchDir(dir)
        }
    }

    impl Drop for ScratchDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn stored_service(dir: &ScratchDir) -> VerifyService {
        VerifyService::new(ServeOptions {
            store_dir: Some(dir.0.clone()),
            ..ServeOptions::default()
        })
    }

    #[test]
    fn store_tier_answers_a_fresh_service_without_executing() {
        let dir = ScratchDir::new("warm");
        let jobs = batch(6, Engine::Auto);
        let cold = stored_service(&dir);
        let first = cold.verify_batch(&jobs);
        let cold_stats = cold.stats();
        assert_eq!(cold_stats.store_hits, 0);
        assert!(cold_stats.store_puts > 0, "cacheable verdicts must persist");
        drop(cold);
        // A fresh service on the same directory: everything answers from
        // disk, bit-identically, with zero engine executions.
        let warm = stored_service(&dir);
        let second = warm.verify_batch(&jobs);
        assert_eq!(first, second, "disk-warm verdicts must be bit-identical");
        let warm_stats = warm.stats();
        assert_eq!(warm_stats.executed, 0, "warm batch must run no engine");
        assert!(warm_stats.store_hits > 0);
        // Store hits are promoted to tier one: a repeat batch on the
        // same service is pure memo.
        let third = warm.verify_batch(&jobs);
        assert_eq!(second, third);
        assert_eq!(warm.stats().store_hits, warm_stats.store_hits);
        assert!(warm.stats().memo_hits > 0);
    }

    #[test]
    fn store_tier_persists_deterministic_errors() {
        let dir = ScratchDir::new("errs");
        let empty =
            asv_verilog::compile("module n(input a, output y); assign y = a; endmodule").unwrap();
        let job = VerifyJob::new(empty, Verifier::default());
        let cold = stored_service(&dir);
        let out = cold.verify_one(&job);
        assert!(matches!(out, Err(VerdictError::Verify(_))));
        drop(cold);
        let warm = stored_service(&dir);
        assert_eq!(warm.verify_one(&job), out);
        assert_eq!(warm.stats().executed, 0);
    }

    #[test]
    fn degraded_outcomes_never_reach_the_store() {
        let dir = ScratchDir::new("degraded");
        let service = VerifyService::new(ServeOptions {
            deadline: Some(Duration::ZERO),
            store_dir: Some(dir.0.clone()),
            ..ServeOptions::default()
        });
        let out = service.verify_batch(&batch(3, Engine::Auto));
        assert!(out
            .iter()
            .all(|o| matches!(o, Ok(Verdict::Inconclusive { .. }))));
        assert_eq!(service.stats().store_puts, 0);
        assert!(service.store().expect("store configured").is_empty());
    }

    #[test]
    fn memoize_false_bypasses_the_store_tier() {
        let dir = ScratchDir::new("bypass");
        let service = VerifyService::new(ServeOptions {
            memoize: false,
            store_dir: Some(dir.0.clone()),
            ..ServeOptions::default()
        });
        let jobs = batch(3, Engine::Auto);
        service.verify_batch(&jobs);
        let stats = service.stats();
        assert_eq!(stats.store_puts, 0);
        assert_eq!(stats.store_hits, 0);
        assert_eq!(stats.store_misses, 0);
    }
}
