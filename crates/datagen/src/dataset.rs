//! Dataset entry types and the module-name train/test split.
//!
//! Mirrors the three datasets of the paper's Fig. 2: *Verilog-PT*
//! (pretraining text), *Verilog-Bug* (bugs that did not trip any SVA) and
//! *SVA-Bug* (assertion-failure repair instances), plus the paper's length
//! bins and the 90/10 module-name split used to carve out SVA-Eval.

use asv_mutation::kinds::BugClass;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The paper's five code-length bins (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LengthBin {
    /// (0, 50] lines.
    B50,
    /// (50, 100] lines.
    B100,
    /// (100, 150] lines.
    B150,
    /// (150, 200] lines.
    B200,
    /// (200, +∞) lines.
    B200Plus,
}

impl LengthBin {
    /// All bins in Table II order.
    pub const ALL: [LengthBin; 5] = [
        LengthBin::B50,
        LengthBin::B100,
        LengthBin::B150,
        LengthBin::B200,
        LengthBin::B200Plus,
    ];

    /// Classifies a line count.
    pub fn of_lines(lines: usize) -> Self {
        match lines {
            0..=50 => LengthBin::B50,
            51..=100 => LengthBin::B100,
            101..=150 => LengthBin::B150,
            151..=200 => LengthBin::B200,
            _ => LengthBin::B200Plus,
        }
    }

    /// The paper's interval label.
    pub fn label(self) -> &'static str {
        match self {
            LengthBin::B50 => "(0, 50]",
            LengthBin::B100 => "(50, 100]",
            LengthBin::B150 => "(100, 150]",
            LengthBin::B200 => "(150, 200]",
            LengthBin::B200Plus => "(200, +inf)",
        }
    }
}

impl fmt::Display for LengthBin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One pretraining entry: code text with spec and (for compile failures)
/// a diagnostic analysis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerilogPtEntry {
    /// Module name (or a synthetic id for unparseable text).
    pub name: String,
    /// The code text.
    pub code: String,
    /// The generated specification.
    pub spec: String,
    /// Compiler analysis for code that failed the syntax check.
    pub analysis: Option<String>,
}

impl VerilogPtEntry {
    /// Renders the entry as a single pretraining text blob (the dataset (a)
    /// format of the paper's Fig. 2).
    pub fn to_text(&self) -> String {
        match &self.analysis {
            Some(a) => format!(
                "The following Verilog code failed to compile. The specification is:\n{}\nCode:\n{}\nThe failure may have been caused by: {}\n",
                self.spec, self.code, a
            ),
            None => format!(
                "Specification:\n{}\nCode:\n{}\n",
                self.spec, self.code
            ),
        }
    }
}

/// One Verilog-Bug entry: a bug that did not trigger any assertion.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerilogBugEntry {
    /// Module name.
    pub module_name: String,
    /// Specification text.
    pub spec: String,
    /// Buggy source (canonical rendering).
    pub buggy_source: String,
    /// 1-based buggy line number.
    pub line_no: u32,
    /// Buggy line text.
    pub buggy_line: String,
    /// Correct line text (the repair plan's answer).
    pub fixed_line: String,
}

/// One SVA-Bug / SVA-Eval entry: an assertion-failure repair instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvaBugEntry {
    /// Module name (the split key).
    pub module_name: String,
    /// Specification text.
    pub spec: String,
    /// Buggy source with SVAs embedded (canonical rendering).
    pub buggy_source: String,
    /// Golden source (held out from the model; used for scoring).
    pub golden_source: String,
    /// Assertion failure logs from the verifier.
    pub logs: Vec<String>,
    /// 1-based buggy line number in the canonical rendering.
    pub line_no: u32,
    /// Buggy line text.
    pub buggy_line: String,
    /// Correct line text.
    pub fixed_line: String,
    /// Table I classification (with `direct` resolved).
    pub class: BugClass,
    /// Code-length bin of the buggy source.
    pub length_bin: LengthBin,
    /// Validated chain-of-thought, if Stage 3 produced a correct one.
    pub cot: Option<String>,
}

impl SvaBugEntry {
    /// Renders the model input ("Question") exactly as Fig. 2 dataset (c):
    /// buggy SV + logs + spec (+ the `step by step` cue when a CoT exists).
    pub fn question(&self) -> String {
        let cue = if self.cot.is_some() {
            " Please solve it step by step."
        } else {
            ""
        };
        format!(
            "There is a buggy SystemVerilog design that triggers assertions.\nLogs:\n{}\nThe specification is:\n{}\nCode:\n{}\nPlease give me a solution.{}",
            self.logs.join("\n"),
            self.spec,
            self.buggy_source,
            cue
        )
    }

    /// Renders the golden "Answer": buggy line and corrected code, plus the
    /// CoT when validated.
    pub fn answer(&self) -> String {
        let mut s = format!(
            "Buggy line {}: {}\nFixed line: {}\n",
            self.line_no, self.buggy_line, self.fixed_line
        );
        if let Some(cot) = &self.cot {
            s.push_str("Reasoning:\n");
            s.push_str(cot);
            s.push('\n');
        }
        s
    }
}

/// A train/test split of SVA-Bug entries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Split {
    /// Training portion (~90% of module names per length bin).
    pub train: Vec<SvaBugEntry>,
    /// Held-out portion (SVA-Eval-Machine).
    pub test: Vec<SvaBugEntry>,
}

/// Splits entries by *module name* within each length bin, as the paper
/// prescribes: bins are formed first, unique module names enumerated per
/// bin, and 90% of names (uniformly, seeded) go to training. All entries
/// of a module land on the same side, so train and test never share code.
pub fn split_by_module(entries: Vec<SvaBugEntry>, train_frac: f64, seed: u64) -> Split {
    let mut rng = StdRng::seed_from_u64(seed);
    // Bin -> unique module names (deterministic order).
    let mut by_bin: BTreeMap<LengthBin, Vec<String>> = BTreeMap::new();
    for e in &entries {
        let names = by_bin.entry(e.length_bin).or_default();
        if !names.contains(&e.module_name) {
            names.push(e.module_name.clone());
        }
    }
    let mut train_names: Vec<String> = Vec::new();
    for (_bin, mut names) in by_bin {
        names.shuffle(&mut rng);
        let k = ((names.len() as f64) * train_frac).round() as usize;
        // At least one name on each side when the bin has ≥ 2 modules.
        let k = if names.len() >= 2 {
            k.clamp(1, names.len() - 1)
        } else {
            k.min(names.len())
        };
        train_names.extend(names.into_iter().take(k));
    }
    let mut train = Vec::new();
    let mut test = Vec::new();
    for e in entries {
        if train_names.contains(&e.module_name) {
            train.push(e);
        } else {
            test.push(e);
        }
    }
    Split { train, test }
}

/// Per-category instance counts (the Table II rows).
pub fn count_by_category(entries: &[SvaBugEntry]) -> BTreeMap<asv_mutation::BugCategory, usize> {
    let mut m = BTreeMap::new();
    for e in entries {
        for c in e.class.categories() {
            *m.entry(c).or_insert(0) += 1;
        }
    }
    m
}

/// Per-length-bin instance counts (the Table II columns).
pub fn count_by_bin(entries: &[SvaBugEntry]) -> BTreeMap<LengthBin, usize> {
    let mut m = BTreeMap::new();
    for e in entries {
        *m.entry(e.length_bin).or_insert(0) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_mutation::kinds::SyntacticKind;

    fn entry(module: &str, lines: usize) -> SvaBugEntry {
        SvaBugEntry {
            module_name: module.to_string(),
            spec: "spec".into(),
            buggy_source: "x\n".repeat(lines),
            golden_source: String::new(),
            logs: vec!["failed assertion m.p at cycle 3".into()],
            line_no: 1,
            buggy_line: "bad".into(),
            fixed_line: "good".into(),
            class: BugClass {
                syntactic: SyntacticKind::Op,
                cond: false,
                direct: Some(true),
            },
            length_bin: LengthBin::of_lines(lines),
            cot: None,
        }
    }

    #[test]
    fn length_bins_match_paper_intervals() {
        assert_eq!(LengthBin::of_lines(1), LengthBin::B50);
        assert_eq!(LengthBin::of_lines(50), LengthBin::B50);
        assert_eq!(LengthBin::of_lines(51), LengthBin::B100);
        assert_eq!(LengthBin::of_lines(150), LengthBin::B150);
        assert_eq!(LengthBin::of_lines(151), LengthBin::B200);
        assert_eq!(LengthBin::of_lines(201), LengthBin::B200Plus);
    }

    #[test]
    fn split_keeps_modules_on_one_side() {
        let mut entries = Vec::new();
        for m in 0..30 {
            for _ in 0..4 {
                entries.push(entry(&format!("mod_{m}"), 20 + m));
            }
        }
        let split = split_by_module(entries, 0.9, 42);
        let train_names: std::collections::BTreeSet<_> =
            split.train.iter().map(|e| &e.module_name).collect();
        let test_names: std::collections::BTreeSet<_> =
            split.test.iter().map(|e| &e.module_name).collect();
        assert!(train_names.is_disjoint(&test_names), "module leakage");
        assert!(!split.test.is_empty());
        assert!(split.train.len() > split.test.len());
    }

    #[test]
    fn split_is_deterministic() {
        let entries: Vec<_> = (0..20).map(|m| entry(&format!("m{m}"), 10 + m)).collect();
        let a = split_by_module(entries.clone(), 0.9, 7);
        let b = split_by_module(entries, 0.9, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn question_includes_step_by_step_only_with_cot() {
        let mut e = entry("m", 10);
        assert!(!e.question().contains("step by step"));
        e.cot = Some("1. look at the log".into());
        assert!(e.question().contains("step by step"));
        assert!(e.answer().contains("Reasoning"));
    }

    #[test]
    fn category_counts_overlap_as_in_table2() {
        let entries = vec![entry("a", 10), entry("b", 10)];
        let counts = count_by_category(&entries);
        // Each entry contributes to Direct, Op and Non_cond.
        assert_eq!(counts[&asv_mutation::BugCategory::Direct], 2);
        assert_eq!(counts[&asv_mutation::BugCategory::Op], 2);
        assert_eq!(counts[&asv_mutation::BugCategory::NonCond], 2);
        let total: usize = counts.values().sum();
        assert!(total > entries.len(), "categories overlap by design");
    }

    #[test]
    fn pt_entry_text_mentions_analysis_when_present() {
        let e = VerilogPtEntry {
            name: "m".into(),
            code: "module m; endmodule".into(),
            spec: "a spec".into(),
            analysis: Some("missing semicolon".into()),
        };
        assert!(e.to_text().contains("failed to compile"));
        assert!(e.to_text().contains("missing semicolon"));
        let ok = VerilogPtEntry {
            analysis: None,
            ..e.clone()
        };
        assert!(!ok.to_text().contains("failed to compile"));
    }
}
