//! Scenario-diversity selection of stimuli via coverage novelty.
//!
//! The datagen pipeline attaches trace evidence to its entries and the
//! paper's quality argument rests on *diverse* scenarios, not many near
//! duplicates. This module uses the fuzzer's coverage maps to pick, from
//! a candidate pool, the stimuli that jointly exercise the most design
//! behaviour: a greedy max-marginal-coverage selection over branch arms,
//! signal toggles and (when present) assertion antecedents.

use asv_fuzz::novelty_rank;
use asv_sim::stimulus::Stimulus;
use asv_sim::{CompiledDesign, SimError};
use asv_verilog::sema::Design;
use std::sync::Arc;

/// Selects up to `k` stimuli from `candidates`, most novel first.
///
/// The first pick maximises covered points, each later pick maximises
/// points not covered by earlier picks; stimuli contributing nothing new
/// are only used to pad up to `k`. Deterministic (ties resolve to the
/// lowest candidate index).
///
/// # Errors
///
/// Propagates the first [`SimError`] raised while simulating a candidate.
pub fn select_diverse(
    design: &Design,
    candidates: &[Stimulus],
    k: usize,
) -> Result<Vec<Stimulus>, SimError> {
    let compiled = Arc::new(CompiledDesign::compile(design));
    let ranked = novelty_rank(&compiled, candidates).map_err(|e| match e {
        asv_fuzz::FuzzError::Sim(s) => s,
        // novelty_rank runs no assertion oracle, so only SimError occurs.
        other => SimError::Eval(asv_sim::EvalError::Malformed(other.to_string())),
    })?;
    Ok(ranked
        .into_iter()
        .take(k)
        .map(|(i, _)| candidates[i].clone())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_sim::StimulusGen;

    const COUNTER: &str = "module c(input clk, input rst_n, input en, output reg [3:0] q);\n\
        always @(posedge clk or negedge rst_n) begin\n\
          if (!rst_n) q <= 4'd0; else if (en) q <= q + 4'd1;\n\
        end\nendmodule";

    /// A stimulus with `en` pinned: `en = 0` never counts (low coverage),
    /// `en = 1` walks the counter (toggles `q` bits, takes the increment
    /// branch).
    fn pinned(design: &Design, en: u64) -> Stimulus {
        let gen = StimulusGen::new(design);
        let mut s = gen.random_seeded(8, 2, 1);
        for vec in &mut s.vectors[2..] {
            for entry in vec.iter_mut() {
                if entry.0 == "en" {
                    entry.1 = en;
                }
            }
        }
        s
    }

    #[test]
    fn duplicates_rank_behind_novel_stimuli() {
        let d = asv_verilog::compile(COUNTER).expect("compile");
        let idle = pinned(&d, 0);
        let counting = pinned(&d, 1);
        // Pool: three copies of the idle run and one counting run — a
        // diverse pick of 2 must include the counting run.
        let pool = vec![idle.clone(), idle.clone(), idle, counting.clone()];
        let picked = select_diverse(&d, &pool, 2).expect("select");
        assert_eq!(picked.len(), 2);
        assert!(
            picked.contains(&counting),
            "novel stimulus must be selected"
        );
        assert_ne!(picked[0], picked[1], "no duplicate in a diverse pick");
    }

    #[test]
    fn selection_is_deterministic_and_bounded() {
        let d = asv_verilog::compile(COUNTER).expect("compile");
        let gen = StimulusGen::new(&d);
        let pool: Vec<_> = (0..8).map(|s| gen.random_seeded(6, 2, s)).collect();
        let x = select_diverse(&d, &pool, 3).expect("select");
        let y = select_diverse(&d, &pool, 3).expect("select");
        assert_eq!(x, y);
        assert_eq!(x.len(), 3);
        assert!(select_diverse(&d, &pool, 99).expect("select").len() <= 8);
    }
}
