//! Stage 2: key-component generation and validation (paper Fig. 2-I).
//!
//! For each compiled design: (1) the embedded/mined SVAs are proven valid
//! on the golden code with the bounded verifier; (2) random bugs are drawn
//! from the mutation engine; (3) each bug is injected, re-compiled (syntax
//! errors introduced by generation are discarded, as in the paper) and
//! verified. Bugs that trip an assertion become SVA-Bug instances carrying
//! the verifier's failure logs; bugs that survive all assertions become
//! Verilog-Bug instances.

use crate::corpus::GeneratedDesign;
use crate::dataset::{LengthBin, SvaBugEntry, VerilogBugEntry};
use asv_mutation::inject::{apply, classify_direct, enumerate};
use asv_sva::bmc::{Verdict, Verifier};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Stage-2 configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Stage2 {
    /// Maximum bugs sampled per design.
    pub bugs_per_design: usize,
    /// Seed for bug sampling.
    pub seed: u64,
    /// Verifier used for both SVA validation and bug confirmation.
    pub verifier: Verifier,
}

impl Default for Stage2 {
    fn default() -> Self {
        Stage2 {
            bugs_per_design: 8,
            seed: 0x57A6_E002,
            verifier: Verifier::default(),
        }
    }
}

/// Output of Stage 2 for a corpus.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stage2Output {
    /// Assertion-failure instances (before the train/test split).
    pub sva_bug: Vec<SvaBugEntry>,
    /// Bugs not caught by any SVA.
    pub verilog_bug: Vec<VerilogBugEntry>,
    /// Designs whose golden SVAs failed validation (generator bugs; should
    /// stay empty).
    pub rejected_designs: Vec<String>,
    /// Injections discarded because the mutated code no longer compiles.
    pub discarded_syntax: usize,
}

impl Stage2 {
    /// Runs Stage 2 over compiled designs.
    pub fn run(&self, designs: &[GeneratedDesign]) -> Stage2Output {
        let mut out = Stage2Output::default();
        let mut rng = StdRng::seed_from_u64(self.seed);
        for gd in designs {
            self.run_one(gd, &mut rng, &mut out);
        }
        out
    }

    fn run_one(&self, gd: &GeneratedDesign, rng: &mut StdRng, out: &mut Stage2Output) {
        let Ok(golden) = asv_verilog::compile(&gd.source) else {
            out.rejected_designs.push(gd.name.clone());
            return;
        };
        // SVA validation on the golden design (SymbiYosys step 1).
        match self.verifier.check(&golden) {
            Ok(Verdict::Holds { .. }) => {}
            _ => {
                out.rejected_designs.push(gd.name.clone());
                return;
            }
        }
        let mut mutations = enumerate(&golden);
        mutations.shuffle(rng);
        mutations.truncate(self.bugs_per_design);
        for m in &mutations {
            let Ok(injection) = apply(&golden, m) else {
                continue;
            };
            // Compiler gate (SymbiYosys step 2 pre-check): bugs that break
            // elaboration are discarded, mirroring the paper's removal of
            // syntax errors introduced by generation.
            let Ok(buggy) = asv_verilog::compile(&injection.buggy_source) else {
                out.discarded_syntax += 1;
                continue;
            };
            match self.verifier.check(&buggy) {
                Ok(Verdict::Fails(cex)) => {
                    let mut class = m.class;
                    class.direct = classify_direct(&golden, m);
                    out.sva_bug.push(SvaBugEntry {
                        module_name: gd.name.clone(),
                        spec: gd.spec.clone(),
                        length_bin: LengthBin::of_lines(injection.buggy_source.lines().count()),
                        buggy_source: injection.buggy_source.clone(),
                        golden_source: injection.golden_source.clone(),
                        logs: cex.logs,
                        line_no: injection.line_no,
                        buggy_line: injection.buggy_line.clone(),
                        fixed_line: injection.fixed_line.clone(),
                        class,
                        cot: None,
                    });
                }
                Ok(Verdict::Holds { .. }) => {
                    // Functional bug below SVA coverage: Verilog-Bug.
                    out.verilog_bug.push(VerilogBugEntry {
                        module_name: gd.name.clone(),
                        spec: gd.spec.clone(),
                        buggy_source: injection.buggy_source.clone(),
                        line_no: injection.line_no,
                        buggy_line: injection.buggy_line.clone(),
                        fixed_line: injection.fixed_line.clone(),
                    });
                }
                _ => {
                    // Simulation divergence (e.g. a mutation created a
                    // combinational loop): treat like a syntax reject.
                    out.discarded_syntax += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusGen;
    use asv_mutation::BugCategory;

    fn small_verifier() -> Verifier {
        Verifier {
            depth: 8,
            random_runs: 12,
            exhaustive_limit: 256,
            ..Verifier::default()
        }
    }

    #[test]
    fn produces_both_dataset_kinds() {
        let designs = CorpusGen::new(21).generate(12);
        let stage2 = Stage2 {
            bugs_per_design: 6,
            seed: 1,
            verifier: small_verifier(),
        };
        let out = stage2.run(&designs);
        assert!(
            out.rejected_designs.is_empty(),
            "{:?}",
            out.rejected_designs
        );
        assert!(
            out.sva_bug.len() >= 10,
            "too few SVA-Bug instances: {}",
            out.sva_bug.len()
        );
        // Some bugs escape SVA coverage (the Verilog-Bug stream).
        assert!(!out.verilog_bug.is_empty(), "expected uncaught bugs");
    }

    #[test]
    fn sva_bug_entries_are_well_formed() {
        let designs = CorpusGen::new(22).generate(6);
        let out = Stage2 {
            bugs_per_design: 5,
            seed: 2,
            verifier: small_verifier(),
        }
        .run(&designs);
        for e in &out.sva_bug {
            assert!(!e.logs.is_empty(), "logs required");
            assert!(e.logs[0].contains("failed assertion"));
            assert_ne!(e.buggy_line, e.fixed_line);
            assert!(e.class.direct.is_some(), "direct classification required");
            // The recorded line number must point at the buggy line.
            let line = e
                .buggy_source
                .lines()
                .nth(e.line_no as usize - 1)
                .expect("line in range");
            assert_eq!(line.trim(), e.buggy_line);
            // The golden fix differs from the buggy source at that line.
            let gline = e
                .golden_source
                .lines()
                .nth(e.line_no as usize - 1)
                .expect("line in range");
            assert_eq!(gline.trim(), e.fixed_line);
        }
    }

    #[test]
    fn direct_and_indirect_both_occur() {
        let designs = CorpusGen::new(23).generate(12);
        let out = Stage2 {
            bugs_per_design: 8,
            seed: 3,
            verifier: small_verifier(),
        }
        .run(&designs);
        let direct = out
            .sva_bug
            .iter()
            .filter(|e| e.class.is(BugCategory::Direct))
            .count();
        let indirect = out
            .sva_bug
            .iter()
            .filter(|e| e.class.is(BugCategory::Indirect))
            .count();
        assert!(direct > 0, "no Direct bugs");
        assert!(indirect > 0, "no Indirect bugs");
    }

    #[test]
    fn stage2_is_deterministic() {
        let designs = CorpusGen::new(24).generate(4);
        let cfg = Stage2 {
            bugs_per_design: 4,
            seed: 9,
            verifier: small_verifier(),
        };
        assert_eq!(cfg.run(&designs), cfg.run(&designs));
    }
}
