//! Stage 2: key-component generation and validation (paper Fig. 2-I).
//!
//! For each compiled design: (1) the embedded/mined SVAs are proven valid
//! on the golden code with the bounded verifier; (2) random bugs are drawn
//! from the mutation engine; (3) each bug is injected, re-compiled (syntax
//! errors introduced by generation are discarded, as in the paper) and
//! verified. Bugs that trip an assertion become SVA-Bug instances carrying
//! the verifier's failure logs; bugs that survive all assertions become
//! Verilog-Bug instances.
//!
//! Verification goes through the `asv-serve` job service in two batches —
//! all golden validations, then all injected-bug confirmations — so the
//! whole corpus fans out across worker threads while bug *sampling* stays
//! a sequential, seeded walk. Outputs are identical to the old one-design-
//! at-a-time loop: designs are processed in order, the RNG stream is
//! consumed per surviving design exactly as before, and every verdict is
//! deterministic in `(design, verifier)`.

use crate::corpus::GeneratedDesign;
use crate::dataset::{LengthBin, SvaBugEntry, VerilogBugEntry};
use asv_mutation::inject::{apply, classify_direct, enumerate, Injection};
use asv_serve::{ServeOptions, VerifyJob, VerifyService};
use asv_sva::bmc::{Verdict, Verifier};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Stage-2 configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Stage2 {
    /// Maximum bugs sampled per design.
    pub bugs_per_design: usize,
    /// Seed for bug sampling.
    pub seed: u64,
    /// Verifier used for both SVA validation and bug confirmation.
    pub verifier: Verifier,
}

impl Default for Stage2 {
    fn default() -> Self {
        Stage2 {
            bugs_per_design: 8,
            seed: 0x57A6_E002,
            verifier: Verifier::default(),
        }
    }
}

/// Output of Stage 2 for a corpus.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stage2Output {
    /// Assertion-failure instances (before the train/test split).
    pub sva_bug: Vec<SvaBugEntry>,
    /// Bugs not caught by any SVA.
    pub verilog_bug: Vec<VerilogBugEntry>,
    /// Designs whose golden SVAs failed validation (generator bugs; should
    /// stay empty).
    pub rejected_designs: Vec<String>,
    /// Injections discarded because the mutated code no longer compiles.
    pub discarded_syntax: usize,
}

impl Stage2 {
    /// Runs Stage 2 over compiled designs through an internally
    /// constructed [`VerifyService`] (all cores).
    pub fn run(&self, designs: &[GeneratedDesign]) -> Stage2Output {
        self.run_with(designs, &VerifyService::new(ServeOptions::default()))
    }

    /// Runs Stage 2, submitting every verification through `service`.
    ///
    /// Output-identical to the historical sequential loop for any worker
    /// count: batching changes wall time only.
    pub fn run_with(&self, designs: &[GeneratedDesign], service: &VerifyService) -> Stage2Output {
        let mut out = Stage2Output::default();
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Batch 1: golden SVA validation (SymbiYosys step 1) for every
        // design that compiles.
        let goldens: Vec<Option<std::sync::Arc<asv_verilog::Design>>> = designs
            .iter()
            .map(|gd| {
                asv_verilog::compile(&gd.source)
                    .ok()
                    .map(std::sync::Arc::new)
            })
            .collect();
        let golden_jobs: Vec<VerifyJob> = goldens
            .iter()
            .flatten()
            .map(|g| VerifyJob::new(std::sync::Arc::clone(g), self.verifier))
            .collect();
        let golden_verdicts = service.verify_batch(&golden_jobs);
        let mut verdict_iter = golden_verdicts.into_iter();
        let mut surviving: Vec<(&GeneratedDesign, &asv_verilog::Design)> = Vec::new();
        for (gd, golden) in designs.iter().zip(&goldens) {
            match golden {
                None => out.rejected_designs.push(gd.name.clone()),
                Some(g) => match verdict_iter.next().expect("one verdict per golden") {
                    Ok(Verdict::Holds { .. }) => surviving.push((gd, g.as_ref())),
                    _ => out.rejected_designs.push(gd.name.clone()),
                },
            }
        }

        // Sequential, seeded bug sampling (the RNG stream is consumed per
        // surviving design in corpus order, exactly like the old loop),
        // plus the compiler gate (SymbiYosys step 2 pre-check): bugs that
        // break elaboration are discarded, mirroring the paper's removal
        // of syntax errors introduced by generation.
        struct Candidate<'a> {
            gd: &'a GeneratedDesign,
            injection: Injection,
            class: asv_mutation::kinds::BugClass,
        }
        let mut candidates: Vec<Candidate> = Vec::new();
        let mut bug_jobs: Vec<VerifyJob> = Vec::new();
        for (gd, golden) in &surviving {
            let mut mutations = enumerate(golden);
            mutations.shuffle(&mut rng);
            mutations.truncate(self.bugs_per_design);
            for m in &mutations {
                let Ok(injection) = apply(golden, m) else {
                    continue;
                };
                let Ok(buggy) = asv_verilog::compile(&injection.buggy_source) else {
                    out.discarded_syntax += 1;
                    continue;
                };
                let mut class = m.class;
                class.direct = classify_direct(golden, m);
                bug_jobs.push(VerifyJob::new(buggy, self.verifier));
                candidates.push(Candidate {
                    gd,
                    injection,
                    class,
                });
            }
        }

        // Batch 2: confirm every injected bug, then fold the verdicts
        // back in (design, mutation) order.
        for (candidate, verdict) in candidates.iter().zip(service.verify_batch(&bug_jobs)) {
            let injection = &candidate.injection;
            match verdict {
                Ok(Verdict::Fails(cex)) => {
                    out.sva_bug.push(SvaBugEntry {
                        module_name: candidate.gd.name.clone(),
                        spec: candidate.gd.spec.clone(),
                        length_bin: LengthBin::of_lines(injection.buggy_source.lines().count()),
                        buggy_source: injection.buggy_source.clone(),
                        golden_source: injection.golden_source.clone(),
                        logs: cex.logs,
                        line_no: injection.line_no,
                        buggy_line: injection.buggy_line.clone(),
                        fixed_line: injection.fixed_line.clone(),
                        class: candidate.class,
                        cot: None,
                    });
                }
                Ok(Verdict::Holds { .. }) => {
                    // Functional bug below SVA coverage: Verilog-Bug.
                    out.verilog_bug.push(VerilogBugEntry {
                        module_name: candidate.gd.name.clone(),
                        spec: candidate.gd.spec.clone(),
                        buggy_source: injection.buggy_source.clone(),
                        line_no: injection.line_no,
                        buggy_line: injection.buggy_line.clone(),
                        fixed_line: injection.fixed_line.clone(),
                    });
                }
                _ => {
                    // Simulation divergence (e.g. a mutation created a
                    // combinational loop): treat like a syntax reject.
                    out.discarded_syntax += 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusGen;
    use asv_mutation::BugCategory;

    fn small_verifier() -> Verifier {
        Verifier {
            depth: 8,
            random_runs: 12,
            exhaustive_limit: 256,
            ..Verifier::default()
        }
    }

    #[test]
    fn produces_both_dataset_kinds() {
        let designs = CorpusGen::new(21).generate(12);
        let stage2 = Stage2 {
            bugs_per_design: 6,
            seed: 1,
            verifier: small_verifier(),
        };
        let out = stage2.run(&designs);
        assert!(
            out.rejected_designs.is_empty(),
            "{:?}",
            out.rejected_designs
        );
        assert!(
            out.sva_bug.len() >= 10,
            "too few SVA-Bug instances: {}",
            out.sva_bug.len()
        );
        // Some bugs escape SVA coverage (the Verilog-Bug stream).
        assert!(!out.verilog_bug.is_empty(), "expected uncaught bugs");
    }

    #[test]
    fn batched_output_is_identical_across_worker_counts() {
        let designs = CorpusGen::new(24).generate(8);
        let stage2 = Stage2 {
            bugs_per_design: 4,
            seed: 7,
            verifier: small_verifier(),
        };
        let reference = stage2.run_with(&designs, &VerifyService::with_workers(1));
        for workers in [2, 8] {
            let out = stage2.run_with(&designs, &VerifyService::with_workers(workers));
            assert_eq!(
                out, reference,
                "worker count {workers} changed Stage 2 output"
            );
        }
        assert_eq!(stage2.run(&designs), reference, "default service agrees");
    }

    #[test]
    fn sva_bug_entries_are_well_formed() {
        let designs = CorpusGen::new(22).generate(6);
        let out = Stage2 {
            bugs_per_design: 5,
            seed: 2,
            verifier: small_verifier(),
        }
        .run(&designs);
        for e in &out.sva_bug {
            assert!(!e.logs.is_empty(), "logs required");
            assert!(e.logs[0].contains("failed assertion"));
            assert_ne!(e.buggy_line, e.fixed_line);
            assert!(e.class.direct.is_some(), "direct classification required");
            // The recorded line number must point at the buggy line.
            let line = e
                .buggy_source
                .lines()
                .nth(e.line_no as usize - 1)
                .expect("line in range");
            assert_eq!(line.trim(), e.buggy_line);
            // The golden fix differs from the buggy source at that line.
            let gline = e
                .golden_source
                .lines()
                .nth(e.line_no as usize - 1)
                .expect("line in range");
            assert_eq!(gline.trim(), e.fixed_line);
        }
    }

    #[test]
    fn direct_and_indirect_both_occur() {
        let designs = CorpusGen::new(23).generate(12);
        let out = Stage2 {
            bugs_per_design: 8,
            seed: 3,
            verifier: small_verifier(),
        }
        .run(&designs);
        let direct = out
            .sva_bug
            .iter()
            .filter(|e| e.class.is(BugCategory::Direct))
            .count();
        let indirect = out
            .sva_bug
            .iter()
            .filter(|e| e.class.is(BugCategory::Indirect))
            .count();
        assert!(direct > 0, "no Direct bugs");
        assert!(indirect > 0, "no Indirect bugs");
    }

    #[test]
    fn stage2_is_deterministic() {
        let designs = CorpusGen::new(24).generate(4);
        let cfg = Stage2 {
            bugs_per_design: 4,
            seed: 9,
            verifier: small_verifier(),
        };
        assert_eq!(cfg.run(&designs), cfg.run(&designs));
    }
}
