//! Stage 1: filtering and syntax checking (paper Fig. 2-I, step 1).
//!
//! Raw corpus items are filtered on the paper's three criteria (missing
//! `module`/`endmodule`, no functional logic, duplicates), then syntax-
//! checked with the in-tree compiler. Failures — with their diagnostic
//! analysis standing in for GPT-4's failure explanations — become
//! Verilog-PT entries; successes move on to Stage 2.

use crate::dataset::VerilogPtEntry;
use asv_verilog::ast::Item;
use asv_verilog::{compile, SourceFile};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A raw corpus item entering the pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawItem {
    /// Best-effort name (module name or synthetic id).
    pub name: String,
    /// Code text (possibly broken).
    pub code: String,
    /// Specification text.
    pub spec: String,
}

/// Why an item was dropped by the filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// Lacks `module` or `endmodule`.
    NotAModule,
    /// Only declarations/constant assignments, no functional logic.
    NoFunctionalLogic,
    /// Exact duplicate of an earlier item.
    Duplicate,
}

/// Output of Stage 1.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stage1Output {
    /// Items that compiled; they continue to Stage 2.
    pub compiled: Vec<RawItem>,
    /// The Verilog-PT dataset: compile failures with analysis plus the
    /// spec'd code of successes.
    pub verilog_pt: Vec<VerilogPtEntry>,
    /// Count of items dropped per reason.
    pub dropped: Vec<(RawItem, DropReason)>,
}

/// Runs Stage 1 over raw items.
pub fn run(items: Vec<RawItem>) -> Stage1Output {
    let mut out = Stage1Output::default();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for item in items {
        if !(item.code.contains("module") && item.code.contains("endmodule")) {
            out.dropped.push((item, DropReason::NotAModule));
            continue;
        }
        if !seen.insert(item.code.clone()) {
            out.dropped.push((item, DropReason::Duplicate));
            continue;
        }
        match compile(&item.code) {
            Ok(design) => {
                if !has_functional_logic(&design.module) {
                    out.dropped.push((item, DropReason::NoFunctionalLogic));
                    continue;
                }
                out.verilog_pt.push(VerilogPtEntry {
                    name: item.name.clone(),
                    code: item.code.clone(),
                    spec: item.spec.clone(),
                    analysis: None,
                });
                out.compiled.push(item);
            }
            Err(e) => {
                let src = SourceFile::new(item.code.clone());
                out.verilog_pt.push(VerilogPtEntry {
                    name: item.name.clone(),
                    code: item.code.clone(),
                    spec: item.spec.clone(),
                    analysis: Some(e.render(&src)),
                });
            }
        }
    }
    out
}

/// The paper's "no functional logic" criterion: at least one always block,
/// or a continuous assign whose right-hand side is not a bare constant.
fn has_functional_logic(module: &asv_verilog::ast::Module) -> bool {
    module.items.iter().any(|i| match i {
        Item::Always(_) => true,
        Item::Assign(a) => !matches!(a.rhs, asv_verilog::ast::Expr::Number { .. }),
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(name: &str, code: &str) -> RawItem {
        RawItem {
            name: name.into(),
            code: code.into(),
            spec: format!("spec for {name}"),
        }
    }

    #[test]
    fn drops_non_modules() {
        let out = run(vec![item("x", "assign y = a & b;")]);
        assert_eq!(out.dropped.len(), 1);
        assert_eq!(out.dropped[0].1, DropReason::NotAModule);
        assert!(out.compiled.is_empty());
    }

    #[test]
    fn drops_duplicates() {
        let code = "module m(input a, output y); assign y = ~a; endmodule";
        let out = run(vec![item("a", code), item("b", code)]);
        assert_eq!(out.compiled.len(), 1);
        assert_eq!(out.dropped.len(), 1);
        assert_eq!(out.dropped[0].1, DropReason::Duplicate);
    }

    #[test]
    fn drops_constant_only_modules() {
        let out = run(vec![item(
            "c",
            "module m(output y); assign y = 1'b0; endmodule",
        )]);
        assert_eq!(out.dropped.len(), 1);
        assert_eq!(out.dropped[0].1, DropReason::NoFunctionalLogic);
    }

    #[test]
    fn failures_get_analysis_successes_do_not() {
        let good = item("g", "module m(input a, output y); assign y = ~a; endmodule");
        let bad = item(
            "b",
            "module m(input a, output y); assign y = ~ghost; endmodule",
        );
        let out = run(vec![good, bad]);
        assert_eq!(out.compiled.len(), 1);
        assert_eq!(out.verilog_pt.len(), 2);
        let g = out.verilog_pt.iter().find(|e| e.name == "g").expect("g");
        let b = out.verilog_pt.iter().find(|e| e.name == "b").expect("b");
        assert!(g.analysis.is_none());
        let analysis = b.analysis.as_deref().expect("analysis");
        assert!(analysis.contains("ghost"), "got: {analysis}");
    }

    #[test]
    fn syntax_errors_also_land_in_pt() {
        let out = run(vec![item(
            "s",
            "module m(input a, output y) assign y = a; endmodule",
        )]);
        assert_eq!(out.compiled.len(), 0);
        assert_eq!(out.verilog_pt.len(), 1);
        assert!(out.verilog_pt[0].analysis.is_some());
    }
}
